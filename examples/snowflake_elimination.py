"""Snowflake schemas, Need sets, and fact-table elimination (Section 3.3).

Walks through the extended join graph of a snowflake view, shows how the
Need functions decide which auxiliary views are required, and contrasts
two views over the same schema: one whose grouping forces the fact table
to be materialized, and one grouping on a dimension key that lets the
warehouse omit the (huge) fact table auxiliary view entirely.

Run:  python examples/snowflake_elimination.py
"""

from repro import SelfMaintainer, derive_auxiliary_views
from repro.core.joingraph import ExtendedJoinGraph
from repro.storage.model import format_bytes
from repro.workloads.snowflake import (
    build_snowflake_database,
    category_sales_by_product_view,
    category_sales_view,
)
from repro.workloads.streams import TransactionGenerator


def show_graph(view, database):
    graph = ExtendedJoinGraph(view, database)
    print(graph.render())
    for table in view.tables:
        print(f"  Need({table}) = {sorted(graph.need(table))}")
    return graph


def detail_bytes(aux, database):
    return sum(r.size_bytes() for r in aux.materialize(database).values())


def main() -> None:
    database = build_snowflake_database(
        categories=6, products_per_category=12, days=60, sales_per_day=80
    )
    fact_size = database.relation("sale").size_bytes()
    print(f"fact table: {len(database.relation('sale')):,} rows, "
          f"{format_bytes(fact_size)}\n")

    print("=" * 64)
    print("View 1: monthly revenue per department (snowflake chain)")
    print("=" * 64)
    view1 = category_sales_view()
    print(view1.to_sql(), "\n")
    show_graph(view1, database)
    aux1 = derive_auxiliary_views(view1, database)
    print(f"\nmaterialized auxiliary views: {[a.name for a in aux1]}")
    print(f"eliminated: {dict(aux1.eliminated) or 'none'}")
    print(f"current detail: {format_bytes(detail_bytes(aux1, database))}")

    print()
    print("=" * 64)
    print("View 2: revenue per product id (key group-by)")
    print("=" * 64)
    view2 = category_sales_by_product_view()
    print(view2.to_sql(), "\n")
    show_graph(view2, database)
    aux2 = derive_auxiliary_views(view2, database)
    print(f"\nmaterialized auxiliary views: {[a.name for a in aux2]}")
    print(f"eliminated: {dict(aux2.eliminated)}")
    print(f"current detail: {format_bytes(detail_bytes(aux2, database))}")
    print(
        "\nGrouping on product.id pins every group to one product tuple: "
        "the fact table's auxiliary view is provably unnecessary."
    )

    print()
    print("=" * 64)
    print("Maintaining view 2 without any fact detail")
    print("=" * 64)
    maintainer = SelfMaintainer(view2, database)
    generator = TransactionGenerator(database, seed=7)
    for __ in range(80):
        maintainer.apply(generator.step())
    exact = maintainer.current_view().same_bag(view2.evaluate(database))
    print(f"80 transactions applied; maintained == recomputed: {exact}")
    print(f"detail retained by the warehouse: "
          f"{format_bytes(maintainer.detail_size_bytes())} "
          f"(fact table is {format_bytes(fact_size)})")


if __name__ == "__main__":
    main()
