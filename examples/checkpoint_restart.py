"""Warehouse restart without ever re-reading the sources.

Self-maintainability has an operational corollary: once loaded, the
warehouse state (summary + minimal detail) is all there is — so it can
be checkpointed to disk and restored after a crash with the sources
still sealed.  This example loads a warehouse, streams transactions,
checkpoints, "crashes", restores against a *tuple-free catalog*, streams
more transactions, and audits the result.

Run:  python examples/checkpoint_restart.py
"""

import tempfile
from pathlib import Path

from repro import BaseTable, Database, RetailConfig, build_retail_database
from repro.warehouse.persistence import load_warehouse, save_warehouse
from repro.warehouse.sources import SealedSource
from repro.warehouse.warehouse import Warehouse
from repro.workloads.retail import product_sales_max_view, product_sales_view
from repro.workloads.streams import TransactionGenerator


def catalog_only(database: Database) -> Database:
    """Schema metadata with zero tuples: all a restarted warehouse gets."""
    catalog = Database()
    for table in database.tables:
        catalog.add_table(
            BaseTable(
                table.name,
                {a.name: a.atype for a in table.schema},
                table.key,
                {c.attribute: c.referenced for c in table.references},
                table.exposed_updates,
            )
        )
    return catalog


def main() -> None:
    database = build_retail_database(
        RetailConfig(
            days=40,
            stores=3,
            products=80,
            products_sold_per_day=20,
            transactions_per_product=2,
            start_year=1997,
            seed=8,
        )
    )
    views = {
        "product_sales": product_sales_view(1997),
        "product_sales_max": product_sales_max_view(),
    }

    # Initial load, then the sources go dark.
    source = SealedSource(database)
    warehouse = Warehouse(source)
    for view in views.values():
        warehouse.register(view)
    source.seal()
    print("warehouse loaded; sources sealed")

    generator = TransactionGenerator(database, seed=77)
    for __ in range(40):
        warehouse.apply(generator.step())
    print(f"40 transactions applied; "
          f"{len(warehouse.summary('product_sales'))} month-groups")

    # Checkpoint, then simulate a crash (the warehouse object is gone).
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "warehouse.json"
        save_warehouse(warehouse, checkpoint)
        print(f"checkpoint written: {checkpoint.stat().st_size:,} bytes")
        del warehouse

        # Restart: only the checkpoint and the *catalog* are available.
        restored = load_warehouse(views, catalog_only(database), checkpoint)
        print("warehouse restored from checkpoint "
              "(catalog had zero tuples - no source reads)")

    # Business continues on the restored instance.
    for __ in range(40):
        restored.apply(generator.step())
    print("40 more transactions applied after restart")

    source.unseal()
    print("\naudit against recomputation from the live sources:")
    for name, view in views.items():
        ok = restored.summary(name).same_bag(view.evaluate(database))
        print(f"  {name}: {'OK' if ok else 'MISMATCH'}")


if __name__ == "__main__":
    main()
