"""Section 1.1's storage analysis, analytic and measured.

Reproduces the paper's arithmetic at full scale (245 GB fact table vs
167 MB auxiliary view) and then validates the shape of the claim by
actually building a scaled-down warehouse and measuring live relation
sizes, including a sweep over the duplicate factor.

Run:  python examples/storage_analysis.py
"""

from repro import derive_auxiliary_views
from repro.storage.model import (
    format_bytes,
    paper_auxiliary_view_estimate,
    paper_fact_table_estimate,
    relation_estimate,
)
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_view,
)


def paper_scale() -> None:
    print("=" * 64)
    print("Paper scale (analytic, Section 1.1)")
    print("=" * 64)
    fact = paper_fact_table_estimate()
    aux = paper_auxiliary_view_estimate()
    print(f"  {fact}")
    print(f"  {aux}")
    print(f"  reduction: {format_bytes(fact.total_bytes)} -> "
          f"{format_bytes(aux.total_bytes)} "
          f"({aux.ratio_to(fact):,.0f}x smaller)")


def measured_scale() -> None:
    print()
    print("=" * 64)
    print("Measured at reduced scale (same shape)")
    print("=" * 64)
    for transactions in (1, 5, 20):
        config = RetailConfig(
            days=30,
            stores=3,
            products=40,
            products_sold_per_day=40,   # the paper's worst case
            transactions_per_product=transactions,
            start_year=1997,
            seed=4,
        )
        database = build_retail_database(config)
        view = product_sales_view(1997)
        aux = derive_auxiliary_views(view, database)
        saledtl = aux.materialize(database)["sale"]
        fact = relation_estimate("sale", database.relation("sale"))
        compressed = relation_estimate("saledtl", saledtl)
        print(
            f"  txns/product={transactions:>2}: fact "
            f"{fact.tuples:>6,} rows ({format_bytes(fact.total_bytes)})  ->  "
            f"saledtl {compressed.tuples:>5,} rows "
            f"({format_bytes(compressed.total_bytes)}), "
            f"{compressed.ratio_to(fact):5.1f}x smaller"
        )
    print(
        "\n  saledtl is capped at one tuple per (day, product): its size\n"
        "  is independent of transaction volume, exactly the worst-case\n"
        "  bound the paper computes (365 x 30,000 at full scale)."
    )


if __name__ == "__main__":
    paper_scale()
    measured_scale()
