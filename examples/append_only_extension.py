"""Old detail data: the append-only relaxation (Section 4, future work).

Old detail data in a warehouse is append-only, so only insertions need
to be handled.  Under that relaxation MIN and MAX become completely
self-maintainable and *fold into the compressed auxiliary views* —
sometimes dissolving the need for auxiliary data altogether.  This
example contrasts the regular and append-only derivations for a price-
range view and streams insert-only batches through the append-only
maintainer.

Run:  python examples/append_only_extension.py
"""

import random

from repro import Delta, SelfMaintainer, Transaction, derive_auxiliary_views
from repro.sql.parser import parse_view
from repro.storage.model import format_bytes
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_max_view,
)


def main() -> None:
    database = build_retail_database(
        RetailConfig(
            days=40,
            stores=3,
            products=60,
            products_sold_per_day=30,
            transactions_per_product=3,
            start_year=1997,
            seed=12,
        )
    )
    view = parse_view(
        """
        CREATE VIEW price_range AS
        SELECT time.month, MIN(price) AS lo, MAX(price) AS hi,
               AVG(price) AS mean, COUNT(*) AS n
        FROM sale, time
        WHERE sale.timeid = time.id
        GROUP BY time.month
        """,
        database,
    )

    print("=" * 64)
    print("Regular derivation (updates and deletions expected)")
    print("=" * 64)
    regular = derive_auxiliary_views(view, database)
    print(regular.for_table("sale").to_sql())
    regular_rows = regular.materialize(database)["sale"]
    print(f"\nsaledtl: {len(regular_rows):,} rows "
          f"({format_bytes(regular_rows.size_bytes())}) - price must stay "
          "a grouping attribute because MIN/MAX are not CSMAS")

    print()
    print("=" * 64)
    print("Append-only derivation (old detail data)")
    print("=" * 64)
    append = derive_auxiliary_views(view, database, append_only=True)
    print(append.for_table("sale").to_sql())
    append_rows = append.materialize(database)["sale"]
    print(f"\nsaledtl: {len(append_rows):,} rows "
          f"({format_bytes(append_rows.size_bytes())}) - MIN/MAX fold into "
          "per-group extrema")
    print(f"\nreduction from the relaxation alone: "
          f"{regular_rows.size_bytes() / append_rows.size_bytes():.1f}x")

    print()
    print("=" * 64)
    print("Insert-only maintenance")
    print("=" * 64)
    maintainer = SelfMaintainer(view, database, append_only=True)
    rng = random.Random(3)
    next_id = max(database.relation("sale").column("id")) + 1
    for batch in range(10):
        rows = [
            (
                next_id + i,
                rng.randint(1, 40),
                rng.randint(1, 60),
                rng.randint(1, 3),
                rng.randint(10, 9_000),
            )
            for i in range(25)
        ]
        next_id += 25
        transaction = Transaction.of(Delta.insertion("sale", rows))
        database.apply(transaction)
        maintainer.apply(transaction)
    exact = maintainer.current_view().same_bag(view.evaluate(database))
    print(f"250 insertions in 10 batches; maintained == recomputed: {exact}")
    print(maintainer.current_view().pretty(6))

    print()
    print("=" * 64)
    print("The extreme case: MAX-only views need no detail at all")
    print("=" * 64)
    max_view = product_sales_max_view()
    no_detail = derive_auxiliary_views(max_view, database, append_only=True)
    print(f"auxiliary views for {max_view.name}: "
          f"{[a.name for a in no_detail] or 'NONE'}")
    print(f"eliminated: {dict(no_detail.eliminated)}")


if __name__ == "__main__":
    main()
