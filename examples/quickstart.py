"""Quickstart: the paper's running example, end to end.

Defines the ``product_sales`` view of Section 1.1 in SQL, derives its
minimal auxiliary views (Algorithm 3.2), shows the reconstruction query,
and maintains everything incrementally under a few hand-written
transactions — printing each artifact as it appears in the paper.

Run:  python examples/quickstart.py
"""

from repro import Delta, SelfMaintainer, Transaction, derive_auxiliary_views
from repro.core.rewrite import Reconstructor
from repro.sql.parser import parse_view
from repro.workloads.retail import paper_mini_database


def main() -> None:
    database = paper_mini_database()

    print("=" * 64)
    print("1. The materialized GPSJ view (Section 1.1)")
    print("=" * 64)
    view = parse_view(
        """
        CREATE VIEW product_sales AS
        SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
               COUNT(DISTINCT brand) AS DifferentBrands
        FROM sale, time, product
        WHERE time.year = 1997
          AND sale.timeid = time.id
          AND sale.productid = product.id
        GROUP BY time.month
        """,
        database,
    )
    print(view.to_sql())

    print()
    print("=" * 64)
    print("2. The minimal auxiliary views (Algorithm 3.2)")
    print("=" * 64)
    aux = derive_auxiliary_views(view, database)
    print(aux.to_sql())
    if aux.eliminated:
        print(f"\neliminated: {aux.eliminated}")

    print()
    print("=" * 64)
    print("3. Reconstructing product_sales from the auxiliary views")
    print("=" * 64)
    reconstructor = Reconstructor(view, aux, database)
    print(reconstructor.to_sql())

    print()
    print("=" * 64)
    print("4. Incremental self-maintenance (no base-table access)")
    print("=" * 64)
    maintainer = SelfMaintainer(view, database)
    print("initial summary:")
    print(maintainer.current_view().pretty())

    transactions = [
        (
            "a January sale of product 2 for 42 cents",
            Transaction.of(Delta.insertion("sale", [(100, 1, 2, 1, 42)])),
        ),
        (
            "product 3 rebrands from 'bestco' to 'acme'",
            Transaction.of(
                Delta.update(
                    "product",
                    old_rows=[(3, "bestco", "dairy")],
                    new_rows=[(3, "acme", "dairy")],
                )
            ),
        ),
        (
            "the only February sale is returned",
            Transaction.of(Delta.deletion("sale", [(8, 3, 1, 1, 5)])),
        ),
    ]
    for description, transaction in transactions:
        database.apply(transaction)
        maintainer.apply(transaction)
        print(f"\nafter: {description}")
        print(maintainer.current_view().pretty())

    recomputed = view.evaluate(database)
    print(
        "\nmaintained summary equals recomputation from sources: "
        f"{maintainer.current_view().same_bag(recomputed)}"
    )


if __name__ == "__main__":
    main()
