"""A retail data warehouse running against sealed legacy sources.

The scenario the paper's introduction motivates: a grocery chain's
operational systems stream change transactions to a warehouse that can
never query them back.  The warehouse hosts two summary tables over the
same star schema, keeps only the minimal current detail for each, and is
audited against recomputation at the end (after unsealing, for the audit
only).

Run:  python examples/retail_warehouse.py
"""

from repro import RetailConfig, build_retail_database
from repro.storage.model import format_bytes
from repro.warehouse.sources import SealedSource
from repro.warehouse.warehouse import Warehouse
from repro.workloads.retail import product_sales_max_view, product_sales_view
from repro.workloads.streams import TransactionGenerator


def main() -> None:
    config = RetailConfig(
        days=73,
        stores=4,
        products=200,
        products_sold_per_day=40,
        transactions_per_product=3,
        start_year=1997,
        seed=2026,
    )
    database = build_retail_database(config)
    print(
        f"operational store: {len(database.relation('sale')):,} sales, "
        f"{len(database.relation('product'))} products, "
        f"{len(database.relation('time'))} days, "
        f"{len(database.relation('store'))} stores"
    )

    # --- initial load: the only phase allowed to read base data -------
    source = SealedSource(database)
    warehouse = Warehouse(source)
    for view in (product_sales_view(1997), product_sales_max_view()):
        aux = warehouse.register(view)
        materialized = ", ".join(a.name for a in aux)
        omitted = ", ".join(aux.eliminated) or "none"
        print(f"registered {view.name}: detail = [{materialized}], omitted = [{omitted}]")
    source.seal()
    print("\nsources sealed - the warehouse is on its own now\n")

    # --- months of operation: transactions stream in ------------------
    generator = TransactionGenerator(database, seed=99)
    for day in range(1, 101):
        transaction = generator.step()
        warehouse.apply(transaction)
        if day % 25 == 0:
            summary = warehouse.summary("product_sales")
            print(f"after {day} transactions: {len(summary)} month-groups")

    # --- storage ledger ------------------------------------------------
    print("\nstorage per view (paper's tuples x fields x 4B model):")
    fact_bytes = None
    for name in warehouse.view_names:
        report = warehouse.storage_report(name)
        print(f"  {name}:")
        print(f"    summary        {format_bytes(report.summary_bytes)}")
        for table, size in report.per_auxiliary.items():
            print(f"    {table + 'dtl':<14} {format_bytes(size)}")
    source.unseal()
    fact_bytes = database.relation("sale").size_bytes()
    print(f"  (fact table at the sources: {format_bytes(fact_bytes)})")

    # --- audit -----------------------------------------------------------
    print("\naudit against recomputation from the live sources:")
    for view in (product_sales_view(1997), product_sales_max_view()):
        maintained = warehouse.summary(view.name)
        recomputed = view.evaluate(database)
        status = "OK" if maintained.same_bag(recomputed) else "MISMATCH"
        print(f"  {view.name}: {status} ({len(maintained)} groups)")

    print("\nproduct_sales summary:")
    print(warehouse.summary("product_sales").pretty())


if __name__ == "__main__":
    main()
