"""Warehouse operating modes: eager, deferred, and shared detail.

The same class of summary tables run three ways:

1. **Eager** — one SelfMaintainer per view, every transaction propagated
   immediately (lowest read latency).
2. **Deferred** — transactions buffered and coalesced, propagated at
   refresh time; churn between refreshes is never propagated at all.
3. **Shared detail** — one merged detail set maintained once for the
   whole class; summaries reconstructed on read (single-copy storage).

All three stay exact; they differ in where the work and the bytes go.

Run:  python examples/operating_modes.py
"""

import time

from repro import RetailConfig, SelfMaintainer, build_retail_database
from repro.storage.model import format_bytes
from repro.warehouse.deferred import DeferredMaintainer
from repro.warehouse.shared import SharedDetailWarehouse
from repro.workloads.retail import product_sales_max_view, product_sales_view
from repro.workloads.streams import TransactionGenerator


def main() -> None:
    database = build_retail_database(
        RetailConfig(
            days=40,
            stores=3,
            products=100,
            products_sold_per_day=25,
            transactions_per_product=2,
            start_year=1997,
            seed=6,
        )
    )
    views = [product_sales_view(1997), product_sales_max_view()]
    print(f"sources: {len(database.relation('sale')):,} sales; "
          f"views: {[v.name for v in views]}\n")

    eager = [SelfMaintainer(v, database) for v in views]
    deferred = [
        DeferredMaintainer(SelfMaintainer(v, database)) for v in views
    ]
    shared = SharedDetailWarehouse(views, database)

    generator = TransactionGenerator(database, seed=31)
    transactions = [generator.step() for __ in range(60)]

    started = time.perf_counter()
    for transaction in transactions:
        for maintainer in eager:
            maintainer.apply(transaction)
    eager_time = time.perf_counter() - started

    started = time.perf_counter()
    for transaction in transactions:
        for maintainer in deferred:
            maintainer.apply(transaction)
    stats = [maintainer.refresh() for maintainer in deferred]
    deferred_time = time.perf_counter() - started

    started = time.perf_counter()
    for transaction in transactions:
        shared.apply(transaction)
    shared_time = time.perf_counter() - started

    print("write path (60 transactions):")
    print(f"  eager     {eager_time * 1e3:8.1f} ms")
    print(f"  deferred  {deferred_time * 1e3:8.1f} ms "
          f"(coalescing cancelled "
          f"{sum(s.cancelled_rows for s in stats)} rows)")
    print(f"  shared    {shared_time * 1e3:8.1f} ms (detail only; "
          "summaries reconstructed on read)")

    print("\ncurrent-detail storage:")
    eager_bytes = sum(m.detail_size_bytes() for m in eager)
    print(f"  per-view  {format_bytes(eager_bytes)}")
    print(f"  shared    {format_bytes(shared.detail_size_bytes())}")

    print("\nexactness audit (vs recomputation from the live sources):")
    for index, view in enumerate(views):
        truth = view.evaluate(database)
        checks = [
            ("eager", eager[index].current_view()),
            ("deferred", deferred[index].current_view()),
            ("shared", shared.summary(view.name)),
        ]
        verdicts = ", ".join(
            f"{name}: {'OK' if relation.same_bag(truth) else 'MISMATCH'}"
            for name, relation in checks
        )
        print(f"  {view.name}: {verdicts}")


if __name__ == "__main__":
    main()
