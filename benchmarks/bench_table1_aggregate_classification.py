"""E1 — Table 1: classification of SQL aggregates (SMA / SMAS).

Rather than restating the table, this bench *derives* it empirically by
probing the engine's incremental aggregate states with insertion-only
and insertion+deletion workloads, then prints the observed
classification next to the paper's and asserts they coincide.
"""

import random

from repro.core.aggregates import classification_table, classify_aggregate
from repro.engine.aggregates import (
    AggregateFunction,
    MaintenanceError,
    compute_aggregate,
    make_aggregate_state,
)

from conftest import banner

PAPER_TABLE1 = {
    # aggregate: (SMA insert, SMA/SMAS delete achievable with companions)
    "COUNT": (True, True),
    "SUM": (True, True),    # with COUNT included
    "AVG": (True, True),    # via SUM and COUNT
    "MIN": (True, False),
    "MAX": (True, False),
}


def probe_aggregate(func: AggregateFunction, rng: random.Random) -> tuple[bool, bool]:
    """Empirically test insert- and delete-maintainability of ``func``."""
    insert_ok = True
    delete_ok = True
    for __ in range(100):
        state = make_aggregate_state(func)
        live: list[int] = []
        for __step in range(30):
            if live and rng.random() < 0.4:
                value = live.pop(rng.randrange(len(live)))
                try:
                    state.delete(value)
                except MaintenanceError:
                    delete_ok = False
                    live.append(value)
                    break
            else:
                value = rng.randint(-50, 50)
                try:
                    state.insert(value)
                except MaintenanceError:
                    insert_ok = False
                    break
                live.append(value)
            if live and state.result() != compute_aggregate(func, live):
                raise AssertionError(f"{func} state diverged from recomputation")
    return insert_ok, delete_ok


def derive_table1() -> dict[str, tuple[bool, bool]]:
    rng = random.Random(1998)
    return {
        func.value: probe_aggregate(func, rng) for func in AggregateFunction
    }


def test_table1_probe_matches_paper(benchmark):
    observed = benchmark(derive_table1)

    print(banner("Table 1 - classification of SQL aggregates (observed vs paper)"))
    print(f"{'aggregate':<10} {'ins (obs/paper)':<18} {'del (obs/paper)':<18}")
    for name, (ins, dele) in observed.items():
        p_ins, p_del = PAPER_TABLE1[name]
        print(f"{name:<10} {str(ins):<7}/{str(p_ins):<10} {str(dele):<7}/{str(p_del):<10}")
        assert ins == p_ins
        assert dele == p_del

    print(banner("Table 1/2 summary as printed by the library"))
    for row in classification_table():
        print(
            f"{row['aggregate']:<6} SMA={row['sma']} SMAS={row['smas']} "
            f"replaced_by={row['replaced_by']:<14} class={row['class']}"
        )


def test_classification_throughput(benchmark):
    def classify_everything():
        results = []
        for func in AggregateFunction:
            for distinct in (False, True):
                for append_only in (False, True):
                    results.append(
                        classify_aggregate(func, distinct, append_only)
                    )
        return results

    results = benchmark(classify_everything)
    assert len(results) == 20
