"""E3 — Tables 3 and 4: the sale auxiliary view before and after smart
duplicate compression.

Rebuilds both instances from a detail instance consistent with the
paper's example, prints them in the paper's layout, and times the
compression machinery (planning + materialization) at growing scale.
"""

from repro.core.compression import plan_compression
from repro.core.derivation import derive_auxiliary_views
from repro.core.view import make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads.retail import (
    paper_example_rows,
    paper_mini_database,
    product_sales_view,
)

from conftest import banner


def table3_view():
    """A view that pins price (via MAX) so the auxiliary view shows the
    pre-folding shape of Table 3: (timeid, productid, price, COUNT(*))."""
    return make_view(
        "t3",
        ("sale",),
        [
            GroupByItem(Column("timeid", "sale")),
            GroupByItem(Column("productid", "sale")),
            AggregateItem(AggregateFunction.MAX, Column("price", "sale"), alias="mx"),
            AggregateItem(AggregateFunction.SUM, Column("price", "sale"), alias="s"),
            AggregateItem(AggregateFunction.COUNT, None, alias="c"),
        ],
    )


def table4_view():
    """SUM-only: price folds away, giving Table 4's
    (timeid, productid, SUM(price), COUNT(*))."""
    return make_view(
        "t4",
        ("sale",),
        [
            GroupByItem(Column("timeid", "sale")),
            GroupByItem(Column("productid", "sale")),
            AggregateItem(AggregateFunction.SUM, Column("price", "sale"), alias="s"),
            AggregateItem(AggregateFunction.COUNT, None, alias="c"),
        ],
    )


def build_instances():
    # Apply Algorithm 3.1's projection directly so both shapes can be
    # shown even when Algorithm 3.2 would eliminate the view outright
    # (the all-CSMAS Table 4 case).
    from repro.engine.operators import generalized_project

    database = paper_mini_database(paper_example_rows())
    instances = []
    for view in (table3_view(), table4_view()):
        plan = plan_compression(view, "sale", key="id")
        instances.append(
            generalized_project(
                database.relation("sale"),
                plan.projection_items(),
                qualifier="sale",
            )
        )
    return tuple(instances)


def test_tables_3_and_4(benchmark):
    table3, table4 = benchmark(build_instances)

    print(banner("Table 3 - sale auxiliary view after adding COUNT(*)"))
    print(table3.pretty())
    print(banner("Table 4 - sale auxiliary view after smart duplicate compression"))
    print(table4.pretty())

    # Table 3 keeps price as a grouping attribute; Table 4 folds it.
    assert table3.schema.qualified_names() == (
        "sale.timeid", "sale.productid", "sale.price", "sale.cnt",
    )
    assert table4.schema.qualified_names() == (
        "sale.timeid", "sale.productid", "sale.sum_price", "sale.cnt",
    )
    # The example instance: 10 detail rows -> 6 groups in both shapes
    # (every (timeid, productid) group has a single price here).
    assert len(table3) == 6
    assert len(table4) == 6
    # Folding: Table 4 carries SUM(price) = price x count per group.
    rows3 = {(r[0], r[1]): (r[2], r[3]) for r in table3}
    rows4 = {(r[0], r[1]): (r[2], r[3]) for r in table4}
    for key, (price, count) in rows3.items():
        assert rows4[key] == (price * count, count)


def test_compression_planning_speed(benchmark):
    view = product_sales_view(1997)
    database = paper_mini_database()

    def plan():
        return [
            plan_compression(view, table, database.table(table).key)
            for table in view.tables
        ]

    plans = benchmark(plan)
    assert len(plans) == 3


def test_compression_materialization_speed(benchmark, retail_database):
    """Time the actual folding of a 13k-row fact table into saledtl."""
    view = product_sales_view(1997)
    aux = derive_auxiliary_views(view, retail_database)

    def materialize():
        return aux.materialize(retail_database)["sale"]

    compressed = benchmark(materialize)
    fact_rows = len(retail_database.relation("sale"))
    print(
        f"\ncompression: {fact_rows} fact rows -> {len(compressed)} "
        f"auxiliary groups ({fact_rows / len(compressed):.1f}x fewer)"
    )
    assert len(compressed) < fact_rows
