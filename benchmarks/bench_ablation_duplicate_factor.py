"""A1 — ablation: compression ratio vs duplicate factor.

Smart duplicate compression wins exactly as much as the data repeats:
the paper's worst case for saledtl is every product selling every day
(one group per product-day regardless of transaction volume).  This
sweep varies transactions-per-product and verifies the auxiliary view's
size stays constant while the fact table grows linearly — i.e. the
compression factor is proportional to the duplicate factor.
"""

from repro.core.derivation import derive_auxiliary_views
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_view,
)

from conftest import banner

DUPLICATE_FACTORS = (1, 2, 5, 10)


def sweep_duplicate_factor():
    results = []
    for transactions in DUPLICATE_FACTORS:
        config = RetailConfig(
            days=20,
            stores=2,
            products=30,
            products_sold_per_day=30,   # worst case: all products daily
            transactions_per_product=transactions,
            start_year=1997,
            seed=3,
        )
        database = build_retail_database(config)
        view = product_sales_view(1997)
        aux = derive_auxiliary_views(view, database)
        saledtl = aux.materialize(database)["sale"]
        fact = database.relation("sale")
        results.append(
            {
                "txns_per_product": transactions,
                "fact_rows": len(fact),
                "aux_rows": len(saledtl),
                "ratio": fact.size_bytes() / saledtl.size_bytes(),
            }
        )
    return results


def test_compression_tracks_duplicate_factor(benchmark):
    results = benchmark.pedantic(sweep_duplicate_factor, rounds=1, iterations=1)

    print(banner("A1 - compression ratio vs duplicate factor"))
    print(f"{'txns/product':<14}{'fact rows':<12}{'saledtl rows':<14}{'bytes ratio':<12}")
    for row in results:
        print(
            f"{row['txns_per_product']:<14}{row['fact_rows']:<12}"
            f"{row['aux_rows']:<14}{row['ratio']:<12.2f}"
        )

    # The auxiliary view is capped at one group per (day, product): its
    # size must not grow with the duplicate factor.
    aux_rows = {row["aux_rows"] for row in results}
    assert len(aux_rows) == 1
    assert aux_rows == {20 * 30}
    # The fact table grows linearly, so the ratio does too.
    ratios = [row["ratio"] for row in results]
    assert ratios == sorted(ratios)
    assert ratios[-1] / ratios[0] == DUPLICATE_FACTORS[-1] / DUPLICATE_FACTORS[0]


def test_no_duplicates_is_the_break_even_point(benchmark):
    """With one transaction per product-day-store and one store, every
    group has a single tuple: compression only saves the dropped/folded
    columns, which is the technique's floor."""

    def measure():
        config = RetailConfig(
            days=15,
            stores=1,
            products=25,
            products_sold_per_day=25,
            transactions_per_product=1,
            start_year=1997,
            seed=9,
        )
        database = build_retail_database(config)
        aux = derive_auxiliary_views(product_sales_view(1997), database)
        saledtl = aux.materialize(database)["sale"]
        return database.relation("sale"), saledtl

    fact, saledtl = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert len(saledtl) == len(fact)  # one group per tuple
    # Still smaller: 4 fields (fks + sum + cnt) vs 5 (id, fks, store, price).
    assert saledtl.size_bytes() < fact.size_bytes()
    print(
        f"\nbreak-even: {len(fact)} rows in both; bytes "
        f"{fact.size_bytes():,} -> {saledtl.size_bytes():,}"
    )
