"""A5 — ablation: shared detail data for classes of summary tables.

Section 4's future-work item, implemented in ``repro.core.sharing``.
Two regimes emerge, and this bench measures both:

* **Overlapping class** — views grouping on the same fact attributes
  (different filters/aggregates): the merged view stores the shared
  groups once and sharing wins roughly linearly in the class size.

* **Orthogonal class** — views grouping on *different* dimensions: the
  merged view must group on the union of the attributes, whose group
  count approaches the cross product of the individual group counts —
  the same phenomenon that makes full data-cube materialization
  expensive.  Sharing can then *lose*, which the analyzer reports
  honestly so a warehouse designer can decide per class.

Either way the rollup is lossless: every view's own auxiliary views are
recoverable from the shared detail tuple-for-tuple.
"""

from repro.core.derivation import derive_auxiliary_views
from repro.core.sharing import (
    materialize_from_merged,
    merge_views,
    sharing_report,
)
from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads.retail import product_sales_view

from conftest import banner


def overlapping_class():
    """Three views all grouping sales by (timeid, productid) structure:
    the paper's product_sales plus two filtered/re-aggregated variants."""

    def monthly(name, month_op, month_value, agg):
        return make_view(
            name,
            ("sale", "time", "product"),
            [
                GroupByItem(Column("month", "time")),
                agg,
                AggregateItem(AggregateFunction.COUNT, None, alias="n"),
            ],
            selection=[
                Comparison("=", Column("year", "time"), Literal(1997)),
                Comparison(month_op, Column("month", "time"), Literal(month_value)),
            ],
            joins=[
                JoinCondition("sale", "timeid", "time", "id"),
                JoinCondition("sale", "productid", "product", "id"),
            ],
        )

    return [
        product_sales_view(1997),
        monthly(
            "h1_revenue",
            "<=",
            6,
            AggregateItem(AggregateFunction.SUM, Column("price", "sale"), alias="rev"),
        ),
        monthly(
            "h2_avg_price",
            ">",
            6,
            AggregateItem(AggregateFunction.AVG, Column("price", "sale"), alias="avg_p"),
        ),
    ]


def orthogonal_class():
    """Views grouping on different dimensions: time, store, product."""
    monthly = make_view(
        "monthly_revenue",
        ("sale", "time"),
        [
            GroupByItem(Column("month", "time")),
            AggregateItem(AggregateFunction.SUM, Column("price", "sale"), alias="rev"),
            AggregateItem(AggregateFunction.COUNT, None, alias="n"),
        ],
        selection=[Comparison("=", Column("year", "time"), Literal(1997))],
        joins=[JoinCondition("sale", "timeid", "time", "id")],
    )
    per_store = make_view(
        "store_revenue",
        ("sale", "store"),
        [
            GroupByItem(Column("city", "store")),
            AggregateItem(AggregateFunction.SUM, Column("price", "sale"), alias="rev"),
            AggregateItem(AggregateFunction.COUNT, None, alias="n"),
        ],
        joins=[JoinCondition("sale", "storeid", "store", "id")],
    )
    per_category = make_view(
        "category_counts",
        ("sale", "product"),
        [
            GroupByItem(Column("category", "product")),
            AggregateItem(AggregateFunction.COUNT, None, alias="n"),
            AggregateItem(AggregateFunction.AVG, Column("price", "sale"), alias="avg_p"),
        ],
        joins=[JoinCondition("sale", "productid", "product", "id")],
    )
    return [monthly, per_store, per_category]


def _report(views, database):
    aux_sets = [derive_auxiliary_views(v, database) for v in views]
    return sharing_report(views, aux_sets, database)


def test_sharing_wins_on_overlapping_classes(benchmark, retail_database):
    views = overlapping_class()
    report = benchmark.pedantic(
        lambda: _report(views, retail_database), rounds=1, iterations=1
    )
    print(banner("A5 - sharing: overlapping class (same grouping structure)"))
    for name, size in report.individual_bytes.items():
        print(f"  {name:<20}{size:>12,} B")
    print(f"  {'TOTAL individual':<20}{report.total_individual:>12,} B")
    print(f"  {'shared (merged)':<20}{report.shared_bytes:>12,} B")
    print(f"  sharing saves {report.savings_factor:.2f}x")
    assert report.savings_factor > 1.5


def test_sharing_can_lose_on_orthogonal_classes(benchmark, retail_database):
    views = orthogonal_class()
    report = benchmark.pedantic(
        lambda: _report(views, retail_database), rounds=1, iterations=1
    )
    print(banner("A5 - sharing: orthogonal class (cross-grouping inflation)"))
    for name, size in report.individual_bytes.items():
        print(f"  {name:<20}{size:>12,} B")
    print(f"  {'TOTAL individual':<20}{report.total_individual:>12,} B")
    print(f"  {'shared (merged)':<20}{report.shared_bytes:>12,} B")
    print(f"  sharing factor {report.savings_factor:.2f}x "
          "(< 1: the union grouping approaches the cross product)")
    # The analyzer must report the inflation rather than hide it.
    assert report.shared_bytes > max(report.individual_bytes.values())


def test_sharing_is_lossless(benchmark, retail_database):
    """Every view's auxiliary views must be recoverable from the shared
    detail by selection + rollup, tuple for tuple — in both regimes."""
    views = overlapping_class() + orthogonal_class()
    shared = merge_views(views, retail_database)
    shared_relations = shared.materialize(retail_database)

    def recover_all():
        recovered = {}
        for view in views:
            aux_set = derive_auxiliary_views(view, retail_database)
            recovered[view.name] = (
                aux_set,
                materialize_from_merged(aux_set, shared, shared_relations),
            )
        return recovered

    recovered = benchmark.pedantic(recover_all, rounds=1, iterations=1)

    mismatches = 0
    for view in views:
        aux_set, from_shared = recovered[view.name]
        direct = aux_set.materialize(retail_database)
        for table in direct:
            if not from_shared[table].same_bag(direct[table]):
                mismatches += 1
    print(f"\nrollup recovered every auxiliary view exactly: {mismatches == 0}")
    assert mismatches == 0


def test_shared_warehouse_tradeoff(benchmark, retail_database):
    """The operational tradeoff of shared detail: single-pass delta
    folding (cheap writes) against reconstruct-on-read summaries."""
    import time

    from repro.core.maintenance import SelfMaintainer
    from repro.engine.deltas import Delta, Transaction
    from repro.warehouse.shared import SharedDetailWarehouse

    views = overlapping_class()
    shared_wh = SharedDetailWarehouse(views, retail_database)
    solo = [SelfMaintainer(v, retail_database) for v in views]

    next_id = max(retail_database.relation("sale").column("id")) + 1
    transactions = [
        Transaction.of(
            Delta.insertion("sale", [(next_id + i, 1 + i % 30, 1 + i % 50, 1, 9)])
        )
        for i in range(50)
    ]

    def shared_write_path():
        for transaction in transactions:
            shared_wh.apply(transaction)
        return shared_wh

    started = time.perf_counter()
    benchmark.pedantic(shared_write_path, rounds=1, iterations=1)
    shared_write = time.perf_counter() - started

    started = time.perf_counter()
    for transaction in transactions:
        for maintainer in solo:
            maintainer.apply(transaction)
    solo_write = time.perf_counter() - started

    started = time.perf_counter()
    shared_summaries = {v.name: shared_wh.summary(v.name) for v in views}
    shared_read = time.perf_counter() - started

    started = time.perf_counter()
    solo_summaries = {m.view.name: m.current_view() for m in solo}
    solo_read = time.perf_counter() - started

    for name in shared_summaries:
        assert shared_summaries[name].same_bag(solo_summaries[name])

    print(banner("A5 - shared warehouse vs per-view maintainers (runtime)"))
    print(f"write 50 txns:  shared {shared_write * 1e3:7.1f} ms   "
          f"per-view {solo_write * 1e3:7.1f} ms")
    print(f"read summaries: shared {shared_read * 1e3:7.1f} ms   "
          f"per-view {solo_read * 1e3:7.1f} ms")
    shared_detail = shared_wh.detail_size_bytes()
    solo_detail = sum(m.detail_size_bytes() for m in solo)
    print(f"detail bytes:   shared {shared_detail:10,}   per-view {solo_detail:10,}")
