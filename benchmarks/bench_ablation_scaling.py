"""A6 — ablation: maintenance cost vs fact-table size.

The case for self-maintenance is asymptotic: recomputation scales with
the detail size, incremental maintenance with the delta (plus the size
of the *touched groups* for non-CSMAS aggregates).  This bench sweeps
the fact-table size and reports per-insert latency for both strategies,
plus the deferred-refresh mode where buffered churn cancels before any
maintenance work happens.
"""

import time

from repro.core.maintenance import SelfMaintainer
from repro.engine.deltas import Delta, Transaction
from repro.warehouse.baselines import FullReplicationMaintainer
from repro.warehouse.deferred import DeferredMaintainer
from repro.workloads.retail import RetailConfig, build_retail_database

from conftest import banner
from bench_ablation_maintenance_speed import csmas_only_view

SCALES = (2, 8, 32)  # products_sold_per_day multipliers


def _database(scale: int):
    return build_retail_database(
        RetailConfig(
            days=30,
            stores=2,
            products=max(60, scale * 10),
            products_sold_per_day=scale * 10,
            transactions_per_product=2,
            start_year=1997,
            seed=scale,
        )
    )


def _inserts(database, count):
    next_id = max(database.relation("sale").column("id")) + 1
    return [
        Transaction.of(
            Delta.insertion(
                "sale", [(next_id + i, 1 + i % 30, 1 + i % 50, 1, 100)]
            )
        )
        for i in range(count)
    ]


def _per_insert_seconds(maintainer, transactions, recompute=False):
    started = time.perf_counter()
    for transaction in transactions:
        maintainer.apply(transaction)
        if recompute:
            maintainer.current_view()
    return (time.perf_counter() - started) / len(transactions)


def test_latency_scaling(benchmark):
    view = csmas_only_view()

    def sweep():
        rows = []
        for scale in SCALES:
            database = _database(scale)
            incremental = SelfMaintainer(view, database)
            recompute = FullReplicationMaintainer(view, database)
            transactions = _inserts(database, 20)
            rows.append(
                (
                    len(database.relation("sale")),
                    _per_insert_seconds(incremental, transactions),
                    _per_insert_seconds(recompute, transactions, recompute=True),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print(banner("A6 - per-insert latency vs fact-table size (CSMAS view)"))
    print(f"{'fact rows':<12}{'incremental':<15}{'recompute':<15}{'ratio':<8}")
    for fact_rows, inc, rec in rows:
        print(
            f"{fact_rows:<12,}{inc * 1e6:<15,.0f}{rec * 1e6:<15,.0f}"
            f"{rec / inc:<8.0f}"
        )
    print("(latencies in microseconds)")

    # Recompute cost grows with the fact table; incremental must not
    # grow anywhere near proportionally.
    growth_recompute = rows[-1][2] / rows[0][2]
    growth_incremental = rows[-1][1] / rows[0][1]
    assert growth_recompute > 4 * growth_incremental


def test_deferred_refresh_with_churn(benchmark):
    """Buffered insert+delete churn cancels at refresh: the deferred
    warehouse does no maintenance work for it at all."""
    database = _database(8)
    view = csmas_only_view()
    deferred = DeferredMaintainer(SelfMaintainer(view, database))
    next_id = max(database.relation("sale").column("id")) + 1
    churn_rows = [(next_id + i, 1 + i % 30, 1, 1, 100) for i in range(200)]

    def buffer_churn_and_refresh():
        for row in churn_rows:
            deferred.apply(Transaction.of(Delta.insertion("sale", [row])))
        for row in churn_rows:
            deferred.apply(Transaction.of(Delta.deletion("sale", [row])))
        return deferred.refresh()

    stats = benchmark.pedantic(buffer_churn_and_refresh, rounds=1, iterations=1)
    print(banner("A6 - deferred refresh with pure churn"))
    print(f"transactions buffered: {stats.transactions}")
    print(f"rows buffered:         {stats.buffered_rows}")
    print(f"rows propagated:       {stats.propagated_rows}")
    assert stats.propagated_rows == 0
    assert stats.cancelled_rows == 400


def test_dimension_update_latency_with_indexes(benchmark):
    """Dimension updates probe the root auxiliary view through its
    incrementally-maintained hash index instead of re-hashing it."""
    from repro.core.view import JoinCondition, make_view
    from repro.engine.aggregates import AggregateFunction
    from repro.engine.expressions import Column
    from repro.engine.operators import AggregateItem, GroupByItem

    view = make_view(
        "prod_rev",
        ("sale", "product"),
        [
            GroupByItem(Column("category", "product")),
            AggregateItem(AggregateFunction.SUM, Column("price", "sale"), alias="rev"),
            AggregateItem(AggregateFunction.COUNT, None, alias="n"),
        ],
        joins=[JoinCondition("sale", "productid", "product", "id")],
    )

    def measure(restrict):
        database = build_retail_database(
            RetailConfig(
                days=40,
                stores=2,
                products=400,
                products_sold_per_day=200,
                transactions_per_product=2,
                start_year=1997,
                seed=5,
            )
        )
        maintainer = SelfMaintainer(view, database)
        if not restrict:
            maintainer.set_restriction(False)
        products = list(database.relation("product").rows)
        transactions = []
        for i in range(30):
            old = products[i]
            new = (old[0], old[1], f"cat_{i % 4}")
            transactions.append(
                Transaction.of(Delta.update("product", [old], [new]))
            )
            products[i] = new
        for transaction in transactions:
            database.apply(transaction)
        started = time.perf_counter()
        for transaction in transactions:
            maintainer.apply(transaction)
        per_update = (time.perf_counter() - started) / len(transactions)
        assert maintainer.current_view().same_bag(view.evaluate(database))
        return per_update

    with_index = benchmark.pedantic(
        lambda: measure(True), rounds=1, iterations=1
    )
    without = measure(False)

    print(banner("A6 - dimension-update latency: indexed vs full hash join"))
    print(f"with index probe:   {with_index * 1e6:8.0f} us/update")
    print(f"full hash join:     {without * 1e6:8.0f} us/update")
    print(f"speedup:            {without / with_index:.1f}x")
    assert with_index < without
