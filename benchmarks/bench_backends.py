"""Backend comparison: in-memory interpreter vs columnar kernels vs SQLite.

Replays the same deterministic update streams used by the hot-path
benchmark against three maintainers over identical warehouses — the
default :class:`MemoryBackend` row interpreter, the
:class:`ColumnarBackend` (typed column stores + fused batch kernels),
and :class:`SQLiteBackend` (stdlib ``sqlite3``, in-memory database) —
checks the final view and auxiliary-view states are bag-identical, and
reports maintenance rows/second for all three.

The delta batch per transaction grows with the warehouse scale
(``SCALE_BATCH``): small warehouses see trickle updates, large ones
see bulk loads.  That mirrors deployment practice and is what makes
the comparison informative — the columnar backend amortizes its
kernel dispatch over the batch, so its advantage is batch-bound, while
the row interpreter's per-row costs are batch-invariant.

Raw rows/second is hardware-bound, so the committed baseline gates on
machine-invariant ratios measured within one run on one machine:

* ``relative_throughput`` — SQLite rows/s over memory rows/s: the SQL
  generation + staging overhead per transaction must not silently
  grow;
* ``relative_throughput_columnar`` — columnar rows/s over memory
  rows/s: the batch kernels must stay ahead of the row interpreter.

Each stream record also carries the SQLite side's physical detail
bytes (``dbstat``) next to the paper-model byte estimate, which is
what the EXPERIMENTS storage entry quotes.

Standalone::

    python benchmarks/bench_backends.py --scale large

writes ``BENCH_backends.json``; ``--scale all`` covers all three
scales.  Also collectable by pytest as a smoke test at the smallest
scale.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import (
    SCALES,
    STREAMS,
    assert_equivalent,
    delta_rows_of,
    hotpath_view,
    make_stream,
    replay,
    txn_histograms,
)

from repro.backends.columnar import ColumnarBackend
from repro.backends.sqlite import SQLiteBackend
from repro.core.maintenance import SelfMaintainer
from repro.workloads.retail import build_retail_database

BACKENDS = ("memory", "columnar", "sqlite")

#: Delta rows per transaction at each scale.  Larger warehouses ingest
#: larger batches; the ratios below are measured at these points.
SCALE_BATCH = {"small": 8, "medium": 32, "large": 128}


def run_scale(scale: str, transactions: int = 120) -> dict:
    """Replay all three streams at ``scale`` on all three backends."""
    config = SCALES[scale]
    batch = SCALE_BATCH[scale]
    database = build_retail_database(config)
    view = hotpath_view(config.start_year)
    results: dict = {
        "fact_rows": config.fact_rows(),
        "transactions_per_stream": transactions,
        "batch": batch,
        "streams": {},
    }
    for kind in STREAMS:
        stream = make_stream(
            database, kind, transactions=transactions, batch=batch
        )
        delta_rows = delta_rows_of(stream)
        memory_m = SelfMaintainer(view, database, backend="memory")
        columnar_m = SelfMaintainer(view, database, backend=ColumnarBackend())
        sqlite_m = SelfMaintainer(view, database, backend=SQLiteBackend())
        seconds_memory = replay(memory_m, stream)
        seconds_columnar = replay(columnar_m, stream)
        seconds_sqlite = replay(sqlite_m, stream)
        assert_equivalent(f"{scale}/{kind}/columnar", memory_m, columnar_m)
        assert_equivalent(f"{scale}/{kind}/sqlite", memory_m, sqlite_m)
        rows_memory = delta_rows / seconds_memory
        rows_columnar = delta_rows / seconds_columnar
        rows_sqlite = delta_rows / seconds_sqlite
        results["streams"][kind] = {
            "delta_rows": delta_rows,
            "seconds_memory": round(seconds_memory, 4),
            "seconds_columnar": round(seconds_columnar, 4),
            "seconds_sqlite": round(seconds_sqlite, 4),
            "rows_per_sec_memory": round(rows_memory, 1),
            "rows_per_sec_columnar": round(rows_columnar, 1),
            "rows_per_sec_sqlite": round(rows_sqlite, 1),
            # The machine-invariant ratios the regression gates watch.
            "relative_throughput": round(rows_sqlite / rows_memory, 3),
            "relative_throughput_columnar": round(
                rows_columnar / rows_memory, 3
            ),
            # Paper-model estimate vs what SQLite actually stores.
            "detail_bytes_model": sqlite_m.detail_size_bytes(),
            "detail_bytes_physical": sqlite_m.physical_detail_size_bytes(),
            "histograms": txn_histograms(sqlite_m.perf),
        }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=[*SCALES, "all"], default="all",
        help="warehouse scale to replay (default: all three)",
    )
    parser.add_argument(
        "--transactions", type=int, default=120,
        help="transactions per stream (default: 120)",
    )
    parser.add_argument(
        "--out", default="BENCH_backends.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    scales = list(SCALES) if args.scale == "all" else [args.scale]
    report = {"benchmark": "backend_comparison", "scales": {}}
    for scale in scales:
        print(f"== scale: {scale} (batch {SCALE_BATCH[scale]}) ==")
        measured = run_scale(scale, transactions=args.transactions)
        report["scales"][scale] = measured
        for kind, numbers in measured["streams"].items():
            print(
                f"  {kind:<13} memory {numbers['rows_per_sec_memory']:>12,.0f}"
                f"  columnar {numbers['rows_per_sec_columnar']:>12,.0f}"
                f" (x{numbers['relative_throughput_columnar']:.2f})"
                f"  sqlite {numbers['rows_per_sec_sqlite']:>12,.0f} rows/s"
                f" (x{numbers['relative_throughput']:.2f})"
            )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


def test_backends_smoke():
    """CI smoke: smallest scale, short streams, equivalence enforced."""
    measured = run_scale("small", transactions=40)
    for kind, numbers in measured["streams"].items():
        assert numbers["delta_rows"] > 0, kind
        assert numbers["relative_throughput"] > 0, kind
        assert numbers["relative_throughput_columnar"] > 0, kind
        assert numbers["detail_bytes_model"] >= 0, kind
        for name, summary in numbers["histograms"].items():
            assert summary["count"] == 40, (kind, name)
            assert summary["p50"] is not None, (kind, name)


if __name__ == "__main__":
    raise SystemExit(main())
