"""Hot-path maintenance throughput: indexed/batched vs the legacy loop.

Replays identical deterministic update streams (insert-heavy,
delete-heavy, mixed-with-churn) against two maintainers over the same
warehouse — ``hotpath=True`` (delta coalescing, maintained indexes,
full join-tree restriction) and ``hotpath=False`` (the pre-optimization
loop: invalidate-and-rebuild key caches, full-relation hash builds for
every fact delta) — checks the final states are bag-identical, and
reports rows/second for both plus the speedup.

Standalone::

    python benchmarks/bench_hotpath_maintenance.py --scale large

writes ``BENCH_hotpath.json``; ``--scale all`` covers all three scales.
Also collectable by pytest (``pytest benchmarks/bench_hotpath_maintenance.py``)
as a smoke test at the smallest scale.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.maintenance import SelfMaintainer
from repro.core.view import JoinCondition, make_view
from repro.perf import TXN_DELTA_ROWS, TXN_LATENCY_MS, TXN_ROWS_PER_SEC
from repro.engine.aggregates import AggregateFunction
from repro.engine.deltas import Delta, Transaction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads.retail import RetailConfig, build_retail_database

SCALES = {
    "small": RetailConfig(
        days=30, stores=2, products=200, products_sold_per_day=10,
        transactions_per_product=2, start_year=1997, seed=11,
    ),
    "medium": RetailConfig(
        days=90, stores=3, products=1000, products_sold_per_day=20,
        transactions_per_product=2, start_year=1997, seed=11,
    ),
    "large": RetailConfig(
        days=180, stores=4, products=3000, products_sold_per_day=25,
        transactions_per_product=2, start_year=1997, seed=11,
    ),
}

STREAMS = ("insert_heavy", "delete_heavy", "mixed")


def hotpath_view(year: int = 1997):
    """A fully-CSMAS view (no DISTINCT), so throughput measures the
    maintenance loop itself rather than Section 3.2's recomputation."""
    return make_view(
        "monthly_category_sales",
        ("sale", "time", "product"),
        [
            GroupByItem(Column("month", "time")),
            GroupByItem(Column("category", "product")),
            AggregateItem(
                AggregateFunction.SUM, Column("price", "sale"), alias="TotalPrice"
            ),
            AggregateItem(AggregateFunction.COUNT, None, alias="TotalCount"),
        ],
        selection=[Comparison("=", Column("year", "time"), Literal(year))],
        joins=[
            JoinCondition("sale", "timeid", "time", "id"),
            JoinCondition("sale", "productid", "product", "id"),
        ],
    )


def make_stream(
    database, kind: str, transactions: int = 120, batch: int = 8, seed: int = 5
) -> list[Transaction]:
    """A deterministic, integrity-valid stream of ``sale`` transactions.

    ``insert_heavy`` is ~80% insertions, ``delete_heavy`` ~80% deletions
    of live rows, and ``mixed`` alternates both and adds churn pairs —
    live rows deleted and re-inserted within one transaction, which the
    hot path coalesces away and the legacy loop propagates twice.
    """
    rng = random.Random(seed)
    live = list(database.relation("sale"))
    next_id = max(row[0] for row in live) + 1
    days = len(database.relation("time"))
    products = len(database.relation("product"))
    stores = len(database.relation("store"))
    stream: list[Transaction] = []

    def fresh_rows(count: int) -> list[tuple]:
        nonlocal next_id
        rows = []
        for __ in range(count):
            rows.append(
                (
                    next_id,
                    rng.randint(1, days),
                    rng.randint(1, products),
                    rng.randint(1, stores),
                    rng.randint(50, 5_000),
                )
            )
            next_id += 1
        return rows

    def take_live(count: int) -> list[tuple]:
        count = min(count, len(live))
        taken = []
        for __ in range(count):
            taken.append(live.pop(rng.randrange(len(live))))
        return taken

    for step in range(transactions):
        inserted: list[tuple] = []
        deleted: list[tuple] = []
        if kind == "insert_heavy":
            inserted = fresh_rows(batch)
            if step % 5 == 4:
                deleted = take_live(batch // 4)
        elif kind == "delete_heavy":
            deleted = take_live(batch)
            if step % 5 == 4:
                inserted = fresh_rows(batch // 4)
        else:  # mixed: half in, half out, plus churn pairs
            inserted = fresh_rows(batch // 2)
            deleted = take_live(batch // 2)
            churn = take_live(batch // 2)
            inserted += churn  # churn returns to live below, via inserted
            deleted += churn
        live.extend(inserted)
        stream.append(Transaction.of(Delta("sale", inserted, deleted)))
    return stream


def _replay(maintainer: SelfMaintainer, stream: list[Transaction]) -> float:
    started = time.perf_counter()
    for transaction in stream:
        maintainer.apply(transaction)
    return time.perf_counter() - started


def run_scale(scale: str, transactions: int = 120) -> dict:
    """Replay all three streams at ``scale``; return the measurements."""
    config = SCALES[scale]
    database = build_retail_database(config)
    view = hotpath_view(config.start_year)
    results: dict = {
        "fact_rows": config.fact_rows(),
        "transactions_per_stream": transactions,
        "streams": {},
    }
    for kind in STREAMS:
        stream = make_stream(database, kind, transactions=transactions)
        delta_rows = sum(
            len(d.inserted) + len(d.deleted) for tx in stream for d in tx
        )
        fast = SelfMaintainer(view, database, hotpath=True)
        slow = SelfMaintainer(view, database, hotpath=False)
        seconds_after = _replay(fast, stream)
        seconds_before = _replay(slow, stream)
        if not fast.current_view().same_bag(slow.current_view()):
            raise AssertionError(f"{scale}/{kind}: views diverged")
        for table in fast.aux_relations():
            if not fast.aux_relation(table).same_bag(slow.aux_relation(table)):
                raise AssertionError(f"{scale}/{kind}: aux {table} diverged")
        results["streams"][kind] = {
            "delta_rows": delta_rows,
            "seconds_before": round(seconds_before, 4),
            "seconds_after": round(seconds_after, 4),
            "rows_per_sec_before": round(delta_rows / seconds_before, 1),
            "rows_per_sec_after": round(delta_rows / seconds_after, 1),
            "speedup": round(seconds_before / seconds_after, 2),
            "perf": fast.perf.snapshot(),
            # Per-transaction distribution summaries (p50/p95/p99) from
            # the hot maintainer's metrics registry — tail latency and
            # per-transaction throughput, not just stream-wide means.
            "histograms": {
                "txn_latency_ms": fast.perf.histogram_summary(TXN_LATENCY_MS),
                "txn_delta_rows": fast.perf.histogram_summary(TXN_DELTA_ROWS),
                "txn_rows_per_sec": fast.perf.histogram_summary(
                    TXN_ROWS_PER_SEC
                ),
            },
        }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=[*SCALES, "all"], default="all",
        help="warehouse scale to replay (default: all three)",
    )
    parser.add_argument(
        "--transactions", type=int, default=120,
        help="transactions per stream (default: 120)",
    )
    parser.add_argument(
        "--out", default="BENCH_hotpath.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    scales = list(SCALES) if args.scale == "all" else [args.scale]
    report = {"benchmark": "hotpath_maintenance", "scales": {}}
    for scale in scales:
        print(f"== scale: {scale} ==")
        measured = run_scale(scale, transactions=args.transactions)
        report["scales"][scale] = measured
        for kind, numbers in measured["streams"].items():
            print(
                f"  {kind:<13} {numbers['rows_per_sec_before']:>12,.0f} -> "
                f"{numbers['rows_per_sec_after']:>12,.0f} rows/s "
                f"({numbers['speedup']:.1f}x)"
            )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


def test_hotpath_smoke(tmp_path):
    """CI smoke: smallest scale, short streams, equivalence enforced."""
    measured = run_scale("small", transactions=40)
    for kind, numbers in measured["streams"].items():
        assert numbers["delta_rows"] > 0, kind
        assert numbers["speedup"] > 0, kind
        for name, summary in numbers["histograms"].items():
            assert summary["count"] == 40, (kind, name)
            assert summary["p50"] is not None, (kind, name)


if __name__ == "__main__":
    raise SystemExit(main())
