"""Hot-path maintenance throughput: indexed/batched vs the legacy loop.

Replays identical deterministic update streams (insert-heavy,
delete-heavy, mixed-with-churn) against two maintainers over the same
warehouse — ``hotpath=True`` (delta coalescing, maintained indexes,
full join-tree restriction) and ``hotpath=False`` (the pre-optimization
loop: invalidate-and-rebuild key caches, full-relation hash builds for
every fact delta) — checks the final states are bag-identical, and
reports rows/second for both plus the speedup.

Standalone::

    python benchmarks/bench_hotpath_maintenance.py --scale large

writes ``BENCH_hotpath.json``; ``--scale all`` covers all three scales.
Also collectable by pytest (``pytest benchmarks/bench_hotpath_maintenance.py``)
as a smoke test at the smallest scale.

Scale configs, the benchmark view, and the stream generator live in
:mod:`harness` (shared with ``bench_backends.py`` and
``bench_sharded.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import (
    SCALES,
    STREAMS,
    assert_equivalent,
    delta_rows_of,
    hotpath_view,
    make_stream,
    replay,
    txn_histograms,
)

from repro.core.maintenance import SelfMaintainer
from repro.workloads.retail import build_retail_database


def run_scale(scale: str, transactions: int = 120) -> dict:
    """Replay all three streams at ``scale``; return the measurements."""
    config = SCALES[scale]
    database = build_retail_database(config)
    view = hotpath_view(config.start_year)
    results: dict = {
        "fact_rows": config.fact_rows(),
        "transactions_per_stream": transactions,
        "streams": {},
    }
    for kind in STREAMS:
        stream = make_stream(database, kind, transactions=transactions)
        delta_rows = delta_rows_of(stream)
        fast = SelfMaintainer(view, database, hotpath=True)
        slow = SelfMaintainer(view, database, hotpath=False)
        seconds_after = replay(fast, stream)
        seconds_before = replay(slow, stream)
        assert_equivalent(f"{scale}/{kind}", fast, slow)
        results["streams"][kind] = {
            "delta_rows": delta_rows,
            "seconds_before": round(seconds_before, 4),
            "seconds_after": round(seconds_after, 4),
            "rows_per_sec_before": round(delta_rows / seconds_before, 1),
            "rows_per_sec_after": round(delta_rows / seconds_after, 1),
            "speedup": round(seconds_before / seconds_after, 2),
            "perf": fast.perf.snapshot(),
            # Per-transaction distribution summaries (p50/p95/p99) from
            # the hot maintainer's metrics registry — tail latency and
            # per-transaction throughput, not just stream-wide means.
            "histograms": txn_histograms(fast.perf),
        }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=[*SCALES, "all"], default="all",
        help="warehouse scale to replay (default: all three)",
    )
    parser.add_argument(
        "--transactions", type=int, default=120,
        help="transactions per stream (default: 120)",
    )
    parser.add_argument(
        "--out", default="BENCH_hotpath.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    scales = list(SCALES) if args.scale == "all" else [args.scale]
    report = {"benchmark": "hotpath_maintenance", "scales": {}}
    for scale in scales:
        print(f"== scale: {scale} ==")
        measured = run_scale(scale, transactions=args.transactions)
        report["scales"][scale] = measured
        for kind, numbers in measured["streams"].items():
            print(
                f"  {kind:<13} {numbers['rows_per_sec_before']:>12,.0f} -> "
                f"{numbers['rows_per_sec_after']:>12,.0f} rows/s "
                f"({numbers['speedup']:.1f}x)"
            )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


def test_hotpath_smoke(tmp_path):
    """CI smoke: smallest scale, short streams, equivalence enforced."""
    measured = run_scale("small", transactions=40)
    for kind, numbers in measured["streams"].items():
        assert numbers["delta_rows"] > 0, kind
        assert numbers["speedup"] > 0, kind
        for name, summary in numbers["histograms"].items():
            assert summary["count"] == 40, (kind, name)
            assert summary["p50"] is not None, (kind, name)


if __name__ == "__main__":
    raise SystemExit(main())
