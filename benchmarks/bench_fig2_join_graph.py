"""E4 — Figure 2: the extended join graph of ``product_sales``.

Rebuilds and renders the annotated graph, checks it against the figure,
and times graph construction plus Need-set computation on star,
snowflake, and deep-chain shapes.
"""

from repro.core.joingraph import Annotation, ExtendedJoinGraph
from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column
from repro.engine.operators import AggregateItem, GroupByItem
from repro.engine.types import AttributeType
from repro.catalog.database import BaseTable, Database
from repro.workloads.retail import paper_mini_database, product_sales_view
from repro.workloads.snowflake import build_snowflake_database, category_sales_view

from conftest import banner


def test_figure2_structure(benchmark):
    database = paper_mini_database()
    view = product_sales_view(1997)

    graph = benchmark(lambda: ExtendedJoinGraph(view, database))

    print(banner("Figure 2 - extended join graph for product_sales"))
    print(graph.render())
    print("\nNeed sets:")
    for table in view.tables:
        print(f"  Need({table}) = {sorted(graph.need(table))}")

    assert graph.root == "sale"
    assert graph.annotation("time") is Annotation.GROUP
    assert graph.annotation("product") is Annotation.NONE
    assert graph.render().splitlines()[0] == "sale"


def test_snowflake_graph_and_needs(benchmark):
    database = build_snowflake_database()
    view = category_sales_view()

    def build_and_query():
        graph = ExtendedJoinGraph(view, database)
        return graph, {t: graph.need(t) for t in view.tables}

    graph, needs = benchmark(build_and_query)
    print(banner("Snowflake extended join graph"))
    print(graph.render())
    for table, need in needs.items():
        print(f"  Need({table}) = {sorted(need)}")
    assert needs["category"] >= {"product", "sale"}


def deep_chain_database(depth: int) -> tuple[Database, "object"]:
    """A chain t0 -> t1 -> ... -> t{depth-1} for scaling measurements."""
    database = Database()
    for level in reversed(range(depth)):
        columns = {"id": AttributeType.INT, "v": AttributeType.INT}
        references = {}
        if level + 1 < depth:
            columns[f"fk{level + 1}"] = AttributeType.INT
            references[f"fk{level + 1}"] = f"t{level + 1}"
        database.add_table(
            BaseTable(
                f"t{level}",
                columns,
                key="id",
                references=references,
            )
        )
    view = make_view(
        "chain",
        tuple(f"t{i}" for i in range(depth)),
        [
            GroupByItem(Column("v", f"t{depth - 1}")),
            AggregateItem(AggregateFunction.COUNT, None, alias="c"),
        ],
        joins=[
            JoinCondition(f"t{i}", f"fk{i + 1}", f"t{i + 1}", "id")
            for i in range(depth - 1)
        ],
    )
    return database, view


def test_need_computation_scales_on_deep_chains(benchmark):
    database, view = deep_chain_database(depth=12)

    def compute_all_needs():
        graph = ExtendedJoinGraph(view, database)
        return {t: graph.need(t) for t in view.tables}

    needs = benchmark(compute_all_needs)
    # The deepest table carries the only group-by attribute: the root
    # needs the whole chain down to it.
    assert needs["t0"] == frozenset(f"t{i}" for i in range(1, 12))
