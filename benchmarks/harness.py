"""Shared scale-setup and stream-driving harness for the benchmarks.

Every benchmark replays the same deterministic, integrity-valid update
streams against maintainers over identically-built retail warehouses;
this module owns that common machinery — the scale configurations, the
benchmark view, the stream generator, the replay loop, and the
equivalence and histogram helpers — so the per-benchmark files only
differ in *what* they compare (hot path vs legacy, memory vs SQLite,
1 shard vs N).
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.deltas import Delta, Transaction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import AggregateItem, GroupByItem
from repro.perf import TXN_DELTA_ROWS, TXN_LATENCY_MS, TXN_ROWS_PER_SEC
from repro.workloads.retail import RetailConfig

SCALES = {
    "small": RetailConfig(
        days=30, stores=2, products=200, products_sold_per_day=10,
        transactions_per_product=2, start_year=1997, seed=11,
    ),
    "medium": RetailConfig(
        days=90, stores=3, products=1000, products_sold_per_day=20,
        transactions_per_product=2, start_year=1997, seed=11,
    ),
    "large": RetailConfig(
        days=180, stores=4, products=3000, products_sold_per_day=25,
        transactions_per_product=2, start_year=1997, seed=11,
    ),
}

STREAMS = ("insert_heavy", "delete_heavy", "mixed")


def hotpath_view(year: int = 1997):
    """A fully-CSMAS view (no DISTINCT), so throughput measures the
    maintenance loop itself rather than Section 3.2's recomputation."""
    return make_view(
        "monthly_category_sales",
        ("sale", "time", "product"),
        [
            GroupByItem(Column("month", "time")),
            GroupByItem(Column("category", "product")),
            AggregateItem(
                AggregateFunction.SUM, Column("price", "sale"), alias="TotalPrice"
            ),
            AggregateItem(AggregateFunction.COUNT, None, alias="TotalCount"),
        ],
        selection=[Comparison("=", Column("year", "time"), Literal(year))],
        joins=[
            JoinCondition("sale", "timeid", "time", "id"),
            JoinCondition("sale", "productid", "product", "id"),
        ],
    )


def make_stream(
    database,
    kind: str,
    transactions: int = 120,
    batch: int = 8,
    seed: int = 5,
    hot_key_fraction: float = 0.0,
) -> list[Transaction]:
    """A deterministic, integrity-valid stream of ``sale`` transactions.

    ``insert_heavy`` is ~80% insertions, ``delete_heavy`` ~80% deletions
    of live rows, and ``mixed`` alternates both and adds churn pairs —
    live rows deleted and re-inserted within one transaction, which the
    hot path coalesces away and the legacy loop propagates twice.

    ``hot_key_fraction`` skews fresh insertions: that fraction of new
    rows lands on one fixed ``(time, product)`` combination — i.e. one
    group of the view, hence one shard of a partitioned backend.  The
    default 0.0 draws keys uniformly (and consumes no extra randomness,
    so existing benchmark streams are unchanged).
    """
    rng = random.Random(seed)
    live = list(database.relation("sale"))
    next_id = max(row[0] for row in live) + 1
    days = len(database.relation("time"))
    products = len(database.relation("product"))
    stores = len(database.relation("store"))
    stream: list[Transaction] = []

    def fresh_rows(count: int) -> list[tuple]:
        nonlocal next_id
        rows = []
        for __ in range(count):
            if hot_key_fraction and rng.random() < hot_key_fraction:
                day, product = 1, 1
            else:
                day = rng.randint(1, days)
                product = rng.randint(1, products)
            rows.append(
                (
                    next_id,
                    day,
                    product,
                    rng.randint(1, stores),
                    rng.randint(50, 5_000),
                )
            )
            next_id += 1
        return rows

    def take_live(count: int) -> list[tuple]:
        count = min(count, len(live))
        taken = []
        for __ in range(count):
            taken.append(live.pop(rng.randrange(len(live))))
        return taken

    for step in range(transactions):
        inserted: list[tuple] = []
        deleted: list[tuple] = []
        if kind == "insert_heavy":
            inserted = fresh_rows(batch)
            if step % 5 == 4:
                deleted = take_live(batch // 4)
        elif kind == "delete_heavy":
            deleted = take_live(batch)
            if step % 5 == 4:
                inserted = fresh_rows(batch // 4)
        else:  # mixed: half in, half out, plus churn pairs
            inserted = fresh_rows(batch // 2)
            deleted = take_live(batch // 2)
            churn = take_live(batch // 2)
            inserted += churn  # churn returns to live below, via inserted
            deleted += churn
        live.extend(inserted)
        stream.append(Transaction.of(Delta("sale", inserted, deleted)))
    return stream


def delta_rows_of(stream) -> int:
    """Total delta rows a stream carries (the throughput denominator)."""
    return sum(
        len(d.inserted) + len(d.deleted) for tx in stream for d in tx
    )


def replay(maintainer, stream) -> float:
    """Apply every transaction; return elapsed wall-clock seconds."""
    started = time.perf_counter()
    for transaction in stream:
        maintainer.apply(transaction)
    return time.perf_counter() - started


def assert_equivalent(context: str, left, right) -> None:
    """Assert two maintainers hold bag-identical views and auxiliaries."""
    if not left.current_view().same_bag(right.current_view()):
        raise AssertionError(f"{context}: views diverged")
    for table in left.aux_relations():
        if not left.aux_relation(table).same_bag(right.aux_relation(table)):
            raise AssertionError(f"{context}: aux {table} diverged")


def txn_histograms(perf) -> dict:
    """Per-transaction distribution summaries (count/sum/p50/p95/p99)
    every benchmark record carries — the regression gate requires them."""
    return {
        "txn_latency_ms": perf.histogram_summary(TXN_LATENCY_MS),
        "txn_delta_rows": perf.histogram_summary(TXN_DELTA_ROWS),
        "txn_rows_per_sec": perf.histogram_summary(TXN_ROWS_PER_SEC),
    }
