"""Sharded maintenance scaling: 1..N shards, serial and parallel.

Replays a mixed update stream with large per-transaction batches (so
propagate compute dominates dispatch overhead) against
:class:`ShardedBackend` at several shard counts, in both execution
modes, plus the plain :class:`MemoryBackend` baseline.  Every
configuration's final view and auxiliary states are checked
bag-identical to the baseline.

Two speedup figures are reported, deliberately distinct:

* ``wall_clock`` — measured elapsed time.  On a 1-core host (CI
  containers; ``cpu_count`` is recorded in the output) parallel workers
  time-slice one core, so wall-clock speedup cannot exceed 1 and the
  IPC overhead makes it *worse* than serial.  Machine-honest, not
  machine-invariant.
* ``projected_speedup`` — the critical-path projection from serial
  mode's per-shard compute timers
  (``repro_shard_compute_seconds_total{shard=...}`` plus the
  replicated-work Amdahl term): total compute over (max shard + the
  replicated work every worker repeats).  This is what N real cores
  buy, measured deterministically on one, and it is what the
  regression gate watches.

Each stream is run twice — uniformly-keyed and skewed (90% of fresh
inserts land on one group, hence one shard) — because skew collapses
the projection toward 1: the hot shard IS the critical path.

Standalone::

    python benchmarks/bench_sharded.py

writes ``BENCH_sharded.json``.  Also collectable by pytest as a smoke
test at a small configuration.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import (
    SCALES,
    assert_equivalent,
    delta_rows_of,
    hotpath_view,
    make_stream,
    replay,
    txn_histograms,
)

from repro.backends.sharded import (
    SHARD_COMPUTE_SECONDS,
    SHARD_REPLICATED_SECONDS,
    SHARD_ROUTED_ROWS,
    ShardedBackend,
)
from repro.core.maintenance import SelfMaintainer
from repro.workloads.retail import build_retail_database

SHARD_COUNTS = (1, 2, 4, 8)
DISTRIBUTIONS = {"uniform": 0.0, "skewed": 0.9}


def _shard_seconds(backend: ShardedBackend) -> tuple[dict[str, float], float]:
    """Per-shard compute seconds and the replicated (unparallelizable)
    seconds, read off the backend's metrics registry."""
    registry = backend.metrics_registry()
    compute = dict(registry.counter_group(SHARD_COMPUTE_SECONDS, "shard"))
    replicated = registry.counter(SHARD_REPLICATED_SECONDS).value
    return compute, replicated


def _routed_rows(backend: ShardedBackend) -> dict[str, int]:
    return dict(
        backend.metrics_registry().counter_group(SHARD_ROUTED_ROWS, "shard")
    )


def run_config(
    scale: str,
    distribution: str,
    transactions: int,
    batch: int,
    parallel_counts: tuple[int, ...],
) -> dict:
    """One (scale, key-distribution) cell: baseline + every shard count."""
    config = SCALES[scale]
    database = build_retail_database(config)
    view = hotpath_view(config.start_year)
    stream = make_stream(
        database,
        "mixed",
        transactions=transactions,
        batch=batch,
        hot_key_fraction=DISTRIBUTIONS[distribution],
    )
    delta_rows = delta_rows_of(stream)

    baseline = SelfMaintainer(view, database, backend="memory")
    seconds_baseline = replay(baseline, stream)

    record: dict = {
        "delta_rows": delta_rows,
        "transactions": transactions,
        "batch": batch,
        "seconds_baseline": round(seconds_baseline, 4),
        "rows_per_sec_baseline": round(delta_rows / seconds_baseline, 1),
        "shards": {},
    }
    for n_shards in SHARD_COUNTS:
        serial_backend = ShardedBackend(n_shards=n_shards, parallel=False)
        serial_m = SelfMaintainer(view, database, backend=serial_backend)
        seconds_serial = replay(serial_m, stream)
        assert_equivalent(
            f"{scale}/{distribution}/serial:{n_shards}", baseline, serial_m
        )
        compute, replicated = _shard_seconds(serial_backend)
        total_compute = sum(compute.values())
        max_shard = max(compute.values()) if compute else 0.0
        # What n real cores would make of this exact workload: every
        # shard's partitioned work runs concurrently (bounded by the
        # slowest shard) while replicated work repeats on each worker.
        projected = (
            (total_compute + replicated) / (max_shard + replicated)
            if max_shard + replicated > 0
            else 1.0
        )
        entry: dict = {
            "seconds_serial": round(seconds_serial, 4),
            "rows_per_sec_serial": round(delta_rows / seconds_serial, 1),
            "relative_throughput_serial": round(
                seconds_baseline / seconds_serial, 3
            ),
            "shard_compute_seconds": {
                shard: round(value, 4) for shard, value in sorted(compute.items())
            },
            "replicated_seconds": round(replicated, 4),
            "projected_speedup": round(projected, 2),
            "routed_rows": dict(sorted(_routed_rows(serial_backend).items())),
            "histograms": txn_histograms(serial_m.perf),
        }
        if n_shards in parallel_counts:
            parallel_backend = ShardedBackend(n_shards=n_shards, parallel=True)
            try:
                parallel_m = SelfMaintainer(
                    view, database, backend=parallel_backend
                )
                seconds_parallel = replay(parallel_m, stream)
                assert_equivalent(
                    f"{scale}/{distribution}/parallel:{n_shards}",
                    baseline,
                    parallel_m,
                )
            finally:
                parallel_backend.close()
            entry["seconds_parallel"] = round(seconds_parallel, 4)
            entry["rows_per_sec_parallel"] = round(
                delta_rows / seconds_parallel, 1
            )
        record["shards"][str(n_shards)] = entry
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=[*SCALES], default="medium",
        help="warehouse scale to replay (default: medium)",
    )
    parser.add_argument(
        "--transactions", type=int, default=20,
        help="transactions per stream (default: 20)",
    )
    parser.add_argument(
        "--batch", type=int, default=2000,
        help="delta rows per transaction (default: 2000 — large batches "
        "keep propagate compute, not dispatch, on the critical path)",
    )
    parser.add_argument(
        "--out", default="BENCH_sharded.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    report = {
        "benchmark": "sharded_scaling",
        # Wall-clock parallel numbers are meaningless without this.
        "cpu_count": os.cpu_count(),
        "scale": args.scale,
        "distributions": {},
    }
    for distribution in DISTRIBUTIONS:
        print(f"== distribution: {distribution} ==")
        record = run_config(
            args.scale,
            distribution,
            transactions=args.transactions,
            batch=args.batch,
            parallel_counts=(1, 4),
        )
        report["distributions"][distribution] = record
        for n_shards, entry in record["shards"].items():
            line = (
                f"  {n_shards:>2} shards  serial "
                f"{entry['rows_per_sec_serial']:>12,.0f} rows/s  "
                f"projected {entry['projected_speedup']:.2f}x"
            )
            if "rows_per_sec_parallel" in entry:
                line += (
                    f"  parallel {entry['rows_per_sec_parallel']:>12,.0f} rows/s"
                )
            print(line)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


def test_sharded_smoke():
    """CI smoke: small scale, short skewed+uniform streams, equivalence
    and projection sanity enforced."""
    for distribution in DISTRIBUTIONS:
        record = run_config(
            "small",
            distribution,
            transactions=6,
            batch=200,
            parallel_counts=(2,),
        )
        assert record["delta_rows"] > 0
        for n_shards, entry in record["shards"].items():
            assert entry["projected_speedup"] >= 1.0, (distribution, n_shards)
            assert entry["projected_speedup"] <= int(n_shards) + 0.01, (
                distribution,
                n_shards,
            )
            for name, summary in entry["histograms"].items():
                assert summary["count"] == 6, (distribution, n_shards, name)
        # Skew concentrates routing: the hot shard carries most rows.
        routed = record["shards"]["4"]["routed_rows"]
        if distribution == "skewed" and routed:
            assert max(routed.values()) > sum(routed.values()) / 2


if __name__ == "__main__":
    raise SystemExit(main())
