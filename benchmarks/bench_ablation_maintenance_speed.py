"""A3 — ablation: incremental maintenance vs recomputation.

The paper motivates incremental maintenance as "substantially cheaper
than recomputing".  This bench measures per-transaction cost of

* incremental GPSJ self-maintenance (this paper),
* full recomputation from replicated base tables,

under identical small-delta streams, and reports the speedup.
"""

import time

from repro.core.maintenance import SelfMaintainer
from repro.engine.deltas import Delta, Transaction
from repro.warehouse.baselines import FullReplicationMaintainer
from repro.workloads.retail import product_sales_view

from conftest import banner


def small_fact_deltas(database, count, start_seed=0):
    """``count`` single-row insertion transactions."""
    next_id = max(database.relation("sale").column("id")) + 1
    transactions = []
    for offset in range(count):
        transactions.append(
            Transaction.of(
                Delta.insertion(
                    "sale",
                    [(next_id + offset, 1 + offset % 30, 1 + offset % 50, 1, 100)],
                )
            )
        )
    return transactions


def test_incremental_maintenance_speed(benchmark, retail_database):
    view = product_sales_view(1997)
    maintainer = SelfMaintainer(view, retail_database)
    transactions = iter(small_fact_deltas(retail_database, 100_000))

    def one_step():
        maintainer.apply(next(transactions))

    benchmark(one_step)


def test_recomputation_speed(benchmark, retail_database):
    view = product_sales_view(1997)
    maintainer = FullReplicationMaintainer(view, retail_database)
    transactions = iter(small_fact_deltas(retail_database, 100_000))

    def one_step():
        maintainer.apply(next(transactions))
        return maintainer.current_view()  # recomputation happens here

    benchmark(one_step)


def test_speedup_summary(benchmark, retail_database):
    """Direct wall-clock comparison over the same 30-transaction stream,
    printed as the headline incremental-vs-recompute result."""
    view = product_sales_view(1997)
    incremental = SelfMaintainer(view, retail_database)
    recompute = FullReplicationMaintainer(view, retail_database)
    transactions = small_fact_deltas(retail_database, 30)

    def incremental_stream():
        for transaction in transactions:
            incremental.apply(transaction)
        return incremental.current_view()

    started = time.perf_counter()
    incremental_view = benchmark.pedantic(
        incremental_stream, rounds=1, iterations=1
    )
    incremental_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for transaction in transactions:
        recompute.apply(transaction)
        recompute_view = recompute.current_view()
    recompute_seconds = time.perf_counter() - started

    assert incremental_view.same_bag(recompute_view)

    print(banner("A3 - incremental maintenance vs recomputation"))
    print(f"fact table rows:      {len(retail_database.relation('sale'))}")
    print(f"transactions:         {len(transactions)} (single-row inserts)")
    print(f"incremental total:    {incremental_seconds * 1000:.1f} ms")
    print(f"recomputation total:  {recompute_seconds * 1000:.1f} ms")
    print(f"speedup:              {recompute_seconds / incremental_seconds:.1f}x")
    print(
        "(the DISTINCT aggregate forces per-transaction recomputation of "
        "its groups from the auxiliary views, as Section 3.2 prescribes)"
    )
    assert incremental_seconds < recompute_seconds


def csmas_only_view():
    """product_sales without the DISTINCT column: fully CSMAS, so every
    change is absorbed by pure running-aggregate arithmetic."""
    from repro.core.view import JoinCondition, make_view
    from repro.engine.aggregates import AggregateFunction
    from repro.engine.expressions import Column, Comparison, Literal
    from repro.engine.operators import AggregateItem, GroupByItem

    return make_view(
        "product_sales_csmas",
        ("sale", "time"),
        [
            GroupByItem(Column("month", "time")),
            AggregateItem(
                AggregateFunction.SUM, Column("price", "sale"), alias="TotalPrice"
            ),
            AggregateItem(AggregateFunction.COUNT, None, alias="TotalCount"),
        ],
        selection=[Comparison("=", Column("year", "time"), Literal(1997))],
        joins=[JoinCondition("sale", "timeid", "time", "id")],
    )


def test_speedup_summary_csmas_only(benchmark, retail_database):
    """The headline incremental win: with only CSMAS aggregates no
    recomputation path ever triggers."""
    view = csmas_only_view()
    incremental = SelfMaintainer(view, retail_database)
    recompute = FullReplicationMaintainer(view, retail_database)
    transactions = small_fact_deltas(retail_database, 30)

    def incremental_stream():
        for transaction in transactions:
            incremental.apply(transaction)
        return incremental.current_view()

    started = time.perf_counter()
    incremental_view = benchmark.pedantic(
        incremental_stream, rounds=1, iterations=1
    )
    incremental_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for transaction in transactions:
        recompute.apply(transaction)
        recompute_view = recompute.current_view()
    recompute_seconds = time.perf_counter() - started

    assert incremental_view.same_bag(recompute_view)
    speedup = recompute_seconds / incremental_seconds
    print(banner("A3 - incremental vs recomputation (CSMAS-only view)"))
    print(f"incremental total:    {incremental_seconds * 1000:.1f} ms")
    print(f"recomputation total:  {recompute_seconds * 1000:.1f} ms")
    print(f"speedup:              {speedup:.1f}x")
    assert speedup > 10
