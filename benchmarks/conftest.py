"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one artifact of the paper (a table,
figure, or analysis) and times the machinery behind it; the regenerated
artifact is printed so ``pytest benchmarks/ --benchmark-only -s`` shows
the paper-vs-measured comparison that EXPERIMENTS.md records.
"""

import pytest

from repro.workloads.retail import RetailConfig, build_retail_database


@pytest.fixture(scope="session")
def retail_database():
    """A mid-size retail warehouse: the paper's schema at 1/10^4 scale."""
    return build_retail_database(
        RetailConfig(
            days=73,
            stores=3,
            products=300,
            products_sold_per_day=30,
            transactions_per_product=2,
            start_year=1997,
            seed=42,
        )
    )


def banner(title: str) -> str:
    rule = "=" * len(title)
    return f"\n{rule}\n{title}\n{rule}"
