"""E5 — Section 1.1: the storage analysis (245 GB -> 167 MB).

Two reproductions:

* **Analytic, paper scale** — runs the paper's arithmetic through the
  storage model and asserts the published figures exactly
  (13.14 G tuples / 245 GB vs 10.95 M tuples / 167 MB).

* **Measured, reduced scale** — builds the synthetic warehouse, derives
  the auxiliary views, and measures live sizes, confirming the *shape*
  of the claim, including the paper's worst case where every product
  sells every day.
"""

from repro.core.derivation import derive_auxiliary_views
from repro.storage.model import (
    GIB,
    MIB,
    format_bytes,
    paper_auxiliary_view_estimate,
    paper_fact_table_estimate,
    relation_estimate,
)
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_view,
)

from conftest import banner


def analytic_reproduction():
    return paper_fact_table_estimate(), paper_auxiliary_view_estimate()


def test_paper_scale_analytic(benchmark):
    fact, aux = benchmark(analytic_reproduction)

    print(banner("Section 1.1 storage analysis - paper scale (analytic)"))
    print("paper:    fact table  13,140,000,000 tuples, 245 GB")
    print(f"measured: {fact}")
    print("paper:    saledtl         10,950,000 tuples, 167 MB")
    print(f"measured: {aux}")
    print(f"reduction factor: {aux.ratio_to(fact):,.0f}x")

    assert fact.tuples == 13_140_000_000
    assert round(fact.total_bytes / GIB) == 245
    assert aux.tuples == 10_950_000
    assert round(aux.total_bytes / MIB) == 167
    assert aux.ratio_to(fact) > 1_000


def measured_reproduction():
    """The paper's setup scaled down: 2 years of which the view selects
    one, multiple stores, and the worst case of every product selling in
    every store every day."""
    config = RetailConfig(
        days=60,                     # "2 years" -> the view selects half
        stores=4,
        products=25,
        products_sold_per_day=25,    # worst case: all products daily
        transactions_per_product=5,
        start_year=1996,             # days 1..30 are 1996, 31..60 are 1997
        seed=11,
    )
    # Make day 31+ fall into 1997 so the year filter halves time: use a
    # custom time table by shifting the year split.
    database = build_retail_database(config)
    time = database.table("time").relation
    adjusted = [
        (tid, day, month, 1997 if tid > config.days // 2 else 1996)
        for tid, day, month, __ in time.rows
    ]
    time.rows[:] = adjusted
    view = product_sales_view(1997)
    aux = derive_auxiliary_views(view, database)
    relations = aux.materialize(database)
    return database, relations


def test_reduced_scale_measured(benchmark):
    database, relations = benchmark(measured_reproduction)

    fact = relation_estimate("sale (fact)", database.relation("sale"))
    aux = relation_estimate("saledtl", relations["sale"])
    others = {
        name: relation_estimate(f"{name}dtl", rel)
        for name, rel in relations.items()
        if name != "sale"
    }

    print(banner("Section 1.1 storage analysis - measured at reduced scale"))
    print(f"fact table: {fact}")
    print(f"saledtl:    {aux}")
    for estimate in others.values():
        print(f"            {estimate}")
    print(f"measured reduction factor: {aux.ratio_to(fact):.1f}x")

    # Shape check (same arithmetic as the paper):
    # fact rows = days x stores x sold/day x txns = 60*4*25*5 = 30,000
    # saledtl <= selected_days x products = 30 x 25 = 750 groups
    assert fact.tuples == 30_000
    assert aux.tuples <= 30 * 25
    # Expected analytic factor at this scale:
    #   (30000 x 5 fields) / (750 x 4 fields) = 50; measured must agree.
    expected_factor = (30_000 * 5) / (750 * 4)
    assert abs(aux.ratio_to(fact) - expected_factor) / expected_factor < 0.05
    print(f"analytic factor at this scale: {expected_factor:.1f}x")


def test_scaling_sweep(benchmark):
    """Reduction factor vs scale: the factor grows linearly with the
    duplicate multiplicity (stores x transactions), as the paper's
    arithmetic predicts."""

    def sweep():
        results = []
        for stores, txns in ((1, 2), (2, 3), (4, 5)):
            config = RetailConfig(
                days=20,
                stores=stores,
                products=15,
                products_sold_per_day=15,
                transactions_per_product=txns,
                start_year=1997,
                seed=5,
            )
            database = build_retail_database(config)
            view = product_sales_view(1997)
            aux = derive_auxiliary_views(view, database)
            saledtl = aux.materialize(database)["sale"]
            fact_bytes = database.relation("sale").size_bytes()
            results.append(
                (
                    stores * txns,
                    fact_bytes / saledtl.size_bytes(),
                )
            )
        return results

    results = benchmark(sweep)
    print(banner("Reduction factor vs duplicate multiplicity"))
    print(f"{'stores x txns':<15} {'fact/saledtl':<12}")
    for multiplicity, factor in results:
        print(f"{multiplicity:<15} {factor:<12.1f}")
    factors = [factor for __, factor in results]
    assert factors == sorted(factors)  # grows with multiplicity
