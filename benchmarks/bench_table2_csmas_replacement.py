"""E2 — Table 2: CSMAS classification and replacement by distributive
aggregates.

Regenerates the table from the library's classification rules and
verifies each replacement is *semantically correct*: evaluating the
replacement aggregates over disjoint partitions and merging reproduces
the original aggregate over the whole input.
"""

import random

from repro.core.aggregates import classification_table, replacement_aggregates
from repro.engine.aggregates import (
    AggregateFunction,
    compute_aggregate,
    merge_distributive,
)
from repro.engine.expressions import Column
from repro.engine.operators import AggregateItem

from conftest import banner

PAPER_TABLE2 = {
    "COUNT": ("COUNT(*)", "CSMAS"),
    "SUM": ("SUM, COUNT(*)", "CSMAS"),
    "AVG": ("SUM, COUNT(*)", "CSMAS"),
    "MIN": ("Not replaced", "non-CSMAS"),
    "MAX": ("Not replaced", "non-CSMAS"),
}


def verify_replacement_semantics(func: AggregateFunction, rng: random.Random) -> bool:
    """Partition random input, aggregate per partition via the Table 2
    replacements, merge, and compare against direct evaluation."""
    values = [rng.randint(-30, 30) for __ in range(rng.randint(2, 60))]
    split = rng.randint(1, len(values) - 1) if len(values) > 1 else 1
    partitions = [values[:split], values[split:]] if values[split:] else [values]
    expected = compute_aggregate(func, values)

    if func is AggregateFunction.COUNT:
        merged = merge_distributive(
            AggregateFunction.COUNT, [len(p) for p in partitions]
        )
        return merged == expected
    if func in (AggregateFunction.SUM, AggregateFunction.AVG):
        total = merge_distributive(
            AggregateFunction.SUM, [sum(p) for p in partitions]
        )
        count = merge_distributive(
            AggregateFunction.COUNT, [len(p) for p in partitions]
        )
        if func is AggregateFunction.SUM:
            return total == expected
        return abs(total / count - expected) < 1e-9
    # MIN/MAX are distributive themselves (but non-CSMAS for deletions).
    merged = merge_distributive(
        func, [compute_aggregate(func, p) for p in partitions]
    )
    return merged == expected


def regenerate_table2():
    rows = classification_table()
    rng = random.Random(7)
    checks = {
        func: all(verify_replacement_semantics(func, rng) for __ in range(50))
        for func in AggregateFunction
    }
    return rows, checks


def test_table2_matches_paper(benchmark):
    rows, checks = benchmark(regenerate_table2)

    print(banner("Table 2 - CSMAS classification (library vs paper)"))
    print(f"{'aggregate':<10} {'replaced by':<16} {'class':<10} partition-check")
    for row in rows:
        name = row["aggregate"]
        paper_replacement, paper_class = PAPER_TABLE2[name]
        print(
            f"{name:<10} {row['replaced_by']:<16} {row['class']:<10} "
            f"{checks[AggregateFunction(name)]}"
        )
        assert row["replaced_by"] == paper_replacement
        assert row["class"] == paper_class
        assert checks[AggregateFunction(name)]


def test_replacement_throughput(benchmark):
    items = [
        AggregateItem(func, Column("a", "t"), distinct)
        for func in AggregateFunction
        for distinct in (False, True)
    ]

    def replace_all():
        return [replacement_aggregates(item) for item in items]

    replaced = benchmark(replace_all)
    assert len(replaced) == 10
