"""E6 — Figure 1: the warehouse framework, exercised end to end.

Streams referential-integrity-preserving transactions through a
warehouse whose sources are *sealed* (any base-table read raises), then
verifies the maintained summary against recomputation.  The benchmark
times maintenance per transaction — the operation Figure 1's
architecture performs continuously.
"""

from repro.core.maintenance import SelfMaintainer
from repro.warehouse.sources import SealedSource
from repro.workloads.retail import product_sales_view
from repro.workloads.snowflake import build_snowflake_database, category_sales_view
from repro.workloads.streams import TransactionGenerator

from conftest import banner


def test_sealed_maintenance_star(benchmark, retail_database):
    view = product_sales_view(1997)
    source = SealedSource(retail_database)
    maintainer = SelfMaintainer(view, source)
    source.seal()
    generator = TransactionGenerator(retail_database, seed=2024)
    transactions = [generator.step() for __ in range(60)]

    def maintain_all():
        for transaction in transactions:
            maintainer.apply(transaction)
        return maintainer.current_view()

    # Streams are not idempotent, so run the batch exactly once and time it.
    result = benchmark.pedantic(maintain_all, rounds=1, iterations=1)

    assert source.blocked_reads == 0
    source.unseal()
    expected = view.evaluate(retail_database)
    assert result.same_bag(expected)

    print(banner("Figure 1 - self-maintenance with sealed sources (star)"))
    print(f"transactions applied:     {len(transactions)}")
    print(f"base-table reads blocked: {source.blocked_reads}")
    print(f"summary groups:           {len(result)}")
    print(f"current detail bytes:     {maintainer.detail_size_bytes():,}")
    print(
        f"fact table bytes:         "
        f"{retail_database.relation('sale').size_bytes():,}"
    )


def test_sealed_maintenance_snowflake(benchmark):
    database = build_snowflake_database(
        categories=6, products_per_category=10, days=40, sales_per_day=60
    )
    view = category_sales_view()
    source = SealedSource(database)
    maintainer = SelfMaintainer(view, source)
    source.seal()
    generator = TransactionGenerator(database, seed=77)
    transactions = [generator.step() for __ in range(60)]

    def maintain_all():
        for transaction in transactions:
            maintainer.apply(transaction)
        return maintainer.current_view()

    result = benchmark.pedantic(maintain_all, rounds=1, iterations=1)
    assert source.blocked_reads == 0
    source.unseal()
    assert result.same_bag(view.evaluate(database))

    print(banner("Figure 1 - self-maintenance with sealed sources (snowflake)"))
    print(f"transactions applied: {len(transactions)}")
    print(f"summary groups:       {len(result)}")


def test_single_transaction_latency(benchmark, retail_database):
    """Median latency of applying one small fact-insertion delta."""
    from repro.engine.deltas import Delta, Transaction

    view = product_sales_view(1997)
    maintainer = SelfMaintainer(view, retail_database)
    next_id = max(retail_database.relation("sale").column("id")) + 1
    counter = {"id": next_id}

    def one_insert():
        sale_id = counter["id"]
        counter["id"] += 1
        maintainer.apply(
            Transaction.of(
                Delta.insertion("sale", [(sale_id, 1, 1, 1, 100)])
            )
        )

    benchmark(one_insert)
