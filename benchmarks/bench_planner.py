"""Cost-planner benchmark: estimation quality and adaptive work savings.

Two deterministic workloads, both measured in *rows processed* (summed
plan-node output cardinalities from ``runtime_stats()``), which is
machine-invariant — the committed baseline gates on the ratio
``work_reduction``, never on wall-clock:

* ``replan_convergence`` — the same misestimate is planted into two
  cost-planned maintainers (a huge per-delta cardinality hint, which
  makes the compiled plan skip every delta-driven restriction and scan
  the full auxiliary views).  The *adaptive* maintainer re-plans after
  the first transaction's observed q-error blows the threshold and
  finishes the stream on converged plans; the *frozen* maintainer
  (re-plan ratio effectively infinite) keeps the bad plan for the whole
  stream.  ``work_reduction = frozen_rows / adaptive_rows`` is what the
  feedback loop saves.

* ``shared_subplans`` — the two overlapping retail views maintained
  once through a cost-mode warehouse (explicit shared-subplan
  selection: the coalesced, locally-reduced ``sale`` delta is computed
  once per transaction and reused by the sibling view) versus the same
  two views maintained standalone (no cross-view sharing exists
  outside a warehouse).  ``work_reduction = unshared_rows /
  shared_rows``; the record also carries the selection's hit rate.

Both records report the estimation quality of the run: the median
(p50) q-error of every estimate-vs-observation comparison the adaptive
loop made, and the re-plan count.

Standalone::

    python benchmarks/bench_planner.py --scale small

writes ``BENCH_planner.json``.  Also collectable by pytest as a smoke
test at the smallest scale.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import SCALES, make_stream, txn_histograms

from repro.core.maintenance import SelfMaintainer
from repro.perf import PLANNER_QERROR
from repro.plan.cost import REPLAN_RATIO_ENV
from repro.warehouse.warehouse import Warehouse
from repro.workloads.retail import (
    build_retail_database,
    product_sales_max_view,
    product_sales_view,
)

#: The planted per-delta cardinality hint: large enough that the cost
#: model prices every delta-driven restriction as useless (estimated
#: delta reach >= auxiliary rows at any benchmark scale).
BAD_HINT_ROWS = 1_000_000.0


def total_rows_processed(maintainer) -> int:
    """Summed output cardinality over every maintenance-plan node (the
    backend-merged ``explain --analyze`` payload) — the benchmark's
    machine-invariant measure of work."""
    return sum(
        record["rows_out"]
        for records in maintainer.runtime_stats().values()
        for record in records
    )


def median_q_error(perf) -> float | None:
    summary = perf.histogram_summary(PLANNER_QERROR)
    return summary["p50"] if summary["count"] else None


def _misestimated_maintainer(database, config, frozen: bool):
    """A cost-planned retail maintainer with the bad hint planted for
    both ``sale`` delta shapes; ``frozen`` disables re-planning by
    raising the threshold beyond any observable q-error."""
    previous = os.environ.get(REPLAN_RATIO_ENV)
    if frozen:
        os.environ[REPLAN_RATIO_ENV] = "1e18"
    else:
        os.environ.pop(REPLAN_RATIO_ENV, None)
    try:
        maintainer = SelfMaintainer(
            product_sales_view(config.start_year), database, planner="cost"
        )
    finally:
        if previous is None:
            os.environ.pop(REPLAN_RATIO_ENV, None)
        else:
            os.environ[REPLAN_RATIO_ENV] = previous
    for sign in (+1, -1):
        maintainer.set_estimate_hint(
            "sale", sign, local_rows=BAD_HINT_ROWS, reduce_rows=BAD_HINT_ROWS
        )
    return maintainer


def run_replan_convergence(config, transactions: int) -> dict:
    """The adaptive-feedback workload record."""
    runs = {}
    for label, frozen in (("adaptive", False), ("frozen", True)):
        database = build_retail_database(config)
        maintainer = _misestimated_maintainer(database, config, frozen)
        stream = make_stream(database, "mixed", transactions=transactions)
        for transaction in stream:
            maintainer.apply(transaction)
        runs[label] = maintainer
    adaptive, frozen_m = runs["adaptive"], runs["frozen"]
    adaptive_rows = total_rows_processed(adaptive)
    frozen_rows = total_rows_processed(frozen_m)
    assert frozen_m.perf.counters["replans"] == 0, (
        "the frozen maintainer must never re-plan"
    )
    return {
        "work_reduction": round(frozen_rows / max(adaptive_rows, 1), 3),
        "adaptive_rows_processed": adaptive_rows,
        "frozen_rows_processed": frozen_rows,
        "replans": adaptive.perf.counters["replans"],
        "median_q_error": median_q_error(adaptive.perf),
        "histograms": txn_histograms(adaptive.perf),
    }


def run_shared_subplans(config, transactions: int) -> dict:
    """The explicit shared-subplan-selection workload record."""
    views = (product_sales_view(config.start_year), product_sales_max_view())

    # Warehouse path: one cost-mode warehouse, explicit selection.
    warehouse_db = build_retail_database(config)
    warehouse = Warehouse(warehouse_db, list(views), planner="cost")
    stream = make_stream(warehouse_db, "mixed", transactions=transactions)
    admitted = rejected = 0
    for transaction in stream:
        warehouse.apply(transaction)
        cache = warehouse.last_shared_cache  # one cache per transaction
        admitted += cache.admitted
        rejected += cache.rejected
    shared_rows = sum(
        total_rows_processed(warehouse.maintainer(name))
        for name in warehouse.view_names
    )
    shared_hits = sum(
        warehouse.maintainer(name).perf.counters["plan_shared_hits"]
        for name in warehouse.view_names
    )
    selection = warehouse.shared_subplan_selection()
    lead = warehouse.maintainer(warehouse.view_names[0])

    # Standalone path: the same two views with no cross-view sharing.
    standalone_db = build_retail_database(config)
    standalone = [SelfMaintainer(v, standalone_db, planner="cost") for v in views]
    for transaction in make_stream(
        standalone_db, "mixed", transactions=transactions
    ):
        for maintainer in standalone:
            maintainer.apply(transaction)
    unshared_rows = sum(total_rows_processed(m) for m in standalone)

    # Every cache hit is one avoided execution of a selected subplan;
    # the hit rate is hits over all selected-subplan evaluations.
    hit_rate = shared_hits / max(shared_hits + admitted, 1)
    return {
        "work_reduction": round(unshared_rows / max(shared_rows, 1), 3),
        "shared_rows_processed": shared_rows,
        "unshared_rows_processed": unshared_rows,
        "selected_subplans": len(selection),
        "shared_hits": shared_hits,
        "shared_admitted": admitted,
        "shared_rejected": rejected,
        "shared_hit_rate": round(hit_rate, 3),
        "replans": sum(
            warehouse.maintainer(name).perf.counters["replans"]
            for name in warehouse.view_names
        ),
        "median_q_error": median_q_error(lead.perf),
        "histograms": txn_histograms(lead.perf),
    }


def run_scale(scale: str, transactions: int = 48) -> dict:
    config = SCALES[scale]
    return {
        "fact_rows": config.fact_rows(),
        "transactions_per_stream": transactions,
        "streams": {
            "replan_convergence": run_replan_convergence(config, transactions),
            "shared_subplans": run_shared_subplans(config, transactions),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=[*SCALES, "all"], default="small",
        help="warehouse scale (default: small)",
    )
    parser.add_argument(
        "--transactions", type=int, default=48,
        help="transactions per stream (default: 48)",
    )
    parser.add_argument(
        "--out", default="BENCH_planner.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    scales = list(SCALES) if args.scale == "all" else [args.scale]
    report = {"benchmark": "planner_adaptivity", "scales": {}}
    for scale in scales:
        print(f"== scale: {scale} ==")
        measured = run_scale(scale, transactions=args.transactions)
        report["scales"][scale] = measured
        for kind, numbers in measured["streams"].items():
            q = numbers["median_q_error"]
            print(
                f"  {kind:<18} work_reduction {numbers['work_reduction']:>6.2f}x  "
                f"replans {numbers['replans']:>2}  "
                f"median q-error {q if q is not None else 'n/a'}"
            )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


def test_planner_smoke():
    """CI smoke: smallest scale, short streams, both savings real."""
    measured = run_scale("small", transactions=16)
    replan = measured["streams"]["replan_convergence"]
    assert replan["replans"] >= 1, "the planted misestimate must re-plan"
    assert replan["work_reduction"] > 1.0, (
        "adaptive re-planning must reduce rows processed"
    )
    shared = measured["streams"]["shared_subplans"]
    assert shared["selected_subplans"] >= 1
    assert shared["shared_hits"] >= 1
    assert shared["work_reduction"] > 1.0, (
        "shared-subplan selection must reduce rows processed"
    )
    for record in (replan, shared):
        for name, summary in record["histograms"].items():
            assert summary["count"] > 0, name


if __name__ == "__main__":
    raise SystemExit(main())
