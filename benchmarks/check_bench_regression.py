"""CI gate: fail on hot-path throughput regression vs the committed baseline.

Compares a fresh ``bench_hotpath_maintenance.py`` run against the
checked-in ``BENCH_hotpath.json``.  Raw rows/second is hardware-bound
and useless across CI machines, so the gate compares each stream's
``speedup`` — the indexed-over-naive throughput ratio measured within
one run on one machine — which is what the plan layer must not erode.

Usage::

    python benchmarks/bench_hotpath_maintenance.py \
        --scale small --transactions 40 --out /tmp/BENCH_smoke.json
    python benchmarks/check_bench_regression.py /tmp/BENCH_smoke.json \
        [--baseline BENCH_hotpath.json] [--scale small] [--tolerance 0.25]

Exit status 1 (with a per-stream report) if any stream's speedup falls
more than ``tolerance`` below the baseline's.  The gate also asserts
both runs carry the per-transaction histogram summaries
(``histograms.txn_latency_ms`` etc.) so the observability layer's
distribution reporting cannot silently disappear from the benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

#: Histogram summaries every stream record must carry (and the summary
#: keys inside each), since the bench promises distribution reporting.
REQUIRED_HISTOGRAMS = ("txn_latency_ms", "txn_delta_rows", "txn_rows_per_sec")
REQUIRED_SUMMARY_KEYS = ("count", "sum", "p50", "p95", "p99")


def check_histograms(label: str, streams: dict) -> list[str]:
    """Failures for stream records missing histogram summaries."""
    failures = []
    for kind, record in sorted(streams.items()):
        histograms = record.get("histograms")
        if histograms is None:
            failures.append(f"{label}/{kind}: no 'histograms' key")
            continue
        for name in REQUIRED_HISTOGRAMS:
            summary = histograms.get(name)
            if summary is None:
                failures.append(f"{label}/{kind}: missing histogram {name!r}")
                continue
            missing = [k for k in REQUIRED_SUMMARY_KEYS if k not in summary]
            if missing:
                failures.append(
                    f"{label}/{kind}: histogram {name!r} lacks {missing!r}"
                )
    return failures


def compare(
    baseline: dict, fresh: dict, scale: str, tolerance: float
) -> list[str]:
    """Human-readable failures; empty when the gate passes."""
    try:
        base_streams = baseline["scales"][scale]["streams"]
    except KeyError:
        return [f"baseline has no scale {scale!r}"]
    try:
        fresh_streams = fresh["scales"][scale]["streams"]
    except KeyError:
        return [f"fresh run has no scale {scale!r}"]
    failures = check_histograms("baseline", base_streams)
    failures += check_histograms("fresh", fresh_streams)
    for kind, base in sorted(base_streams.items()):
        measured = fresh_streams.get(kind)
        if measured is None:
            failures.append(f"{kind}: missing from fresh run")
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        verdict = "ok" if measured["speedup"] >= floor else "REGRESSION"
        print(
            f"  {kind:<13} baseline {base['speedup']:>5.2f}x  "
            f"measured {measured['speedup']:>5.2f}x  "
            f"floor {floor:>5.2f}x  {verdict}"
        )
        if measured["speedup"] < floor:
            failures.append(
                f"{kind}: speedup {measured['speedup']:.2f}x fell below "
                f"{floor:.2f}x ({base['speedup']:.2f}x baseline - "
                f"{tolerance:.0%} tolerance)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="JSON written by a fresh bench run")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline JSON (default: repo BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--scale", default="small", help="scale to gate on (default: small)"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup drop (default: 0.25)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(Path(args.baseline).read_text())
    fresh = json.loads(Path(args.fresh).read_text())
    print(
        f"hot-path regression gate: scale={args.scale} "
        f"tolerance={args.tolerance:.0%}"
    )
    failures = compare(baseline, fresh, args.scale, args.tolerance)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
