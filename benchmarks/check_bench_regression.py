"""CI gate: fail on benchmark throughput regression vs the committed baseline.

Compares a fresh benchmark run against its checked-in baseline.  Raw
rows/second is hardware-bound and useless across CI machines, so each
benchmark declares a machine-invariant *ratio* measured within one run
on one machine, and the gate compares that:

* ``bench_hotpath_maintenance.py`` → ``BENCH_hotpath.json``, gated on
  ``speedup`` (indexed-over-naive throughput), which the plan layer
  must not erode;
* ``bench_backends.py`` → ``BENCH_backends.json``, gated on
  ``relative_throughput`` (SQLite-over-memory throughput), which the
  SQL generation + staging overhead must not erode — and, with
  ``--metric relative_throughput_columnar``, on the columnar
  backend's batch-kernel advantage over the row interpreter (CI runs
  the gate once per metric);
* ``bench_sharded.py`` → ``BENCH_sharded.json``, gated on
  ``projected_speedup`` (critical-path speedup projected from serial
  mode's per-shard compute timers, per key distribution and shard
  count).  The 1-shard projection is 1.0 by construction, so gating
  the 4-shard value is exactly the 4-over-1 scaling ratio; it is
  measured deterministically on one core, hence core-count-invariant
  — wall-clock parallel numbers are NOT gated (CI hosts may have a
  single core);
* ``bench_planner.py`` → ``BENCH_planner.json``, gated on
  ``work_reduction`` (rows of maintenance work avoided by adaptive
  re-planning and by explicit shared-subplan selection, each measured
  against a disabled twin within one run) — counted in rows, not
  seconds, hence machine-invariant;
* ``bench_serving.py`` → ``BENCH_serving.json``, gated on
  ``consistent_fraction`` (which must be *exactly* 1.0 — snapshot
  isolation is correctness, not throughput, so no tolerance applies)
  plus the absolute ``read_p99_ms`` budget each record carries
  (``read_p99_budget_ms``), generous enough for a single-core CI host.

The baseline file and metric are picked from the fresh report's
``benchmark`` name; ``--baseline``/``--metric`` override.

Usage::

    python benchmarks/bench_hotpath_maintenance.py \
        --scale small --transactions 40 --out /tmp/BENCH_smoke.json
    python benchmarks/check_bench_regression.py /tmp/BENCH_smoke.json \
        [--baseline BENCH_hotpath.json] [--metric speedup] \
        [--scale small] [--tolerance 0.25]

Exit status 1 (with a per-stream report) if any stream's metric falls
more than ``tolerance`` below the baseline's.  The gate also asserts
both runs carry the per-transaction histogram summaries
(``histograms.txn_latency_ms`` etc.) so the observability layer's
distribution reporting cannot silently disappear from the benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent

#: benchmark name (the report's ``benchmark`` key) → committed baseline
#: and the machine-invariant ratio field it gates on.
BENCHMARKS = {
    "hotpath_maintenance": (_REPO / "BENCH_hotpath.json", "speedup"),
    "backend_comparison": (_REPO / "BENCH_backends.json", "relative_throughput"),
    "sharded_scaling": (_REPO / "BENCH_sharded.json", "projected_speedup"),
    "serving_load": (_REPO / "BENCH_serving.json", "consistent_fraction"),
    "planner_adaptivity": (_REPO / "BENCH_planner.json", "work_reduction"),
}

DEFAULT_BASELINE = BENCHMARKS["hotpath_maintenance"][0]

#: Histogram summaries every stream record must carry (and the summary
#: keys inside each), since the bench promises distribution reporting.
REQUIRED_HISTOGRAMS = ("txn_latency_ms", "txn_delta_rows", "txn_rows_per_sec")
REQUIRED_SUMMARY_KEYS = ("count", "sum", "p50", "p95", "p99")


def check_histograms(label: str, streams: dict) -> list[str]:
    """Failures for stream records missing histogram summaries."""
    failures = []
    for kind, record in sorted(streams.items()):
        histograms = record.get("histograms")
        if histograms is None:
            failures.append(f"{label}/{kind}: no 'histograms' key")
            continue
        for name in REQUIRED_HISTOGRAMS:
            summary = histograms.get(name)
            if summary is None:
                failures.append(f"{label}/{kind}: missing histogram {name!r}")
                continue
            missing = [k for k in REQUIRED_SUMMARY_KEYS if k not in summary]
            if missing:
                failures.append(
                    f"{label}/{kind}: histogram {name!r} lacks {missing!r}"
                )
    return failures


def compare(
    baseline: dict,
    fresh: dict,
    scale: str,
    tolerance: float,
    metric: str = "speedup",
) -> list[str]:
    """Human-readable failures; empty when the gate passes."""
    try:
        base_streams = baseline["scales"][scale]["streams"]
    except KeyError:
        return [f"baseline has no scale {scale!r}"]
    try:
        fresh_streams = fresh["scales"][scale]["streams"]
    except KeyError:
        return [f"fresh run has no scale {scale!r}"]
    failures = check_histograms("baseline", base_streams)
    failures += check_histograms("fresh", fresh_streams)
    for kind, base in sorted(base_streams.items()):
        measured = fresh_streams.get(kind)
        if measured is None:
            failures.append(f"{kind}: missing from fresh run")
            continue
        if metric not in base or metric not in measured:
            failures.append(f"{kind}: no {metric!r} field to compare")
            continue
        floor = base[metric] * (1.0 - tolerance)
        verdict = "ok" if measured[metric] >= floor else "REGRESSION"
        print(
            f"  {kind:<13} baseline {base[metric]:>5.2f}x  "
            f"measured {measured[metric]:>5.2f}x  "
            f"floor {floor:>5.2f}x  {verdict}"
        )
        if measured[metric] < floor:
            failures.append(
                f"{kind}: {metric} {measured[metric]:.2f}x fell below "
                f"{floor:.2f}x ({base[metric]:.2f}x baseline - "
                f"{tolerance:.0%} tolerance)"
            )
    return failures


def compare_sharded(
    baseline: dict,
    fresh: dict,
    tolerance: float,
    metric: str = "projected_speedup",
) -> list[str]:
    """The sharded-scaling report gates per (distribution, shard count)
    rather than per (scale, stream); scales may differ between runs —
    the projection is a ratio, invariant to batch and warehouse size
    within the gate's tolerance."""
    failures: list[str] = []
    for distribution, base_record in sorted(baseline["distributions"].items()):
        fresh_record = fresh.get("distributions", {}).get(distribution)
        if fresh_record is None:
            failures.append(f"{distribution}: missing from fresh run")
            continue
        failures += check_histograms(
            f"baseline/{distribution}", base_record["shards"]
        )
        failures += check_histograms(
            f"fresh/{distribution}", fresh_record["shards"]
        )
        for n_shards, base in sorted(
            base_record["shards"].items(), key=lambda kv: int(kv[0])
        ):
            measured = fresh_record["shards"].get(n_shards)
            if measured is None:
                failures.append(
                    f"{distribution}/{n_shards}: missing from fresh run"
                )
                continue
            floor = base[metric] * (1.0 - tolerance)
            verdict = "ok" if measured[metric] >= floor else "REGRESSION"
            print(
                f"  {distribution:<8} {n_shards:>2} shards  "
                f"baseline {base[metric]:>5.2f}x  "
                f"measured {measured[metric]:>5.2f}x  "
                f"floor {floor:>5.2f}x  {verdict}"
            )
            if measured[metric] < floor:
                failures.append(
                    f"{distribution}/{n_shards}: {metric} "
                    f"{measured[metric]:.2f}x fell below {floor:.2f}x "
                    f"({base[metric]:.2f}x baseline - "
                    f"{tolerance:.0%} tolerance)"
                )
    return failures


def compare_serving(
    baseline: dict,
    fresh: dict,
    scale: str,
    metric: str = "consistent_fraction",
) -> list[str]:
    """The serving gate: isolation is exact (no tolerance) and read p99
    must stay inside the absolute budget the baseline record declares.
    """
    try:
        base_streams = baseline["scales"][scale]["streams"]
    except KeyError:
        return [f"baseline has no scale {scale!r}"]
    try:
        fresh_streams = fresh["scales"][scale]["streams"]
    except KeyError:
        return [f"fresh run has no scale {scale!r}"]
    failures = check_histograms("baseline", base_streams)
    failures += check_histograms("fresh", fresh_streams)
    for kind, base in sorted(base_streams.items()):
        measured = fresh_streams.get(kind)
        if measured is None:
            failures.append(f"{kind}: missing from fresh run")
            continue
        fraction = measured.get(metric)
        budget = base.get("read_p99_budget_ms")
        p99 = measured.get("read_p99_ms")
        iso_ok = fraction == 1.0
        p99_ok = budget is None or (p99 is not None and p99 <= budget)
        verdict = "ok" if iso_ok and p99_ok else "REGRESSION"
        print(
            f"  {kind:<13} {metric} {fraction}  "
            f"p99 {p99}ms (budget {budget}ms)  "
            f"torn {measured.get('torn_reads')}  "
            f"mismatches {measured.get('replay_mismatches')}  {verdict}"
        )
        if not iso_ok:
            failures.append(
                f"{kind}: {metric} {fraction!r} != 1.0 "
                f"(torn_reads={measured.get('torn_reads')}, "
                f"replay_mismatches={measured.get('replay_mismatches')})"
            )
        if not p99_ok:
            failures.append(
                f"{kind}: read_p99_ms {p99} exceeds the "
                f"{budget}ms budget"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="JSON written by a fresh bench run")
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline JSON (default: picked from the fresh "
        "report's 'benchmark' name)",
    )
    parser.add_argument(
        "--metric",
        default=None,
        help="ratio field to gate on (default: picked from the fresh "
        "report's 'benchmark' name)",
    )
    parser.add_argument(
        "--scale", default="small", help="scale to gate on (default: small)"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional metric drop (default: 0.25)",
    )
    args = parser.parse_args(argv)
    fresh = json.loads(Path(args.fresh).read_text())
    default_baseline, default_metric = BENCHMARKS.get(
        fresh.get("benchmark", "hotpath_maintenance"),
        BENCHMARKS["hotpath_maintenance"],
    )
    baseline_path = Path(args.baseline) if args.baseline else default_baseline
    metric = args.metric or default_metric
    baseline = json.loads(baseline_path.read_text())
    print(
        f"regression gate: benchmark={fresh.get('benchmark', '?')} "
        f"metric={metric} scale={args.scale} tolerance={args.tolerance:.0%}"
    )
    if fresh.get("benchmark") == "sharded_scaling":
        failures = compare_sharded(baseline, fresh, args.tolerance, metric)
    elif fresh.get("benchmark") == "serving_load":
        failures = compare_serving(baseline, fresh, args.scale, metric)
    else:
        failures = compare(baseline, fresh, args.scale, args.tolerance, metric)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
