"""A2 — ablation: GPSJ auxiliary views vs the two baselines.

Compares current-detail storage and correctness across three strategies
maintaining the same ``product_sales`` view:

* full replication of the referenced base tables (the naive reading of
  Figure 1 — the paper's 245 GB side),
* PSJ auxiliary views (Quass et al. 1996: local + join reductions, keys
  kept, no duplicate compression),
* this paper's compressed auxiliary views.
"""

from repro.core.maintenance import SelfMaintainer
from repro.warehouse.baselines import (
    FullReplicationMaintainer,
    PsjAuxiliaryMaintainer,
)
from repro.workloads.retail import product_sales_view
from repro.workloads.streams import TransactionGenerator

from conftest import banner


def test_storage_comparison(benchmark, retail_database):
    view = product_sales_view(1997)

    def build_all():
        return {
            "full replication": FullReplicationMaintainer(view, retail_database),
            "PSJ (Quass et al.)": PsjAuxiliaryMaintainer(view, retail_database),
            "GPSJ (this paper)": SelfMaintainer(view, retail_database),
        }

    maintainers = benchmark.pedantic(build_all, rounds=1, iterations=1)

    sizes = {
        name: maintainer.detail_size_bytes()
        for name, maintainer in maintainers.items()
    }
    print(banner("A2 - current-detail storage by strategy"))
    baseline = sizes["full replication"]
    print(f"{'strategy':<22}{'detail bytes':<16}{'vs replication':<14}")
    for name, size in sizes.items():
        print(f"{name:<22}{size:<16,}{baseline / size:<14.2f}x")

    assert sizes["GPSJ (this paper)"] < sizes["PSJ (Quass et al.)"]
    assert sizes["PSJ (Quass et al.)"] <= sizes["full replication"]


def test_all_strategies_agree_under_stream(benchmark, retail_database):
    view = product_sales_view(1997)
    gpsj = SelfMaintainer(view, retail_database)
    psj = PsjAuxiliaryMaintainer(view, retail_database)
    full = FullReplicationMaintainer(view, retail_database)
    generator = TransactionGenerator(retail_database, seed=123)
    transactions = [generator.step() for __ in range(40)]

    def maintain_everything():
        for transaction in transactions:
            gpsj.apply(transaction)
            psj.apply(transaction)
            full.apply(transaction)
        return gpsj.current_view(), psj.current_view(), full.current_view()

    views = benchmark.pedantic(maintain_everything, rounds=1, iterations=1)
    a, b, c = views
    assert a.same_bag(b)
    assert b.same_bag(c)
    print(
        f"\nall three strategies agree on {len(a)} groups "
        f"after {len(transactions)} transactions"
    )
