"""A4 — ablation: auxiliary-view elimination (omitting the fact table).

Section 3.3's headline: when every dimension is pinned by a key group-by,
referential integrity holds everywhere, and no non-CSMAS touches the
fact table, the *entire fact-table auxiliary view can be omitted*.  This
bench compares the same workload under

* a view shape that blocks elimination (group on a non-key attribute),
* a view shape that enables it (group on the dimension key),

reporting detail storage and verifying maintenance stays exact.
"""

from repro.core.derivation import derive_auxiliary_views
from repro.core.maintenance import SelfMaintainer
from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads.snowflake import build_snowflake_database
from repro.workloads.streams import TransactionGenerator

from conftest import banner


def revenue_view(group_column: Column, name: str):
    return make_view(
        name,
        ("sale", "product"),
        [
            GroupByItem(group_column),
            AggregateItem(
                AggregateFunction.SUM, Column("amount", "sale"), alias="rev"
            ),
            AggregateItem(AggregateFunction.COUNT, None, alias="n"),
        ],
        joins=[JoinCondition("sale", "productid", "product", "id")],
    )


def test_elimination_effect_on_storage(benchmark):
    def derive_both():
        database = build_snowflake_database(days=40, sales_per_day=80)
        blocked = revenue_view(Column("name", "product"), "by_name")
        enabled = revenue_view(Column("id", "product"), "by_key")
        return (
            database,
            derive_auxiliary_views(blocked, database),
            derive_auxiliary_views(enabled, database),
        )

    database, blocked_aux, enabled_aux = benchmark.pedantic(
        derive_both, rounds=1, iterations=1
    )

    blocked_bytes = sum(
        rel.size_bytes() for rel in blocked_aux.materialize(database).values()
    )
    enabled_bytes = sum(
        rel.size_bytes() for rel in enabled_aux.materialize(database).values()
    )

    print(banner("A4 - auxiliary-view elimination"))
    print("group by product.name (blocks elimination):")
    print(f"  materialized: {sorted(blocked_aux.tables)}, {blocked_bytes:,} bytes")
    print("group by product.id (enables elimination):")
    print(f"  materialized: {sorted(enabled_aux.tables)}, {enabled_bytes:,} bytes")
    print(f"  eliminated:   {dict(enabled_aux.eliminated)}")
    print(f"storage saved by elimination: {blocked_bytes / max(enabled_bytes, 1):.1f}x")

    assert "sale" in enabled_aux.eliminated
    assert blocked_aux.eliminated == {}
    assert enabled_bytes < blocked_bytes


def test_eliminated_maintenance_is_still_exact(benchmark):
    database = build_snowflake_database(days=30, sales_per_day=50)
    view = revenue_view(Column("id", "product"), "by_key")
    maintainer = SelfMaintainer(view, database)
    assert "sale" in maintainer.eliminated_tables
    generator = TransactionGenerator(database, seed=55)
    transactions = [generator.step() for __ in range(50)]

    def maintain_all():
        for transaction in transactions:
            maintainer.apply(transaction)
        return maintainer.current_view()

    result = benchmark.pedantic(maintain_all, rounds=1, iterations=1)
    assert result.same_bag(view.evaluate(database))
    print(
        f"\neliminated-root maintenance exact over {len(transactions)} "
        f"transactions; detail bytes kept: {maintainer.detail_size_bytes():,}"
    )


def test_elimination_maintenance_speed(benchmark):
    """Per-transaction latency with the fact auxiliary view omitted —
    the cheapest maintenance mode the paper enables."""
    from repro.engine.deltas import Delta, Transaction

    database = build_snowflake_database(days=30, sales_per_day=50)
    view = revenue_view(Column("id", "product"), "by_key")
    maintainer = SelfMaintainer(view, database)
    next_id = max(database.relation("sale").column("id")) + 1
    counter = {"id": next_id}

    def one_insert():
        sale_id = counter["id"]
        counter["id"] += 1
        maintainer.apply(
            Transaction.of(
                Delta.insertion("sale", [(sale_id, 1, 1, 1, 100)])
            )
        )

    benchmark(one_insert)
