"""Serving-layer load benchmark: snapshot-isolated reads under writes.

Boots a :class:`WarehouseServer` over the retail warehouse, then drives
it with concurrent reader threads while one writer streams the standard
``mixed`` transaction stream through ``/apply`` (exercising micro-batch
coalescing).  Every read is *proved* consistent afterwards: hash
agreement across reads of the same ``(version, watermark)`` pair plus a
full shadow replay of the stream through an offline maintainer over an
identically-built database (see :mod:`repro.serving.loadgen`).

Raw latency is hardware-bound, so the committed baseline gates on
``consistent_fraction`` — the fraction of reads that passed every
isolation check, which must be exactly 1.0 on any machine — plus an
absolute ``read_p99_ms`` budget generous enough for a single-core CI
host (the read path is O(|summary|) dict copying; the budget catches it
becoming accidentally O(detail) or lock-coupled to the writer).

Standalone::

    python benchmarks/bench_serving.py --scale small

writes ``BENCH_serving.json``.  Also collectable by pytest as a smoke
test at the smallest scale.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import SCALES, hotpath_view, make_stream, txn_histograms

from repro.core.maintenance import SelfMaintainer
from repro.obs.trace import Tracer
from repro.serving.loadgen import check_against_shadow, run_load
from repro.serving.server import WarehouseServer
from repro.warehouse.warehouse import Warehouse
from repro.workloads.retail import build_retail_database

#: Absolute p99 budget for one snapshot read, wide enough for a loaded
#: single-core CI container — a regression to O(detail-data) reads or a
#: reader blocking on the writer blows through it regardless of host.
READ_P99_BUDGET_MS = 250.0


def run_scale(
    scale: str,
    transactions: int = 64,
    readers: int = 4,
    max_batch: int = 8,
    trace_sample_every: int = 0,
) -> dict:
    """One load run at ``scale``; returns the gate-ready record.
    ``trace_sample_every`` > 0 attaches a tracer (1 = trace every
    transaction and request, the ``repro serve`` default)."""
    config = SCALES[scale]
    database = build_retail_database(config)
    view = hotpath_view(config.start_year)
    stream = make_stream(database, "mixed", transactions=transactions)
    tracer = (
        Tracer(sample_every=trace_sample_every)
        if trace_sample_every > 0
        else None
    )
    warehouse = Warehouse(database, [view], tracer=tracer)
    with WarehouseServer(warehouse, max_batch=max_batch) as server:
        report, snapshots = run_load(
            server.url, view.name, stream, readers=readers
        )
        with urllib.request.urlopen(server.url + "/metrics") as response:
            exposition = response.read().decode()
    serving_metrics = sorted(
        {
            line.split("{")[0].split(" ")[0]
            for line in exposition.splitlines()
            if line.startswith("repro_serving_")
        }
    )
    histograms = txn_histograms(warehouse.maintainer(view.name).perf)
    warehouse.close()
    # The proof: replay the same stream offline over an identical
    # database and compare every observed snapshot at its watermark.
    shadow = SelfMaintainer(
        hotpath_view(config.start_year), build_retail_database(config)
    )
    check_against_shadow(report, snapshots, shadow, stream)
    record = report.summary()
    record["read_p99_budget_ms"] = READ_P99_BUDGET_MS
    record["readers"] = readers
    record["max_batch"] = max_batch
    record["serving_metrics"] = serving_metrics
    record["histograms"] = histograms
    return {
        "fact_rows": config.fact_rows(),
        "transactions_per_stream": transactions,
        "streams": {"mixed": record},
    }


def measure_tracing_overhead(
    scale: str = "small", transactions: int = 48, readers: int = 2
) -> dict:
    """Identical load runs, untraced vs fully traced (``sample_every=1``,
    the ``repro serve`` default): the read-p99 delta is the cost of the
    observability layer on the serving hot path.  Informational — the
    hard gate stays the absolute ``read_p99_ms`` budget, because the
    delta of two noisy p99s on a shared CI host is itself noisy."""
    untraced = run_scale(scale, transactions=transactions, readers=readers)
    traced = run_scale(
        scale,
        transactions=transactions,
        readers=readers,
        trace_sample_every=1,
    )
    base = untraced["streams"]["mixed"]
    over = traced["streams"]["mixed"]
    delta = over["read_p99_ms"] - base["read_p99_ms"]
    return {
        "sample_every": 1,
        "transactions": transactions,
        "readers": readers,
        "untraced_read_p99_ms": base["read_p99_ms"],
        "traced_read_p99_ms": over["read_p99_ms"],
        "read_p99_delta_ms": round(delta, 4),
        "delta_vs_budget": round(delta / READ_P99_BUDGET_MS, 4),
        "untraced_write_rows_per_sec": base["write_rows_per_sec"],
        "traced_write_rows_per_sec": over["write_rows_per_sec"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=[*SCALES, "all"], default="small",
        help="warehouse scale to serve (default: small)",
    )
    parser.add_argument(
        "--transactions", type=int, default=64,
        help="transactions streamed through /apply (default: 64)",
    )
    parser.add_argument(
        "--readers", type=int, default=4,
        help="concurrent reader threads (default: 4)",
    )
    parser.add_argument(
        "--out", default="BENCH_serving.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    scales = list(SCALES) if args.scale == "all" else [args.scale]
    report = {"benchmark": "serving_load", "scales": {}}
    for scale in scales:
        print(f"== scale: {scale} ==")
        measured = run_scale(
            scale, transactions=args.transactions, readers=args.readers
        )
        report["scales"][scale] = measured
        for kind, numbers in measured["streams"].items():
            print(
                f"  {kind:<13} reads {numbers['reads']:>6,}  "
                f"p50 {numbers['read_p50_ms']:>7.2f}ms  "
                f"p99 {numbers['read_p99_ms']:>7.2f}ms  "
                f"torn {numbers['torn_reads']}  "
                f"mismatches {numbers['replay_mismatches']}  "
                f"consistent {numbers['consistent_fraction']:.3f}"
            )
    overhead = measure_tracing_overhead(scales[0])
    report["tracing_overhead"] = overhead
    print(
        f"  tracing overhead (sample_every=1): read p99 "
        f"{overhead['untraced_read_p99_ms']:.2f}ms -> "
        f"{overhead['traced_read_p99_ms']:.2f}ms "
        f"(delta {overhead['read_p99_delta_ms']:+.2f}ms, "
        f"{overhead['delta_vs_budget'] * 100:+.1f}% of budget)"
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


def test_serving_smoke():
    """CI smoke: smallest scale, short stream, isolation proved."""
    measured = run_scale("small", transactions=24, readers=2)
    record = measured["streams"]["mixed"]
    assert record["writes_applied"] == 24
    assert record["torn_reads"] == 0
    assert record["replay_mismatches"] == 0
    assert record["consistent_fraction"] == 1.0
    assert record["versions_checked"] >= 1
    assert "repro_serving_queue_depth" in record["serving_metrics"]
    assert "repro_serving_lag_transactions" in record["serving_metrics"]
    assert "repro_serving_read_latency_ms_bucket" in record["serving_metrics"]
    for name, summary in record["histograms"].items():
        assert summary["count"] > 0, name


def test_traced_serving_smoke():
    """CI smoke: a fully traced run stays consistent and its read p99
    stays inside the same absolute budget as the untraced path (the
    <10%-of-budget overhead claim is measured, not hard-gated — see
    :func:`measure_tracing_overhead`)."""
    measured = run_scale(
        "small", transactions=24, readers=2, trace_sample_every=1
    )
    record = measured["streams"]["mixed"]
    assert record["consistent_fraction"] == 1.0
    assert record["read_p99_ms"] <= READ_P99_BUDGET_MS


if __name__ == "__main__":
    raise SystemExit(main())
