"""repro — Minimizing Detail Data in Data Warehouses (EDBT 1998).

A faithful reproduction of Akinde, Jensen & Böhlen's algorithm for making
generalized project-select-join (GPSJ) views self-maintainable by
materializing the unique minimal set of auxiliary views, built on an
in-memory relational engine, a SQL front-end, and a warehouse runtime.

Quickstart::

    from repro import (
        SelfMaintainer, derive_auxiliary_views,
        build_retail_database, product_sales_view,
    )

    db = build_retail_database()
    view = product_sales_view(year=1996)
    aux = derive_auxiliary_views(view, db)
    print(aux.to_sql())                    # the paper's auxiliary views
    maintainer = SelfMaintainer(view, db)  # initialize once...
    # ...then maintain from deltas without ever reading db again.
"""

from repro.catalog import BaseTable, Database, IntegrityError, ReferentialConstraint
from repro.core import (
    AuxiliaryView,
    AuxiliaryViewSet,
    ExtendedJoinGraph,
    JoinCondition,
    SelfMaintainer,
    ViewDefinition,
    classify_aggregate,
    derive_auxiliary_views,
)
from repro.core.rewrite import Reconstructor
from repro.engine import (
    AggregateFunction,
    Attribute,
    AttributeType,
    Column,
    Comparison,
    Delta,
    Literal,
    Relation,
    Schema,
    Transaction,
)
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads import (
    RetailConfig,
    TransactionGenerator,
    build_retail_database,
    build_snowflake_database,
    product_sales_view,
)

__version__ = "1.0.0"

__all__ = [
    "AggregateFunction",
    "AggregateItem",
    "Attribute",
    "AttributeType",
    "AuxiliaryView",
    "AuxiliaryViewSet",
    "BaseTable",
    "Column",
    "Comparison",
    "Database",
    "Delta",
    "ExtendedJoinGraph",
    "GroupByItem",
    "IntegrityError",
    "JoinCondition",
    "Literal",
    "Reconstructor",
    "ReferentialConstraint",
    "Relation",
    "RetailConfig",
    "Schema",
    "SelfMaintainer",
    "Transaction",
    "TransactionGenerator",
    "ViewDefinition",
    "build_retail_database",
    "build_snowflake_database",
    "classify_aggregate",
    "derive_auxiliary_views",
    "product_sales_view",
]
