"""Plan-node runtime statistics: observed cardinalities and timings.

Every :class:`~repro.plan.physical.PhysicalNode` owns one
:class:`ActualStats` accumulator, updated on every real execution (memo
and shared-cache hits are reuse, not executions, and are tracked
separately).  Because maintenance plans are compiled once per
``(table, sign)`` and cached on the maintainer — and evaluation plans
are cached per view — the accumulators persist across transactions:
after a change stream they hold exactly the *observed* per-operator
cardinalities that ``explain --analyze`` renders and that
``Warehouse.runtime_stats()`` exposes as training data for the
ROADMAP's cost-based planner (the role observed operator cardinalities
play in multi-query-optimization planners, cf. arXiv:cs/0003006).
"""

from __future__ import annotations


class ActualStats:
    """Observed executions, output cardinality, and wall time of one node."""

    __slots__ = ("executions", "rows_out_total", "rows_out_max", "seconds", "reuses")

    def __init__(self):
        self.executions = 0
        self.rows_out_total = 0
        self.rows_out_max = 0
        self.seconds = 0.0
        self.reuses = 0

    def record(self, rows_out: int | None, seconds: float = 0.0) -> None:
        self.executions += 1
        self.seconds += seconds
        if rows_out is not None:
            self.rows_out_total += rows_out
            if rows_out > self.rows_out_max:
                self.rows_out_max = rows_out

    def record_reuse(self) -> None:
        """A memo or shared-cache hit served this node without running it."""
        self.reuses += 1

    @property
    def mean_rows_out(self) -> float:
        return self.rows_out_total / self.executions if self.executions else 0.0

    def merge(self, other: "ActualStats") -> None:
        self.executions += other.executions
        self.rows_out_total += other.rows_out_total
        self.rows_out_max = max(self.rows_out_max, other.rows_out_max)
        self.seconds += other.seconds
        self.reuses += other.reuses

    def reset(self) -> None:
        self.executions = 0
        self.rows_out_total = 0
        self.rows_out_max = 0
        self.seconds = 0.0
        self.reuses = 0

    def snapshot(self) -> dict:
        return {
            "executions": self.executions,
            "rows_out": self.rows_out_total,
            "rows_out_max": self.rows_out_max,
            "mean_rows_out": round(self.mean_rows_out, 3),
            "total_ms": round(self.seconds * 1000.0, 3),
            "reuses": self.reuses,
        }

    def describe(self) -> str | None:
        """The ``explain --analyze`` annotation; None when never run."""
        if not self.executions and not self.reuses:
            return None
        parts = [
            f"actual: execs={self.executions}",
            f"rows={self.rows_out_total}",
            f"mean={self.mean_rows_out:.1f}",
            f"time={self.seconds * 1000.0:.2f}ms",
        ]
        if self.reuses:
            parts.append(f"reuses={self.reuses}")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"ActualStats({self.snapshot()})"


def collect_node_stats(root) -> list[dict]:
    """Pre-order ``{node, label, depth, stats...}`` records for every
    unique node under ``root`` (physical trees can share subtrees)."""
    records: list[dict] = []
    seen: set[int] = set()

    def walk(node, depth: int) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        records.append(
            {
                "node": node.describe(),
                "label": node.label,
                "depth": depth,
                **node.stats.snapshot(),
            }
        )
        for child in node.children:
            walk(child, depth + 1)

    walk(root, 0)
    return records
