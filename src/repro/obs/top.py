"""`repro top`: a live terminal dashboard over a serving endpoint.

Polls ``/metrics`` (Prometheus text exposition) and ``/healthz`` on a
running ``repro serve`` instance and renders the numbers an operator
watches during a load event: apply throughput (rate between polls),
queue depth and lag, snapshot version, read latency quantiles, planner
q-error, and per-shard routing balance as proportional bars.

Everything here is stdlib: :func:`parse_prometheus` is a small text
exposition parser (names, label sets, values, histogram ``_bucket``
series), :func:`histogram_quantile` re-derives quantiles from
cumulative bucket counts exactly like its PromQL namesake, and
:class:`Dashboard` keeps the previous sample so counters render as
rates.  ``--once`` prints a single frame (used by tests and CI smoke).
"""

from __future__ import annotations

import json
import urllib.request
from urllib.error import URLError

Sample = tuple[dict, float]  # (labels, value)


def parse_prometheus(text: str) -> dict[str, list[Sample]]:
    """Parse text exposition into ``{metric_name: [(labels, value)]}``.
    ``# TYPE``/``# HELP`` lines are skipped; histogram series keep
    their ``_bucket``/``_sum``/``_count`` suffixed names."""
    metrics: dict[str, list[Sample]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name, labels, value = _parse_sample(line)
        except ValueError:
            continue  # tolerate exposition extensions we don't know
        metrics.setdefault(name, []).append((labels, value))
    return metrics


def _parse_sample(line: str) -> tuple[str, dict, float]:
    if "{" in line:
        name, rest = line.split("{", 1)
        label_text, _, value_text = rest.rpartition("} ")
        if not _:
            raise ValueError(line)
        labels = _parse_labels(label_text)
    else:
        name, _, value_text = line.rpartition(" ")
        labels = {}
    if not name or not value_text:
        raise ValueError(line)
    return name.strip(), labels, float(value_text)


def _parse_labels(text: str) -> dict:
    labels: dict[str, str] = {}
    index = 0
    while index < len(text):
        eq = text.index("=", index)
        key = text[index:eq].lstrip(",").strip()
        if text[eq + 1] != '"':
            raise ValueError(text)
        value_chars = []
        cursor = eq + 2
        while text[cursor] != '"':
            if text[cursor] == "\\":
                cursor += 1
                escaped = text[cursor]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escaped, escaped)
                )
            else:
                value_chars.append(text[cursor])
            cursor += 1
        labels[key] = "".join(value_chars)
        index = cursor + 1
    return labels


def metric_value(
    metrics: dict[str, list[Sample]],
    name: str,
    default: float = 0.0,
    **labels: str,
) -> float:
    """Sum of samples of ``name`` whose labels include ``labels``."""
    samples = metrics.get(name)
    if not samples:
        return default
    total = 0.0
    matched = False
    for sample_labels, value in samples:
        if all(sample_labels.get(k) == v for k, v in labels.items()):
            total += value
            matched = True
    return total if matched else default


def histogram_quantile(
    metrics: dict[str, list[Sample]], name: str, q: float
) -> float | None:
    """The ``q``-quantile from ``name``'s cumulative ``_bucket`` series
    (upper bound of the crossing bucket, interpolated within it — the
    PromQL estimate).  None when the histogram is empty or absent."""
    buckets: list[tuple[float, float]] = []
    for labels, value in metrics.get(name + "_bucket", ()):
        le = labels.get("le")
        if le is None:
            continue
        bound = float("inf") if le == "+Inf" else float(le)
        buckets.append((bound, value))
    if not buckets:
        return None
    buckets.sort()
    total = buckets[-1][1]
    if total == 0:
        return None
    target = q * total
    previous_bound, previous_count = 0.0, 0.0
    for bound, cumulative in buckets:
        if cumulative >= target:
            if bound == float("inf"):
                return previous_bound
            span = cumulative - previous_count
            fraction = 0.0 if span <= 0 else (target - previous_count) / span
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = bound, cumulative
    return previous_bound  # pragma: no cover - rounding guard


def shard_shares(metrics: dict[str, list[Sample]]) -> dict[str, float]:
    """Per-shard fraction of routed delta rows (empty: not sharded)."""
    samples = metrics.get("repro_shard_routed_rows_total", ())
    totals = {
        labels.get("shard", "?"): value for labels, value in samples
    }
    grand = sum(totals.values())
    if grand <= 0:
        return {}
    return {shard: value / grand for shard, value in sorted(totals.items())}


def _bar(fraction: float, width: int = 20) -> str:
    return "#" * max(0, min(width, round(fraction * width)))


def _rate(current: float, previous: float | None, interval: float) -> float:
    if previous is None or interval <= 0:
        return 0.0
    return max(0.0, (current - previous) / interval)


class Dashboard:
    """Stateful poller/renderer behind ``repro top``."""

    def __init__(self, url: str, timeout: float = 5.0):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self._previous: dict[str, float] | None = None

    def fetch(self) -> tuple[dict[str, list[Sample]], dict]:
        """One poll: parsed ``/metrics`` plus ``/healthz`` JSON (the
        health dict is ``{}`` when the endpoint is unreachable — the
        metrics fetch is the one that raises)."""
        with urllib.request.urlopen(
            self.url + "/metrics", timeout=self.timeout
        ) as response:
            metrics = parse_prometheus(response.read().decode())
        try:
            with urllib.request.urlopen(
                self.url + "/healthz", timeout=self.timeout
            ) as response:
                health = json.loads(response.read().decode())
        except (URLError, OSError, ValueError):  # pragma: no cover - degraded
            health = {}
        return metrics, health

    def render(
        self,
        metrics: dict[str, list[Sample]],
        health: dict,
        interval: float,
    ) -> str:
        """One frame; counter deltas against the previous frame render
        as per-second rates (zero on the first frame)."""
        current = {
            "txns": metric_value(metrics, "repro_serving_txns_applied_total"),
            "batches": metric_value(metrics, "repro_serving_batches_total"),
            "reads": metric_value(metrics, "repro_serving_reads_total"),
            "rows": metric_value(metrics, "repro_serving_coalesced_rows_total"),
        }
        previous = self._previous
        self._previous = current

        def rate(key: str) -> float:
            return _rate(
                current[key],
                None if previous is None else previous.get(key),
                interval,
            )

        lines = [f"repro top — {self.url}"]
        status = health.get("status", "?")
        slo = health.get("slo") or {}
        lines.append(
            f"health   status={status}"
            f"  availability={slo.get('availability', '?')}"
            f"  slo_p99_ms={slo.get('p99_ms', '?')}"
            f"  breached={','.join(slo.get('breached', [])) or 'none'}"
        )
        lines.append(
            f"applies  {rate('txns'):>8.1f} txn/s"
            f"  {rate('batches'):>7.1f} batch/s"
            f"  {rate('rows'):>9.1f} coalesced rows/s"
            f"  total={current['txns']:.0f}"
        )
        lines.append(
            f"reads    {rate('reads'):>8.1f} read/s"
            f"  p50={_fmt_ms(histogram_quantile(metrics, 'repro_serving_read_latency_ms', 0.5))}"
            f"  p99={_fmt_ms(histogram_quantile(metrics, 'repro_serving_read_latency_ms', 0.99))}"
            f"  total={current['reads']:.0f}"
        )
        lines.append(
            f"queue    depth={metric_value(metrics, 'repro_serving_queue_depth'):.0f}"
            f"  lag={metric_value(metrics, 'repro_serving_lag_transactions'):.0f}"
            f"  version={metric_value(metrics, 'repro_serving_version'):.0f}"
            f"  rejected={metric_value(metrics, 'repro_serving_txns_rejected_total'):.0f}"
        )
        lines.append(
            f"planner  qerror_p50={_fmt(histogram_quantile(metrics, 'repro_planner_qerror', 0.5))}"
            f"  qerror_p99={_fmt(histogram_quantile(metrics, 'repro_planner_qerror', 0.99))}"
            f"  replans={metric_value(metrics, 'repro_maintenance_events_total', event='replans'):.0f}"
        )
        shares = shard_shares(metrics)
        if shares:
            lines.append("shards   routed-row balance:")
            for shard, share in shares.items():
                lines.append(
                    f"  shard {shard:>3}  {share * 100:5.1f}%  {_bar(share)}"
                )
        return "\n".join(lines)


def _fmt(value: float | None) -> str:
    return "?" if value is None else f"{value:.2f}"


def _fmt_ms(value: float | None) -> str:
    return "?" if value is None else f"{value:.2f}ms"
