"""Structured tracing: per-transaction span trees with propagation.

A :class:`Tracer` decides (by sampling) whether one maintained
transaction is traced; a sampled transaction gets a :class:`Trace` — a
pre-order list of :class:`Span` records forming a tree:

* the **root span** covers the whole ``SelfMaintainer.apply`` call;
* one **phase span** per maintenance phase (``coalesce``, ``validate``,
  ``local-reduce``, ``join-reduce``, ``aggregate-fold``, ``aux-apply``,
  ``recompute``, ``rollback``), carrying the phase's row counts;
* nested **plan spans**, one per executed physical plan node, carrying
  wall time, input/output row counts, index-probe counts, and cache-hit
  flags (memo hits and cross-view shared-cache hits appear as
  zero-duration spans flagged ``cache_hit``).

Spans are plain mutable records (callers set ``rows_in``/``rows_out``
after the work ran); durations come from ``perf_counter`` and are
*inclusive* of children — the exclusive per-node times stay in the
``plan:*`` timers of :class:`~repro.perf.PerfStats`.

Traces compose across threads and processes through **trace contexts**:
every trace has a 32-hex ``hex_id`` and :meth:`Trace.context` renders a
W3C-style ``traceparent`` (``00-<trace>-<span>-01``) naming the
innermost open span.  A context can seed a new trace in another thread
or process (``Tracer.begin(parent=...)`` / ``Tracer.parented``), the
resulting child traces are reassembled into one tree with
:func:`stitch_traces`, and serialized subtrees from worker processes
are re-parented in place with :meth:`Trace.graft` — that is how a
served apply renders HTTP request → queue batch → per-shard worker
spans as one connected tree.

Sampling is head-based (1-in-N), but failures are never invisible: by
default an unsampled transaction still records into a *shadow* trace
that is kept only if it ends in rollback or carries an error-flagged
span, and discarded otherwise (tail sampling).

Export is JSONL, one span object per line (``schema`` field stamps the
record version; v1 files from older exports still load), reconstructable
with :func:`read_trace_jsonl`; :meth:`Trace.render` draws a flame-style
text tree whose bar widths are proportional to each span's share of the
root's wall time.
"""

from __future__ import annotations

import json
import random
import threading
from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, Sequence

#: Version stamped on every exported span record.  Version 1 (PR 4) had
#: no ``schema``/``ctx``/``shard`` fields; readers treat their absence
#: as v1 and default them.
TRACE_SCHEMA_VERSION = 2


def format_traceparent(hex_trace: str, span_id: int) -> str:
    """Render a W3C-style ``traceparent`` for one span of a trace."""
    return f"00-{hex_trace}-{span_id & 0xFFFFFFFFFFFFFFFF:016x}-01"


def parse_traceparent(value: str) -> tuple[str, int]:
    """Inverse of :func:`format_traceparent` → ``(hex_trace, span_id)``."""
    parts = value.split("-")
    if len(parts) != 4 or len(parts[1]) != 32 or len(parts[2]) != 16:
        raise ValueError(f"malformed traceparent: {value!r}")
    return parts[1], int(parts[2], 16)


class Span:
    """One timed operation inside a trace tree."""

    __slots__ = (
        "span_id", "parent_id", "name", "kind", "phase", "depth",
        "start_ms", "duration_ms", "rows_in", "rows_out", "index_probes",
        "cache_hit", "error", "shard", "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        kind: str,
        phase: str,
        depth: int,
        start_ms: float,
        **attrs,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.phase = phase
        self.depth = depth
        self.start_ms = start_ms
        self.duration_ms = 0.0
        self.rows_in: int | None = None
        self.rows_out: int | None = None
        self.index_probes = 0
        self.cache_hit = False
        self.error = False
        self.shard: int | None = attrs.pop("shard", None)
        self.attrs = attrs

    def to_dict(self, trace_id: int, ctx: str | None = None) -> dict:
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "trace": trace_id,
            "ctx": ctx,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "phase": self.phase,
            "start_ms": round(self.start_ms, 4),
            "duration_ms": round(self.duration_ms, 4),
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "index_probes": self.index_probes,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "shard": self.shard,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        span = cls(
            record["span"],
            record["parent"],
            record["name"],
            record["kind"],
            record["phase"],
            0,
            record["start_ms"],
            **record.get("attrs", {}),
        )
        span.duration_ms = record["duration_ms"]
        span.rows_in = record["rows_in"]
        span.rows_out = record["rows_out"]
        span.index_probes = record["index_probes"]
        span.cache_hit = record["cache_hit"]
        span.error = record["error"]
        span.shard = record.get("shard")
        return span

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"Span({self.name!r}, kind={self.kind!r}, "
            f"{self.duration_ms:.3f}ms)"
        )


class Trace:
    """The span tree of one traced transaction (spans in pre-order)."""

    __slots__ = (
        "trace_id", "label", "spans", "status", "hex_id", "sampled",
        "_stack", "_origin",
    )

    def __init__(
        self,
        trace_id: int,
        label: str,
        kind: str = "transaction",
        hex_id: str | None = None,
        parent: str | None = None,
        **attrs,
    ):
        self.trace_id = trace_id
        self.label = label
        self.spans: list[Span] = []
        self.status = "open"
        self.hex_id = hex_id or f"{trace_id & (1 << 128) - 1:032x}"
        self.sampled = True
        self._stack: list[Span] = []
        self._origin = perf_counter()
        self._open(label, kind=kind, **attrs)
        if parent is not None:
            self.root.attrs["parent_ctx"] = parent

    # ------------------------------------------------------------------
    # Span construction.
    # ------------------------------------------------------------------

    def _now_ms(self) -> float:
        return (perf_counter() - self._origin) * 1000.0

    def _open(self, name: str, kind: str, **attrs) -> Span:
        parent = self._stack[-1] if self._stack else None
        if kind == "phase":
            phase = name
        elif parent is not None:
            phase = parent.phase
        else:
            phase = name
        span = Span(
            span_id=len(self.spans),
            parent_id=None if parent is None else parent.span_id,
            name=name,
            kind=kind,
            phase=phase,
            depth=len(self._stack),
            start_ms=self._now_ms(),
            **attrs,
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.duration_ms = self._now_ms() - span.start_ms
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()  # pragma: no cover - unbalanced-exit guard
        if self._stack:
            self._stack.pop()

    @contextmanager
    def span(self, name: str, kind: str = "span", **attrs) -> Iterator[Span]:
        """Open a child span of the innermost open span; closes (and
        flags errors) even when the body raises — fault-injected phases
        still leave a well-formed tree."""
        opened = self._open(name, kind, **attrs)
        try:
            yield opened
        except BaseException:
            opened.error = True
            raise
        finally:
            self._close(opened)

    def instant(self, name: str, kind: str = "span", **attrs) -> Span:
        """A zero-duration child span (cache hits, annotations)."""
        span = self._open(name, kind, **attrs)
        self._close(span)
        span.duration_ms = 0.0
        return span

    def finish(self, status: str = "ok") -> None:
        while self._stack:
            self._close(self._stack[-1])
        self.status = status
        if self.spans:
            self.spans[0].attrs["status"] = status

    # ------------------------------------------------------------------
    # Cross-thread / cross-process composition.
    # ------------------------------------------------------------------

    def context(self, span: Span | None = None) -> str:
        """``traceparent`` naming ``span`` (default: the innermost open
        span) — hand this to another thread or process so its trace can
        be stitched back under that exact span."""
        if span is None:
            span = self._stack[-1] if self._stack else self.root
        return format_traceparent(self.hex_id, span.span_id)

    @property
    def has_error(self) -> bool:
        return self.status == "error" or any(s.error for s in self.spans)

    def graft(
        self,
        records: Sequence[dict],
        parent: Span | None = None,
        shard: int | None = None,
    ) -> dict[int, int]:
        """Append a serialized span subtree (another trace's
        :meth:`to_dicts`, pre-order) under ``parent`` (default: the
        innermost open span).  Span ids are remapped into this trace's
        id space, subtree roots are re-parented onto ``parent``, start
        times are clock-aligned to the graft point, and ``shard`` (when
        given) labels every grafted span that does not carry one.
        Returns the old→new span-id mapping."""
        if parent is None:
            parent = self._stack[-1] if self._stack else self.root
        offset = parent.start_ms
        id_map: dict[int, int] = {}
        grafted: list[Span] = []
        for record in records:
            span = Span.from_dict(record)
            old_id = span.span_id
            span.span_id = len(self.spans) + len(grafted)
            old_parent = record.get("parent")
            if old_parent is not None and old_parent in id_map:
                span.parent_id = id_map[old_parent]
            else:
                span.parent_id = parent.span_id
            span.start_ms += offset
            if shard is not None and span.shard is None:
                span.shard = shard
            id_map[old_id] = span.span_id
            grafted.append(span)
        self.spans.extend(grafted)
        return id_map

    def copy(self) -> "Trace":
        """A detached deep copy (used by :func:`stitch_traces` so
        stitching never mutates the originals)."""
        clone = Trace.__new__(Trace)
        clone.trace_id = self.trace_id
        clone.label = self.label
        clone.status = self.status
        clone.hex_id = self.hex_id
        clone.sampled = self.sampled
        clone.spans = [
            Span.from_dict(span.to_dict(self.trace_id)) for span in self.spans
        ]
        clone._stack = []
        clone._origin = 0.0
        return clone

    # ------------------------------------------------------------------
    # Inspection / export.
    # ------------------------------------------------------------------

    @property
    def root(self) -> Span:
        return self.spans[0]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def to_dicts(self) -> list[dict]:
        return [span.to_dict(self.trace_id, self.hex_id) for span in self.spans]

    def render(self, bar_width: int = 24) -> str:
        """Flame-style text tree: one line per span, duration-scaled bars."""
        total = self.root.duration_ms or 1.0
        name_width = max(
            (len("  " * self._depth_of(s)) + len(s.name) for s in self.spans),
            default=0,
        )
        lines = []
        for span in self.spans:
            indent = "  " * self._depth_of(span)
            bar = "#" * max(
                1 if span.duration_ms > 0 else 0,
                round(bar_width * span.duration_ms / total),
            )
            notes = []
            if span.rows_in is not None or span.rows_out is not None:
                rows_in = "?" if span.rows_in is None else str(span.rows_in)
                rows_out = "?" if span.rows_out is None else str(span.rows_out)
                notes.append(f"rows {rows_in}->{rows_out}")
            if span.index_probes:
                notes.append(f"probes={span.index_probes}")
            if span.cache_hit:
                notes.append("cache-hit")
            if span.shard is not None:
                notes.append(f"shard={span.shard}")
            if span.error:
                notes.append("ERROR")
            if span.kind == "transaction":
                notes.append(
                    f"status={span.attrs.get('status', self.status)}"
                )
            suffix = ("  [" + ", ".join(notes) + "]") if notes else ""
            lines.append(
                f"{indent}{span.name:<{name_width - len(indent)}}"
                f"{span.duration_ms:>10.3f}ms  {bar:<{bar_width}}{suffix}"
            )
        return "\n".join(lines)

    def _depth_of(self, span: Span) -> int:
        depth = 0
        current = span
        by_id = {s.span_id: s for s in self.spans}
        while current.parent_id is not None:
            current = by_id[current.parent_id]
            depth += 1
        return depth


class Tracer:
    """Samples transactions and keeps the most recent finished traces.

    ``sample_every=N`` head-samples the first of every ``N``
    transactions seen (``1`` traces everything, ``0`` disables tracing
    entirely — the cheap default the maintainer runs with unless one is
    installed).  ``max_traces`` bounds memory: older traces fall off a
    ring buffer.

    With ``errors_always`` (the default), an unsampled transaction
    still records into a shadow trace (``trace.sampled`` False);
    :meth:`finish` keeps it only when it failed, so rollbacks are never
    sampled away.  A trace begun with an explicit or ambient ``parent``
    context is always kept — request-linked work must form a complete
    tree.

    Thread-safe: ``begin``/``finish`` may be called from concurrent
    serving threads; the ambient parent context set by
    :meth:`parented` is thread-local.
    """

    def __init__(
        self,
        sample_every: int = 1,
        max_traces: int = 128,
        errors_always: bool = True,
    ):
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        self.sample_every = sample_every
        self.errors_always = errors_always
        self._seen = 0
        self._issued = 0
        self._head = 0
        self._retained_errors = 0
        self._prefix = random.getrandbits(64)
        self._lock = threading.Lock()
        self._ambient = threading.local()
        self._finished: deque[Trace] = deque(maxlen=max_traces)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def begin(
        self,
        label: str,
        kind: str = "transaction",
        parent: str | None = None,
        links: Sequence[str] = (),
        **attrs,
    ) -> Trace | None:
        """Start a trace for the next transaction, or None when tracing
        is off or the sampler skips it and error tail-sampling is
        disabled.  ``parent`` (a ``traceparent``) forces sampling and is
        recorded for :func:`stitch_traces`; with none given, the
        thread's ambient context (see :meth:`parented`) applies.
        ``links`` records additional related contexts (e.g. the other
        requests coalesced into one batch)."""
        if parent is None:
            parent = getattr(self._ambient, "ctx", None)
        with self._lock:
            self._seen += 1
            if self.sample_every == 0:
                return None
            head = (self._seen - 1) % self.sample_every == 0
            if parent is not None:
                head = True
            if not head and not self.errors_always:
                return None
            trace_id = self._issued
            self._issued += 1
            if head:
                self._head += 1
            hex_id = f"{self._prefix:016x}{trace_id & (1 << 64) - 1:016x}"
        trace = Trace(
            trace_id, label, kind=kind, hex_id=hex_id, parent=parent, **attrs
        )
        trace.sampled = head
        if links:
            trace.root.attrs["links"] = list(links)
        return trace

    def finish(self, trace: Trace, status: str = "ok") -> None:
        trace.finish(status)
        if not trace.sampled:
            # Shadow trace: tail-sample — keep failures, drop the rest.
            if status == "ok" and not trace.has_error:
                return
            with self._lock:
                self._retained_errors += 1
        self._finished.append(trace)

    @contextmanager
    def parented(self, ctx: str | None) -> Iterator[None]:
        """Bind ``ctx`` as this thread's ambient parent context: traces
        begun on this thread inside the block become its children (the
        apply-queue worker wraps ``Warehouse.apply`` in the batch span's
        context so maintainer transaction traces join the request
        tree)."""
        if ctx is None:
            yield
            return
        previous = getattr(self._ambient, "ctx", None)
        self._ambient.ctx = ctx
        try:
            yield
        finally:
            self._ambient.ctx = previous

    # ------------------------------------------------------------------
    # Inspection / export.
    # ------------------------------------------------------------------

    @property
    def traces(self) -> list[Trace]:
        return list(self._finished)

    @property
    def last(self) -> Trace | None:
        return self._finished[-1] if self._finished else None

    @property
    def sampled(self) -> int:
        """Transactions head-sampled so far (seen minus sampled-away)."""
        return self._head

    @property
    def retained_errors(self) -> int:
        """Unsampled failures kept by error tail-sampling."""
        return self._retained_errors

    def slowest(self) -> Trace | None:
        if not self._finished:
            return None
        return max(self._finished, key=lambda t: t.root.duration_ms)

    def stitched(self) -> list[Trace]:
        """Finished traces with parent-context references resolved into
        single connected trees (see :func:`stitch_traces`)."""
        return stitch_traces(self.traces)

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(record, sort_keys=True)
            for trace in self._finished
            for record in trace.to_dicts()
        )

    def export_jsonl(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl() + "\n")


def stitch_traces(traces: Sequence[Trace]) -> list[Trace]:
    """Resolve ``parent_ctx`` references among ``traces`` and graft each
    child trace under the exact span its context names, returning the
    roots (traces whose parent is absent stay roots).  Inputs are not
    mutated.  This is how one served apply — request trace, queue batch
    trace, per-view transaction traces, per-shard worker subtrees — is
    reassembled into a single connected tree."""
    by_hex: dict[str, Trace] = {}
    for trace in traces:
        by_hex.setdefault(trace.hex_id, trace)
    children: dict[str, list[tuple[Trace, int | None]]] = {}
    roots: list[Trace] = []
    for trace in traces:
        parent_trace = None
        parent_span: int | None = None
        ctx = trace.root.attrs.get("parent_ctx")
        if ctx:
            try:
                hex_id, span_id = parse_traceparent(ctx)
            except ValueError:
                pass
            else:
                candidate = by_hex.get(hex_id)
                if candidate is not None and candidate is not trace:
                    parent_trace, parent_span = candidate, span_id
        if parent_trace is None:
            roots.append(trace)
        else:
            children.setdefault(parent_trace.hex_id, []).append(
                (trace, parent_span)
            )

    def assemble(trace: Trace, seen: frozenset[str]) -> Trace:
        merged = trace.copy()
        by_id = {span.span_id: span for span in merged.spans}
        for child, span_id in children.get(trace.hex_id, ()):
            if child.hex_id in seen:
                continue  # pragma: no cover - cycle guard
            sub = assemble(child, seen | {child.hex_id})
            anchor = by_id.get(span_id, merged.root)
            merged.graft(sub.to_dicts(), parent=anchor)
        return merged

    return [assemble(root, frozenset({root.hex_id})) for root in roots]


def read_trace_jsonl(path) -> list[Trace]:
    """Rebuild traces from a JSONL export (the round-trip inverse of
    :meth:`Tracer.export_jsonl`).  Accepts both current (``schema`` 2)
    and PR 4 v1 records, which lack ``schema``/``ctx``/``shard``."""
    grouped: dict[object, list[dict]] = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            key = record.get("ctx") or record["trace"]
            grouped.setdefault(key, []).append(record)
    traces: list[Trace] = []
    for records in grouped.values():
        records.sort(key=lambda r: r["span"])
        trace = Trace.__new__(Trace)
        trace.trace_id = records[0]["trace"]
        trace.label = records[0]["name"]
        trace.spans = [Span.from_dict(record) for record in records]
        trace.status = trace.spans[0].attrs.get("status", "ok")
        trace.hex_id = (
            records[0].get("ctx") or f"{trace.trace_id & (1 << 128) - 1:032x}"
        )
        trace.sampled = True
        trace._stack = []
        trace._origin = 0.0
        traces.append(trace)
    return traces
