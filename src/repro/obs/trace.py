"""Structured tracing: per-transaction span trees.

A :class:`Tracer` decides (by sampling) whether one maintained
transaction is traced; a sampled transaction gets a :class:`Trace` — a
pre-order list of :class:`Span` records forming a tree:

* the **root span** covers the whole ``SelfMaintainer.apply`` call;
* one **phase span** per maintenance phase (``coalesce``, ``validate``,
  ``local-reduce``, ``join-reduce``, ``aggregate-fold``, ``aux-apply``,
  ``recompute``, ``rollback``), carrying the phase's row counts;
* nested **plan spans**, one per executed physical plan node, carrying
  wall time, input/output row counts, index-probe counts, and cache-hit
  flags (memo hits and cross-view shared-cache hits appear as
  zero-duration spans flagged ``cache_hit``).

Spans are plain mutable records (callers set ``rows_in``/``rows_out``
after the work ran); durations come from ``perf_counter`` and are
*inclusive* of children — the exclusive per-node times stay in the
``plan:*`` timers of :class:`~repro.perf.PerfStats`.

Export is JSONL, one span object per line, reconstructable with
:func:`read_trace_jsonl` (the round-trip the trace tooling and tests
rely on); :meth:`Trace.render` draws a flame-style text tree whose bar
widths are proportional to each span's share of the root's wall time.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator


class Span:
    """One timed operation inside a trace tree."""

    __slots__ = (
        "span_id", "parent_id", "name", "kind", "phase", "depth",
        "start_ms", "duration_ms", "rows_in", "rows_out", "index_probes",
        "cache_hit", "error", "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        kind: str,
        phase: str,
        depth: int,
        start_ms: float,
        **attrs,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.phase = phase
        self.depth = depth
        self.start_ms = start_ms
        self.duration_ms = 0.0
        self.rows_in: int | None = None
        self.rows_out: int | None = None
        self.index_probes = 0
        self.cache_hit = False
        self.error = False
        self.attrs = attrs

    def to_dict(self, trace_id: int) -> dict:
        return {
            "trace": trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "phase": self.phase,
            "start_ms": round(self.start_ms, 4),
            "duration_ms": round(self.duration_ms, 4),
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "index_probes": self.index_probes,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        span = cls(
            record["span"],
            record["parent"],
            record["name"],
            record["kind"],
            record["phase"],
            0,
            record["start_ms"],
            **record.get("attrs", {}),
        )
        span.duration_ms = record["duration_ms"]
        span.rows_in = record["rows_in"]
        span.rows_out = record["rows_out"]
        span.index_probes = record["index_probes"]
        span.cache_hit = record["cache_hit"]
        span.error = record["error"]
        return span

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"Span({self.name!r}, kind={self.kind!r}, "
            f"{self.duration_ms:.3f}ms)"
        )


class Trace:
    """The span tree of one traced transaction (spans in pre-order)."""

    __slots__ = ("trace_id", "label", "spans", "status", "_stack", "_origin")

    def __init__(self, trace_id: int, label: str, **attrs):
        self.trace_id = trace_id
        self.label = label
        self.spans: list[Span] = []
        self.status = "open"
        self._stack: list[Span] = []
        self._origin = perf_counter()
        self._open(label, kind="transaction", **attrs)

    # ------------------------------------------------------------------
    # Span construction.
    # ------------------------------------------------------------------

    def _now_ms(self) -> float:
        return (perf_counter() - self._origin) * 1000.0

    def _open(self, name: str, kind: str, **attrs) -> Span:
        parent = self._stack[-1] if self._stack else None
        if kind == "phase":
            phase = name
        elif parent is not None:
            phase = parent.phase
        else:
            phase = name
        span = Span(
            span_id=len(self.spans),
            parent_id=None if parent is None else parent.span_id,
            name=name,
            kind=kind,
            phase=phase,
            depth=len(self._stack),
            start_ms=self._now_ms(),
            **attrs,
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.duration_ms = self._now_ms() - span.start_ms
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()  # pragma: no cover - unbalanced-exit guard
        if self._stack:
            self._stack.pop()

    @contextmanager
    def span(self, name: str, kind: str = "span", **attrs) -> Iterator[Span]:
        """Open a child span of the innermost open span; closes (and
        flags errors) even when the body raises — fault-injected phases
        still leave a well-formed tree."""
        opened = self._open(name, kind, **attrs)
        try:
            yield opened
        except BaseException:
            opened.error = True
            raise
        finally:
            self._close(opened)

    def instant(self, name: str, kind: str = "span", **attrs) -> Span:
        """A zero-duration child span (cache hits, annotations)."""
        span = self._open(name, kind, **attrs)
        self._close(span)
        span.duration_ms = 0.0
        return span

    def finish(self, status: str = "ok") -> None:
        while self._stack:
            self._close(self._stack[-1])
        self.status = status
        if self.spans:
            self.spans[0].attrs["status"] = status

    # ------------------------------------------------------------------
    # Inspection / export.
    # ------------------------------------------------------------------

    @property
    def root(self) -> Span:
        return self.spans[0]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def to_dicts(self) -> list[dict]:
        return [span.to_dict(self.trace_id) for span in self.spans]

    def render(self, bar_width: int = 24) -> str:
        """Flame-style text tree: one line per span, duration-scaled bars."""
        total = self.root.duration_ms or 1.0
        name_width = max(
            (len("  " * self._depth_of(s)) + len(s.name) for s in self.spans),
            default=0,
        )
        lines = []
        for span in self.spans:
            indent = "  " * self._depth_of(span)
            bar = "#" * max(
                1 if span.duration_ms > 0 else 0,
                round(bar_width * span.duration_ms / total),
            )
            notes = []
            if span.rows_in is not None or span.rows_out is not None:
                rows_in = "?" if span.rows_in is None else str(span.rows_in)
                rows_out = "?" if span.rows_out is None else str(span.rows_out)
                notes.append(f"rows {rows_in}->{rows_out}")
            if span.index_probes:
                notes.append(f"probes={span.index_probes}")
            if span.cache_hit:
                notes.append("cache-hit")
            if span.error:
                notes.append("ERROR")
            if span.kind == "transaction":
                notes.append(f"status={self.status}")
            suffix = ("  [" + ", ".join(notes) + "]") if notes else ""
            lines.append(
                f"{indent}{span.name:<{name_width - len(indent)}}"
                f"{span.duration_ms:>10.3f}ms  {bar:<{bar_width}}{suffix}"
            )
        return "\n".join(lines)

    def _depth_of(self, span: Span) -> int:
        depth = 0
        current = span
        by_id = {s.span_id: s for s in self.spans}
        while current.parent_id is not None:
            current = by_id[current.parent_id]
            depth += 1
        return depth


class Tracer:
    """Samples transactions and keeps the most recent finished traces.

    ``sample_every=N`` traces the first of every ``N`` transactions
    seen (``1`` traces everything, ``0`` disables tracing entirely —
    the cheap default the maintainer runs with unless one is
    installed).  ``max_traces`` bounds memory: older traces fall off a
    ring buffer.
    """

    def __init__(self, sample_every: int = 1, max_traces: int = 128):
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        self.sample_every = sample_every
        self._seen = 0
        self._next_id = 0
        self._finished: deque[Trace] = deque(maxlen=max_traces)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def begin(self, label: str, **attrs) -> Trace | None:
        """Start a trace for the next transaction, or None when the
        sampler skips it (the only per-transaction cost of a quiet
        tracer is this counter bump)."""
        self._seen += 1
        if self.sample_every == 0 or (self._seen - 1) % self.sample_every:
            return None
        trace = Trace(self._next_id, label, **attrs)
        self._next_id += 1
        return trace

    def finish(self, trace: Trace, status: str = "ok") -> None:
        trace.finish(status)
        self._finished.append(trace)

    # ------------------------------------------------------------------
    # Inspection / export.
    # ------------------------------------------------------------------

    @property
    def traces(self) -> list[Trace]:
        return list(self._finished)

    @property
    def last(self) -> Trace | None:
        return self._finished[-1] if self._finished else None

    @property
    def sampled(self) -> int:
        """Transactions traced so far (seen minus sampled-away)."""
        return self._next_id

    def slowest(self) -> Trace | None:
        if not self._finished:
            return None
        return max(self._finished, key=lambda t: t.root.duration_ms)

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(record, sort_keys=True)
            for trace in self._finished
            for record in trace.to_dicts()
        )

    def export_jsonl(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl() + "\n")


def read_trace_jsonl(path) -> list[Trace]:
    """Rebuild traces from a JSONL export (the round-trip inverse of
    :meth:`Tracer.export_jsonl`)."""
    grouped: dict[int, list[dict]] = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            grouped.setdefault(record["trace"], []).append(record)
    traces: list[Trace] = []
    for trace_id, records in sorted(grouped.items()):
        records.sort(key=lambda r: r["span"])
        trace = Trace.__new__(Trace)
        trace.trace_id = trace_id
        trace.label = records[0]["name"]
        trace.spans = [Span.from_dict(record) for record in records]
        trace.status = trace.spans[0].attrs.get("status", "ok")
        trace._stack = []
        trace._origin = 0.0
        traces.append(trace)
    return traces
