"""repro.obs — the end-to-end observability layer.

Three cooperating facilities, deliberately dependency-free (nothing in
here imports the engine, the planner, or the warehouse, so every layer
above can use them):

:mod:`repro.obs.metrics`
    A :class:`MetricsRegistry` of named counters, gauges, and
    fixed-bucket histograms (p50/p95/p99 derivable), exportable as
    Prometheus text exposition and as JSONL snapshots.
    :class:`~repro.perf.PerfStats` is a thin façade over one of these.

:mod:`repro.obs.trace`
    A :class:`Tracer` producing per-transaction trace trees: one root
    span per maintained transaction, one child span per maintenance
    phase, and nested plan-node spans carrying wall time, input/output
    row counts, index-probe counts, and cache-hit flags.  Traces export
    as JSONL (round-trippable) and render as flame-style text trees.
    The ``sample_every`` knob keeps the default overhead near zero.

:mod:`repro.obs.stats`
    :class:`ActualStats`, the per-plan-node runtime accumulator behind
    ``explain --analyze`` and ``Warehouse.runtime_stats()`` — observed
    cardinalities as the future cost model's training data.
"""

from repro.obs.metrics import (
    CounterMetric,
    Gauge,
    Histogram,
    MetricsRegistry,
    DELTA_ROWS_BUCKETS,
    LATENCY_MS_BUCKETS,
    ROWS_PER_SEC_BUCKETS,
)
from repro.obs.stats import ActualStats, collect_node_stats
from repro.obs.trace import Span, Trace, Tracer, read_trace_jsonl

__all__ = [
    "ActualStats",
    "CounterMetric",
    "DELTA_ROWS_BUCKETS",
    "Gauge",
    "Histogram",
    "LATENCY_MS_BUCKETS",
    "MetricsRegistry",
    "ROWS_PER_SEC_BUCKETS",
    "Span",
    "Trace",
    "Tracer",
    "collect_node_stats",
    "read_trace_jsonl",
]
