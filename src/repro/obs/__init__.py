"""repro.obs — the end-to-end observability layer.

Cooperating facilities, deliberately dependency-free (nothing in here
imports the engine, the planner, or the warehouse, so every layer above
can use them):

:mod:`repro.obs.metrics`
    A :class:`MetricsRegistry` of named counters, gauges, and
    fixed-bucket histograms (p50/p95/p99 derivable), exportable as
    Prometheus text exposition and as JSONL snapshots; thread-safe
    under the serving layer's concurrent readers.
    :class:`~repro.perf.PerfStats` is a thin façade over one of these.

:mod:`repro.obs.trace`
    A :class:`Tracer` producing per-transaction trace trees: one root
    span per maintained transaction, one child span per maintenance
    phase, and nested plan-node spans carrying wall time, input/output
    row counts, index-probe counts, and cache-hit flags.  Traces
    propagate across threads and processes via ``traceparent``
    contexts, reassemble with :func:`stitch_traces` /
    :meth:`Trace.graft`, export as JSONL (round-trippable, versioned
    ``schema``), and render as flame-style text trees.  The
    ``sample_every`` knob keeps the default overhead near zero while
    error tail-sampling keeps every failure.

:mod:`repro.obs.log`
    A leveled, bounded, trace-correlated :class:`EventLog` narrating
    operational moments (txn commit/rollback, replans, checkpoints,
    faults, backpressure) as JSONL events.

:mod:`repro.obs.health`
    :class:`SLOTracker` — availability + p99 budgets over a rolling
    window of request outcomes, behind the serving ``/healthz``.

:mod:`repro.obs.top`
    The ``repro top`` terminal dashboard: a stdlib Prometheus text
    parser plus rate/quantile rendering over a live ``/metrics``.

:mod:`repro.obs.stats`
    :class:`ActualStats`, the per-plan-node runtime accumulator behind
    ``explain --analyze`` and ``Warehouse.runtime_stats()`` — observed
    cardinalities as the future cost model's training data.
"""

from repro.obs.health import SLOTracker
from repro.obs.log import (
    EVENT_SCHEMA_VERSION,
    Event,
    EventLog,
    read_events_jsonl,
)
from repro.obs.metrics import (
    CounterMetric,
    Gauge,
    Histogram,
    MetricsRegistry,
    DELTA_ROWS_BUCKETS,
    LATENCY_MS_BUCKETS,
    ROWS_PER_SEC_BUCKETS,
)
from repro.obs.stats import ActualStats, collect_node_stats
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    Trace,
    Tracer,
    format_traceparent,
    parse_traceparent,
    read_trace_jsonl,
    stitch_traces,
)

__all__ = [
    "ActualStats",
    "CounterMetric",
    "DELTA_ROWS_BUCKETS",
    "EVENT_SCHEMA_VERSION",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "LATENCY_MS_BUCKETS",
    "MetricsRegistry",
    "ROWS_PER_SEC_BUCKETS",
    "SLOTracker",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "Trace",
    "Tracer",
    "collect_node_stats",
    "format_traceparent",
    "parse_traceparent",
    "read_events_jsonl",
    "read_trace_jsonl",
    "stitch_traces",
]
