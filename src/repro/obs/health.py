"""Operational health: rolling-window SLO tracking.

An :class:`SLOTracker` watches a request stream (the serving layer
records every ``/query`` and ``/apply``) against two budgets over a
sliding time window:

* **availability** — fraction of requests that succeeded must stay at
  or above ``availability_target``;
* **latency** — the window's p99 must stay at or below
  ``p99_budget_ms``.

The window is a ring of coarse time buckets (``window_s / buckets``
wide each): recording is O(1) — bump the current bucket's counters and
its fixed-bound latency histogram — and :meth:`state` folds the live
buckets into availability + p99 on demand, exactly like a Prometheus
``histogram_quantile`` over a range vector, but in-process.  Old
buckets fall out of the ring as time advances, so one slow minute ages
out instead of poisoning the health signal forever.

Thread-safe; the clock is injectable so tests can march time forward
deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs.metrics import READ_LATENCY_MS_BUCKETS


class SLOTracker:
    """Availability + p99 budgets over a sliding window of requests."""

    def __init__(
        self,
        window_s: float = 60.0,
        buckets: int = 12,
        availability_target: float = 0.999,
        p99_budget_ms: float = 250.0,
        latency_bounds: tuple[float, ...] = READ_LATENCY_MS_BUCKETS,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window_s <= 0 or buckets <= 0:
            raise ValueError("window_s and buckets must be positive")
        self.window_s = float(window_s)
        self.buckets = buckets
        self.availability_target = availability_target
        self.p99_budget_ms = p99_budget_ms
        self.bounds = tuple(float(b) for b in latency_bounds)
        self._width = self.window_s / buckets
        self._clock = clock
        self._lock = threading.Lock()
        #: bucket number -> [requests, errors, per-bound latency counts]
        self._ring: dict[int, list] = {}

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def _bucket_number(self) -> int:
        return int(self._clock() / self._width)

    def _evict(self, current: int) -> None:
        floor = current - self.buckets + 1
        for number in [n for n in self._ring if n < floor]:
            del self._ring[number]

    def record(self, ok: bool, latency_ms: float) -> None:
        """One request outcome: success flag plus wall latency."""
        current = self._bucket_number()
        with self._lock:
            self._evict(current)
            bucket = self._ring.get(current)
            if bucket is None:
                bucket = self._ring[current] = [
                    0, 0, [0] * (len(self.bounds) + 1)
                ]
            bucket[0] += 1
            if not ok:
                bucket[1] += 1
            index = 0
            while index < len(self.bounds) and latency_ms > self.bounds[index]:
                index += 1
            bucket[2][index] += 1

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """The window folded into a health verdict: availability, p99,
        both budgets, and which (if any) are breached.  An empty window
        is healthy — no traffic is not an outage."""
        current = self._bucket_number()
        with self._lock:
            self._evict(current)
            requests = sum(bucket[0] for bucket in self._ring.values())
            errors = sum(bucket[1] for bucket in self._ring.values())
            counts = [0] * (len(self.bounds) + 1)
            for bucket in self._ring.values():
                for index, value in enumerate(bucket[2]):
                    counts[index] += value
        availability = 1.0 if requests == 0 else (requests - errors) / requests
        p99 = self._quantile(counts, requests, 0.99)
        breached = []
        if availability < self.availability_target:
            breached.append("availability")
        if p99 is not None and p99 > self.p99_budget_ms:
            breached.append("latency_p99")
        return {
            "window_s": self.window_s,
            "requests": requests,
            "errors": errors,
            "availability": round(availability, 6),
            "availability_target": self.availability_target,
            "p99_ms": None if p99 is None else round(p99, 4),
            "p99_budget_ms": self.p99_budget_ms,
            "breached": breached,
            "healthy": not breached,
        }

    @property
    def healthy(self) -> bool:
        return self.state()["healthy"]

    def _quantile(
        self, counts: list[int], total: int, q: float
    ) -> float | None:
        """Conservative quantile over the folded bucket counts: the
        upper bound of the crossing bucket (overflow reports the top
        bound — the budget is already blown at that point)."""
        if total == 0:
            return None
        target = q * total
        cumulative = 0
        for index, count in enumerate(counts):
            cumulative += count
            if cumulative >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]  # overflow bucket
        return self.bounds[-1]  # pragma: no cover - rounding guard
