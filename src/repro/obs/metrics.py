"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the single store behind all runtime metrics.  Identity
is ``(name, labels)``; metrics are created on first touch and accumulate
for the registry's lifetime (reset explicitly).  Two export formats:

* :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition (``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  histogram series with ``le`` labels);
* :meth:`MetricsRegistry.to_jsonl` / :meth:`write_jsonl` — one JSON
  object per metric, for offline diffing and dashboards.

Histograms use fixed bucket bounds chosen at creation, so merging two
registries (``Warehouse`` merges its maintainers') is exact, and
quantiles (p50/p95/p99) are derived by linear interpolation within the
bucket that crosses the target rank — the standard Prometheus
``histogram_quantile`` estimate, tightened by the exact observed
minimum and maximum.

A *counter group* is a registry-owned :class:`collections.Counter`
exported as one labeled metric family (``name{label_key="entry"}``).
It exists so hot paths (:class:`~repro.perf.PerfStats`) can keep doing
plain ``Counter`` arithmetic while the exporter still sees every value:
the group *is* the store, not a copy.

**Thread safety.**  The serving layer observes histograms and bumps
counters from concurrent reader threads while ``/metrics`` scrapes
snapshot and merge registries, so every individual metric guards its
mutable state with a lock and exports through atomic state snapshots;
the registry itself locks metric creation.  The one deliberate
exception is counter *groups*: their zero-copy contract (plain
``Counter`` arithmetic on the hot path) rules out per-increment
locking, so they stay single-writer and exporters copy them with a
bounded retry against dict-resize races.  Locks never cross the worker
pipe — pickling drops and recreates them.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from collections import Counter
from typing import Iterator

#: Default bucket bounds (upper-inclusive) for per-transaction wall time.
LATENCY_MS_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 10_000.0,
)

#: Bucket bounds for serving-layer read latency: finer sub-millisecond
#: resolution at the low end (snapshot reads are dict copies, far
#: cheaper than maintenance transactions) with enough headroom to see a
#: reader stalling behind a writer.
READ_LATENCY_MS_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, 250.0, 1_000.0,
)

#: Default bucket bounds for per-transaction delta sizes (rows).
DELTA_ROWS_BUCKETS = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 4_096, 16_384, 65_536,
)

#: Default bucket bounds for maintenance throughput (delta rows / second).
ROWS_PER_SEC_BUCKETS = (
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
    100_000, 250_000, 500_000, 1_000_000,
)

#: Bucket bounds for the cost planner's q-error (estimate-vs-actual
#: cardinality ratio, always >= 1).  The first bucket is the perfect
#: estimate; the re-plan threshold defaults into the 4.0 bucket.
QERROR_BUCKETS = (
    1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _sanitize_name(name: str) -> str:
    out = [
        c if c.isascii() and (c.isalnum() or c in "_:") else "_" for c in name
    ]
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out) or "_"


def _render_labels(labels: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    inner = ",".join(f'{_sanitize_name(k)}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _copy_counter(group: Counter) -> Counter:
    """Copy a live (possibly concurrently-mutated) counter group.  The
    group's single writer may add a key mid-iteration; retry the bounded
    handful of times a resize can realistically interleave."""
    for _ in range(8):
        try:
            return Counter(group)
        except RuntimeError:  # pragma: no cover - timing-dependent
            continue
    return Counter(dict(group.items()))  # pragma: no cover - last resort


class _LockedStateMixin:
    """Pickle support for slotted metrics carrying a ``_lock``: the lock
    is dropped on the way out (registries cross the sharded backend's
    worker pipes) and recreated on the way in."""

    __slots__ = ()

    def __getstate__(self):
        with self._lock:
            return {
                slot: getattr(self, slot)
                for slot in self.__slots__
                if slot != "_lock"
            }

    def __setstate__(self, state):
        for key, value in state.items():
            setattr(self, key, value)
        self._lock = threading.Lock()


class CounterMetric(_LockedStateMixin):
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: _LabelKey):
        self.name = name
        self.labels = labels
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge(_LockedStateMixin):
    """A point-in-time value (set, not accumulated; thread-safe)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: _LabelKey):
        self.name = name
        self.labels = labels
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Histogram(_LockedStateMixin):
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``bounds`` are upper-inclusive bucket edges; one overflow bucket
    (``+Inf``) is implicit.  Quantiles interpolate linearly inside the
    crossing bucket, clamped to the observed ``[min, max]`` so a
    single-value histogram reports that value at every percentile.

    Thread-safe: ``observe`` and ``merge`` mutate under a lock, and
    every read path (quantiles, summaries, exports) derives from one
    atomic state snapshot, so a scrape racing an observe never sees a
    bucket-count/total tear.
    """

    __slots__ = (
        "name", "labels", "bounds", "bucket_counts", "count", "total",
        "minimum", "maximum", "_lock",
    )

    def __init__(self, name: str, labels: _LabelKey, bounds: tuple[float, ...]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        bucket = bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[bucket] += 1
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def _state(self) -> tuple[list[int], int, float, float | None, float | None]:
        """Atomic (bucket_counts, count, total, min, max) snapshot."""
        with self._lock:
            return (
                list(self.bucket_counts),
                self.count,
                self.total,
                self.minimum,
                self.maximum,
            )

    def _quantile_from(
        self,
        counts: list[int],
        count: int,
        minimum: float | None,
        maximum: float | None,
        q: float,
    ) -> float | None:
        if count == 0:
            return None
        target = q * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            lo = self.bounds[index - 1] if index > 0 else 0.0
            hi = self.bounds[index] if index < len(self.bounds) else maximum
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                fraction = (target - previous) / bucket_count
                estimate = lo + (hi - lo) * fraction
                return min(max(estimate, minimum), maximum)
        return maximum  # pragma: no cover - rounding guard

    def quantile(self, q: float) -> float | None:
        """The estimated ``q``-quantile (``0 < q <= 1``); None when empty."""
        counts, count, _, minimum, maximum = self._state()
        return self._quantile_from(counts, count, minimum, maximum, q)

    def summary(self) -> dict:
        """count/sum plus the derived p50/p95/p99 (and exact min/max)."""
        counts, count, total, minimum, maximum = self._state()

        def quantile(q: float) -> float | None:
            return _round_or_none(
                self._quantile_from(counts, count, minimum, maximum, q)
            )

        return {
            "count": count,
            "sum": round(total, 6),
            "min": minimum,
            "max": maximum,
            "p50": quantile(0.50),
            "p95": quantile(0.95),
            "p99": quantile(0.99),
        }

    def export(self) -> dict:
        """Summary plus per-bucket counts, from one atomic snapshot."""
        counts, count, total, minimum, maximum = self._state()

        def quantile(q: float) -> float | None:
            return _round_or_none(
                self._quantile_from(counts, count, minimum, maximum, q)
            )

        return {
            "buckets": {
                _format_value(bound): bucket_count
                for bound, bucket_count in zip(self.bounds, counts)
            },
            "overflow": counts[-1],
            "count": count,
            "sum": round(total, 6),
            "min": minimum,
            "max": maximum,
            "p50": quantile(0.50),
            "p95": quantile(0.95),
            "p99": quantile(0.99),
        }

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        # Snapshot the source first (its own lock), then fold under
        # ours: no nested lock acquisition, so merge direction can never
        # deadlock against a concurrent opposite-direction merge.
        counts, count, total, minimum, maximum = other._state()
        with self._lock:
            for index, bucket_count in enumerate(counts):
                self.bucket_counts[index] += bucket_count
            self.count += count
            self.total += total
            if minimum is not None:
                if self.minimum is None or minimum < self.minimum:
                    self.minimum = minimum
            if maximum is not None:
                if self.maximum is None or maximum > self.maximum:
                    self.maximum = maximum


def _round_or_none(value: float | None, digits: int = 4) -> float | None:
    return None if value is None else round(value, digits)


class MetricsRegistry(_LockedStateMixin):
    """All metrics of one component, keyed by ``(name, labels)``."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_groups", "_lock")

    def __init__(self):
        self._counters: dict[tuple[str, _LabelKey], CounterMetric] = {}
        self._gauges: dict[tuple[str, _LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}
        self._groups: dict[tuple[str, str], Counter] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Creation / lookup.
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: str) -> CounterMetric:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.get(key)
                if metric is None:
                    metric = self._counters[key] = CounterMetric(name, key[1])
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.get(key)
                if metric is None:
                    metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_MS_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.get(key)
                if metric is None:
                    metric = self._histograms[key] = Histogram(
                        name, key[1], buckets
                    )
        return metric

    def counter_group(self, name: str, label_key: str) -> Counter:
        """A registry-owned :class:`collections.Counter` exported as the
        labeled counter family ``name{label_key="<entry>"}``.  The
        returned object IS the live store — callers mutate it directly
        (the zero-copy hot path behind :class:`~repro.perf.PerfStats`),
        which also means groups are single-writer by contract: the
        registry lock covers creation, not mutation.
        """
        key = (name, label_key)
        group = self._groups.get(key)
        if group is None:
            with self._lock:
                group = self._groups.get(key)
                if group is None:
                    group = self._groups[key] = Counter()
        return group

    def _tables(self) -> tuple[list, list, list, list]:
        """Stable (groups, counters, gauges, histograms) item lists —
        the iteration-safe view every exporter and merge works from."""
        with self._lock:
            return (
                list(self._groups.items()),
                list(self._counters.items()),
                list(self._gauges.items()),
                list(self._histograms.items()),
            )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s metrics into this registry (sums counts and
        histograms; gauges add, matching their use as occupancy levels)."""
        groups, counters, gauges, histograms = other._tables()
        for (name, label_key), group in groups:
            self.counter_group(name, label_key).update(_copy_counter(group))
        for (name, labels), metric in counters:
            self.counter(name, **dict(labels)).inc(metric.value)
        for (name, labels), metric in gauges:
            self.gauge(name, **dict(labels)).inc(metric.value)
        for (name, labels), metric in histograms:
            self.histogram(name, metric.bounds, **dict(labels)).merge(metric)

    def reset(self) -> None:
        """Zero every metric (group Counters stay bound to their callers)."""
        with self._lock:
            for group in self._groups.values():
                group.clear()
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """One JSON-serializable record per metric, deterministic order."""
        groups, counters, gauges, histograms = self._tables()
        records: list[dict] = []
        for (name, label_key), group in sorted(groups):
            for entry, value in sorted(_copy_counter(group).items()):
                records.append(
                    {
                        "type": "counter",
                        "name": name,
                        "labels": {label_key: entry},
                        "value": value,
                    }
                )
        for (name, labels), metric in sorted(counters):
            records.append(
                {
                    "type": "counter",
                    "name": name,
                    "labels": dict(labels),
                    "value": metric.value,
                }
            )
        for (name, labels), metric in sorted(gauges):
            records.append(
                {
                    "type": "gauge",
                    "name": name,
                    "labels": dict(labels),
                    "value": metric.value,
                }
            )
        for (name, labels), metric in sorted(histograms):
            records.append(
                {
                    "type": "histogram",
                    "name": name,
                    "labels": dict(labels),
                    **metric.export(),
                }
            )
        return records

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in self.snapshot()
        )

    def write_jsonl(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl() + "\n")

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        return "\n".join(self._prometheus_lines()) + "\n"

    def _prometheus_lines(self) -> Iterator[str]:
        families: dict[str, tuple[str, list[str]]] = {}
        groups, counters, gauges, histograms = self._tables()

        def family(name: str, kind: str) -> list[str]:
            safe = _sanitize_name(name)
            entry = families.get(safe)
            if entry is None:
                entry = families[safe] = (kind, [])
            return entry[1]

        for (name, label_key), group in sorted(groups):
            lines = family(name, "counter")
            for entry, value in sorted(_copy_counter(group).items()):
                labels = _render_labels(((label_key, entry),))
                lines.append(f"{_sanitize_name(name)}{labels} {_format_value(value)}")
        for (name, labels), metric in sorted(counters):
            family(name, "counter").append(
                f"{_sanitize_name(name)}{_render_labels(metric.labels)} "
                f"{_format_value(metric.value)}"
            )
        for (name, labels), metric in sorted(gauges):
            family(name, "gauge").append(
                f"{_sanitize_name(name)}{_render_labels(metric.labels)} "
                f"{_format_value(metric.value)}"
            )
        for (name, labels), metric in sorted(histograms):
            lines = family(name, "histogram")
            safe = _sanitize_name(name)
            counts, count, total, _minimum, _maximum = metric._state()
            cumulative = 0
            for bound, bucket_count in zip(metric.bounds, counts):
                cumulative += bucket_count
                le = _render_labels(metric.labels, (("le", _format_value(bound)),))
                lines.append(f"{safe}_bucket{le} {cumulative}")
            le = _render_labels(metric.labels, (("le", "+Inf"),))
            lines.append(f"{safe}_bucket{le} {count}")
            lines.append(
                f"{safe}_sum{_render_labels(metric.labels)} "
                f"{_format_value(round(total, 6))}"
            )
            lines.append(
                f"{safe}_count{_render_labels(metric.labels)} {count}"
            )
        for safe, (kind, lines) in sorted(families.items()):
            yield f"# TYPE {safe} {kind}"
            yield from lines
