"""Structured event log: leveled, trace-correlated operational events.

Where metrics aggregate and traces profile, the event log *narrates*:
one timestamped record per operationally interesting moment — a
transaction beginning, committing, or rolling back; the planner
re-planning past its q-error threshold; a checkpoint being written or
restored; a fault firing; the apply queue shedding load.  Events carry
a ``ctx`` (the ``traceparent`` of the span active when they were
emitted, see :mod:`repro.obs.trace`), so a rollback event joins the
exact request/batch/transaction tree that produced it.

The log is a bounded ring (old events fall off) guarded by a lock —
serving handler threads, the apply-queue worker, and the maintainer all
emit into one :class:`EventLog`.  Export is JSONL (``schema`` stamped,
one event per line) via :meth:`EventLog.write_jsonl` /
:func:`read_events_jsonl`, the ``repro events`` CLI, and the serving
layer's ``/events`` endpoint.
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter, deque
from typing import Callable, Iterable

#: Version stamped on every exported event record.
EVENT_SCHEMA_VERSION = 1

#: Severity levels, lowest to highest.
LEVELS = ("debug", "info", "warn", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}


class Event:
    """One structured log record."""

    __slots__ = ("seq", "ts", "level", "name", "ctx", "fields")

    def __init__(
        self,
        seq: int,
        ts: float,
        level: str,
        name: str,
        ctx: str | None,
        fields: dict,
    ):
        self.seq = seq
        self.ts = ts
        self.level = level
        self.name = name
        self.ctx = ctx
        self.fields = fields

    def to_dict(self) -> dict:
        return {
            "schema": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "ts": round(self.ts, 6),
            "level": self.level,
            "name": self.name,
            "ctx": self.ctx,
            **self.fields,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Event":
        fields = {
            key: value
            for key, value in record.items()
            if key not in ("schema", "seq", "ts", "level", "name", "ctx")
        }
        return cls(
            record["seq"],
            record["ts"],
            record["level"],
            record["name"],
            record.get("ctx"),
            fields,
        )

    def render(self) -> str:
        parts = [f"{key}={value}" for key, value in self.fields.items()]
        if self.ctx:
            parts.append(f"ctx={self.ctx}")
        suffix = ("  " + " ".join(parts)) if parts else ""
        return f"[{self.seq:>6}] {self.level.upper():<5} {self.name}{suffix}"

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Event({self.seq}, {self.level!r}, {self.name!r})"


class EventLog:
    """Bounded, thread-safe ring of :class:`Event` records.

    ``capacity`` bounds memory (the ring keeps the newest events);
    ``min_level`` drops emissions below a severity floor before they
    cost anything.  Per-level totals survive ring eviction so operators
    can see "N errors ever" even after the records themselves rotated
    out.
    """

    def __init__(
        self,
        capacity: int = 2048,
        min_level: str = "debug",
        clock: Callable[[], float] = time.time,
    ):
        if min_level not in _LEVEL_RANK:
            raise ValueError(f"unknown level {min_level!r}; use one of {LEVELS}")
        self.capacity = capacity
        self.min_level = min_level
        self._clock = clock
        self._seq = 0
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._totals: Counter = Counter()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Emission.
    # ------------------------------------------------------------------

    def emit(
        self, level: str, name: str, ctx: str | None = None, **fields
    ) -> Event | None:
        """Record one event; returns None when below the level floor.
        ``ctx`` is the ``traceparent`` of the related span, when one is
        active (pass ``trace.context()`` or a propagated context)."""
        rank = _LEVEL_RANK.get(level)
        if rank is None:
            raise ValueError(f"unknown level {level!r}; use one of {LEVELS}")
        if rank < _LEVEL_RANK[self.min_level]:
            return None
        with self._lock:
            event = Event(self._seq, self._clock(), level, name, ctx, fields)
            self._seq += 1
            self._ring.append(event)
            self._totals[level] += 1
        return event

    def debug(self, name: str, ctx: str | None = None, **fields) -> Event | None:
        return self.emit("debug", name, ctx, **fields)

    def info(self, name: str, ctx: str | None = None, **fields) -> Event | None:
        return self.emit("info", name, ctx, **fields)

    def warn(self, name: str, ctx: str | None = None, **fields) -> Event | None:
        return self.emit("warn", name, ctx, **fields)

    def error(self, name: str, ctx: str | None = None, **fields) -> Event | None:
        return self.emit("error", name, ctx, **fields)

    # ------------------------------------------------------------------
    # Inspection / export.
    # ------------------------------------------------------------------

    def events(
        self,
        level: str | None = None,
        name: str | None = None,
        limit: int | None = None,
    ) -> list[Event]:
        """Newest-last view of the ring, optionally filtered to events
        at-or-above ``level`` and/or matching a ``name`` prefix, capped
        to the last ``limit``."""
        floor = _LEVEL_RANK[level] if level is not None else 0
        with self._lock:
            selected = [
                event
                for event in self._ring
                if _LEVEL_RANK[event.level] >= floor
                and (name is None or event.name.startswith(name))
            ]
        if limit is not None:
            selected = selected[-limit:]
        return selected

    @property
    def totals(self) -> dict[str, int]:
        """Per-level emission totals since creation (eviction-proof)."""
        with self._lock:
            return dict(self._totals)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def to_dicts(
        self, level: str | None = None, limit: int | None = None
    ) -> list[dict]:
        return [event.to_dict() for event in self.events(level=level, limit=limit)]

    def to_jsonl(self, level: str | None = None) -> str:
        return "\n".join(
            json.dumps(record, sort_keys=True)
            for record in self.to_dicts(level=level)
        )

    def write_jsonl(self, path, level: str | None = None) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl(level=level) + "\n")

    def render(self, level: str | None = None, limit: int | None = 40) -> str:
        return "\n".join(
            event.render() for event in self.events(level=level, limit=limit)
        )


def read_events_jsonl(path) -> list[Event]:
    """Rebuild events from a JSONL export (inverse of
    :meth:`EventLog.write_jsonl`)."""
    events: list[Event] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            events.append(Event.from_dict(json.loads(line)))
    return events


def correlate(events: Iterable[Event]) -> dict[str, list[Event]]:
    """Group events by the 32-hex trace id embedded in their ``ctx``
    (events with no context group under ``""``)."""
    grouped: dict[str, list[Event]] = {}
    for event in events:
        key = ""
        if event.ctx:
            parts = event.ctx.split("-")
            if len(parts) == 4:
                key = parts[1]
        grouped.setdefault(key, []).append(event)
    return grouped
