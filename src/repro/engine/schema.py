"""Schemas: ordered, optionally qualified, typed attribute lists.

Attributes carry an optional *qualifier* (the base table or view they come
from).  Joined relations concatenate qualified schemas, so ``sale.price``
and ``product.id`` coexist without clashes; unqualified lookup is allowed
whenever it is unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.engine.types import AttributeType


class SchemaError(Exception):
    """Raised for unknown, ambiguous, or duplicate attribute references."""


@dataclass(frozen=True)
class Attribute:
    """A named, typed column, optionally qualified by its source relation."""

    name: str
    atype: AttributeType
    qualifier: str | None = None
    size_bytes: int | None = None

    @property
    def qualified_name(self) -> str:
        if self.qualifier is None:
            return self.name
        return f"{self.qualifier}.{self.name}"

    @property
    def width_bytes(self) -> int:
        """Field width under the storage model (defaults to 4 bytes)."""
        if self.size_bytes is not None:
            return self.size_bytes
        return self.atype.default_size_bytes

    def with_qualifier(self, qualifier: str | None) -> "Attribute":
        return Attribute(self.name, self.atype, qualifier, self.size_bytes)

    def renamed(self, name: str) -> "Attribute":
        return Attribute(name, self.atype, self.qualifier, self.size_bytes)

    def matches(self, name: str, qualifier: str | None = None) -> bool:
        """Whether this attribute answers to ``name`` under ``qualifier``.

        A ``None`` qualifier matches any attribute with the right name; a
        concrete qualifier must match exactly.
        """
        if self.name != name:
            return False
        return qualifier is None or self.qualifier == qualifier

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.qualified_name


def _fast_coercer(atype: AttributeType):
    """A per-type coercer with an exact-type fast path.

    Row validation runs for every delta row of every transaction;
    dispatching through the enum costs more than the check itself.  The
    exact ``type() is`` tests preserve :meth:`AttributeType.coerce`
    semantics precisely — ``bool`` is not ``int`` under ``type()``, so
    INT still rejects True, and anything off the fast path (int
    subclasses, other Reals, invalid values) falls through to the slow
    coercer unchanged.
    """
    slow = atype.coerce
    if atype is AttributeType.INT:
        def coerce(value, _slow=slow):
            return value if type(value) is int else _slow(value)
    elif atype is AttributeType.FLOAT:
        def coerce(value, _slow=slow):
            kind = type(value)
            if kind is float:
                return value
            if kind is int:
                return float(value)
            return _slow(value)
    elif atype is AttributeType.STRING:
        def coerce(value, _slow=slow):
            return value if type(value) is str else _slow(value)
    else:
        def coerce(value, _slow=slow):
            return value if type(value) is bool else _slow(value)
    return coerce


class Schema:
    """An immutable ordered collection of attributes with fast lookup."""

    __slots__ = (
        "_attributes",
        "_by_qualified",
        "_hash",
        "_coercers",
        "_checker",
    )

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        by_qualified: dict[str, int] = {}
        for index, attribute in enumerate(attrs):
            key = attribute.qualified_name
            if key in by_qualified:
                raise SchemaError(f"duplicate attribute {key!r} in schema")
            by_qualified[key] = index
        self._attributes = attrs
        self._by_qualified = by_qualified
        self._hash: int | None = None
        self._coercers: tuple | None = None
        self._checker = None

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, index: int) -> Attribute:
        return self._attributes[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        # Schemas key the compile caches and plan memos, so the hash is
        # computed once and memoized (attribute tuples are immutable).
        cached = self._hash
        if cached is None:
            cached = self._hash = hash(self._attributes)
        return cached

    def __reduce__(self):
        # Rebuild from the attribute tuple alone: the lazy coercer cache
        # holds closures, which must not cross worker pickle pipes.
        return (Schema, (self._attributes,))

    def __repr__(self) -> str:  # pragma: no cover - display helper
        names = ", ".join(a.qualified_name for a in self._attributes)
        return f"Schema({names})"

    def index_of(self, name: str, qualifier: str | None = None) -> int:
        """Resolve an attribute reference to its position.

        ``name`` may be a bare name or a dotted ``qualifier.name``; an
        explicit ``qualifier`` argument takes precedence over a dotted one.
        Bare names must be unambiguous.
        """
        if qualifier is None and "." in name:
            qualifier, __, name = name.partition(".")
        if qualifier is not None:
            index = self._by_qualified.get(f"{qualifier}.{name}")
            if index is None:
                raise SchemaError(f"no attribute {qualifier}.{name} in {self!r}")
            return index
        matches = [
            i for i, a in enumerate(self._attributes) if a.name == name
        ]
        if not matches:
            raise SchemaError(f"no attribute {name!r} in {self!r}")
        if len(matches) > 1:
            raise SchemaError(f"ambiguous attribute {name!r} in {self!r}")
        return matches[0]

    def attribute(self, name: str, qualifier: str | None = None) -> Attribute:
        return self._attributes[self.index_of(name, qualifier)]

    def has(self, name: str, qualifier: str | None = None) -> bool:
        try:
            self.index_of(name, qualifier)
        except SchemaError:
            return False
        return True

    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def qualified_names(self) -> tuple[str, ...]:
        return tuple(a.qualified_name for a in self._attributes)

    def concat(self, other: "Schema") -> "Schema":
        return Schema(self._attributes + other.attributes)

    def project(self, references: Iterable[str]) -> "Schema":
        return Schema(
            self._attributes[self.index_of(ref)] for ref in references
        )

    def with_qualifier(self, qualifier: str | None) -> "Schema":
        return Schema(a.with_qualifier(qualifier) for a in self._attributes)

    def row_width_bytes(self) -> int:
        """Width of one tuple under the paper's storage model."""
        return sum(a.width_bytes for a in self._attributes)

    def validate_row(self, row: tuple) -> tuple:
        """Type-check and coerce a row against this schema."""
        coercers = self._coercers
        if coercers is None:
            coercers = self._coercers = tuple(
                _fast_coercer(a.atype) for a in self._attributes
            )
        if len(row) != len(coercers):
            raise SchemaError(
                f"row arity {len(row)} does not match schema arity "
                f"{len(self._attributes)}"
            )
        return tuple(
            coerce(value) for coerce, value in zip(coercers, row)
        )

    def _build_checker(self):
        """Compile an exact-type batch predicate for this schema.

        The predicate answers "is this row already in canonical form?"
        — right arity and every value the exact native type of its
        column.  Canonical rows need no coercion and no copying, so a
        batch that passes is validated wholesale; any row off the fast
        path (an int in a FLOAT column, a wrong type, a bad arity)
        sends the whole batch through :meth:`validate_row`, which keeps
        coercion results and error messages byte-identical."""
        type_names = {
            AttributeType.INT: "int",
            AttributeType.FLOAT: "float",
            AttributeType.STRING: "str",
            AttributeType.BOOL: "bool",
        }
        tests = [f"len(r) == {len(self._attributes)}"]
        tests.extend(
            f"type(r[{i}]) is {type_names[a.atype]}"
            for i, a in enumerate(self._attributes)
        )
        checker = eval(  # noqa: S307 - generated from the schema alone
            "lambda r: " + " and ".join(tests),
            {"len": len, "type": type},
        )
        self._checker = checker
        return checker

    def validate_rows(self, rows) -> list[tuple]:
        """Type-check a batch of rows against this schema.

        Rows already in canonical form (the overwhelmingly common case
        for machine-generated deltas) pass one compiled predicate each
        and are returned as-is; a batch with any non-canonical row
        falls back to per-row :meth:`validate_row` so coercions apply
        and the first offender raises its usual :class:`SchemaError`."""
        checker = self._checker
        if checker is None:
            checker = self._build_checker()
        if all(map(checker, rows)):
            return rows if type(rows) is list else list(rows)
        return [self.validate_row(row) for row in rows]
