"""Persistent hash indexes over bags of rows.

A :class:`RowIndex` maps the values of an arbitrary column subset to the
multiset of rows carrying them.  It is maintained *incrementally* — one
dictionary update per inserted or deleted row — rather than rebuilt per
probe, which is what turns the maintenance loop's semijoin reductions
and group lookups from O(|relation|) scans into O(|delta|) probes.

Single-column keys are stored unwrapped (the bare value, not a 1-tuple):
they hash faster and match how probe sets are naturally written.  The
same convention is shared by the batch operator kernels through
:func:`make_key_extractor`, so an index built here can be handed
directly to ``equijoin``/``semijoin``/``antijoin``.
"""

from __future__ import annotations

from collections import Counter
from operator import itemgetter
from typing import Callable, Iterable, Iterator, KeysView


def make_key_extractor(positions: tuple[int, ...]) -> Callable[[tuple], object]:
    """A precompiled key extractor over row positions.

    One position yields the bare value; several yield a tuple.  Built on
    :func:`operator.itemgetter`, which runs the extraction in C.
    """
    if len(positions) == 1:
        return itemgetter(positions[0])
    return itemgetter(*positions)


def make_tuple_extractor(positions: tuple[int, ...]) -> Callable[[tuple], tuple]:
    """Like :func:`make_key_extractor` but always producing tuples (for
    projection kernels, whose outputs are rows, not keys).  Zero positions
    yield the empty tuple: the single-group GROUP BY of an aggregate-only
    view."""
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return itemgetter(*positions)


class RowIndexError(Exception):
    """Raised on inconsistent index maintenance (e.g. removing an unindexed row)."""


class RowIndex:
    """A multiset hash index from key values to rows.

    Rows are kept with multiplicities (bag semantics, matching
    :class:`~repro.engine.relation.Relation`); a bucket disappears when
    its last row is removed, so :meth:`keys` is always exactly the set of
    key values present in the indexed bag.
    """

    __slots__ = ("positions", "extract", "_buckets")

    def __init__(self, positions: Iterable[int], rows: Iterable[tuple] = ()):
        self.positions = tuple(positions)
        if not self.positions:
            raise RowIndexError("an index needs at least one key column")
        self.extract = make_key_extractor(self.positions)
        self._buckets: dict[object, Counter] = {}
        self.add_all(rows)

    # ------------------------------------------------------------------
    # Maintenance (incremental; never rebuilt per probe).
    # ------------------------------------------------------------------

    def add(self, row: tuple) -> None:
        key = self.extract(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = Counter()
        bucket[row] += 1

    def add_all(self, rows: Iterable[tuple]) -> None:
        for row in rows:
            self.add(row)

    def remove(self, row: tuple) -> None:
        key = self.extract(row)
        bucket = self._buckets.get(key)
        if bucket is None or bucket[row] <= 0:
            raise RowIndexError(f"cannot unindex absent row {row!r}")
        bucket[row] -= 1
        if bucket[row] == 0:
            del bucket[row]
            if not bucket:
                del self._buckets[key]

    def remove_all(self, rows: Iterable[tuple]) -> None:
        for row in rows:
            self.remove(row)

    def clear(self) -> None:
        self._buckets.clear()

    # ------------------------------------------------------------------
    # Probing.
    # ------------------------------------------------------------------

    def keys(self) -> KeysView:
        """The distinct key values currently present (a live view; O(1)
        membership — this is what join reductions probe)."""
        return self._buckets.keys()

    def __contains__(self, key: object) -> bool:
        return key in self._buckets

    def rows_for(self, key: object) -> Iterator[tuple]:
        """Rows carrying ``key``, with multiplicity."""
        bucket = self._buckets.get(key)
        if bucket is None:
            return iter(())
        return bucket.elements()

    def rows_matching(self, keys: Iterable[object]) -> list[tuple]:
        """Rows whose key is in ``keys``, with multiplicity."""
        rows: list[tuple] = []
        for key in keys:
            bucket = self._buckets.get(key)
            if bucket:
                rows.extend(bucket.elements())
        return rows

    def __len__(self) -> int:
        """Number of indexed rows (with multiplicity)."""
        return sum(sum(bucket.values()) for bucket in self._buckets.values())

    # ------------------------------------------------------------------
    # Statistics (the cost planner's free histograms).
    # ------------------------------------------------------------------

    def distinct_count(self) -> int:
        """Number of distinct key values present — O(1), maintained by
        the same per-row updates that keep the index itself fresh.  This
        is the ``V(R, a)`` every estimation formula in
        :mod:`repro.plan.cost` is built on."""
        return len(self._buckets)

    def key_histogram(self) -> Counter:
        """``{key value: row count (with multiplicity)}`` — the exact
        distinct-value histogram of the indexed column set, derived from
        bucket sizes with no extra bookkeeping."""
        return Counter(
            {key: sum(bucket.values()) for key, bucket in self._buckets.items()}
        )

    def stats(self) -> dict:
        """Summary statistics for cost estimation and ``explain``:
        row count, distinct keys, and the heaviest bucket (the skew
        indicator a uniform-distribution estimate is blind to)."""
        rows = len(self)
        distinct = len(self._buckets)
        max_bucket = (
            max(sum(bucket.values()) for bucket in self._buckets.values())
            if self._buckets
            else 0
        )
        return {
            "rows": rows,
            "distinct": distinct,
            "max_bucket_rows": max_bucket,
            "mean_bucket_rows": rows / distinct if distinct else 0.0,
        }

    def as_multiset(self) -> Counter:
        """All indexed rows with multiplicity, bucket structure erased.

        Equal to ``Counter(relation.rows)`` exactly when the index is
        consistent with its backing bag — the invariant the rollback
        machinery preserves and the fault-injection suite asserts."""
        total: Counter = Counter()
        for bucket in self._buckets.values():
            total.update(bucket)
        return total

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"RowIndex(positions={self.positions}, "
            f"{len(self._buckets)} keys)"
        )
