"""A small expression language over relation rows.

Expressions are immutable trees compiled against a :class:`Schema` into
plain Python closures, so predicates evaluated millions of times during
maintenance pay name resolution only once.  The language covers what GPSJ
selection conditions need: column references, literals, comparisons,
arithmetic, conjunction/disjunction/negation, and ``IN`` lists.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.engine.schema import Schema

RowPredicate = Callable[[tuple], object]


class ExpressionError(Exception):
    """Raised for malformed expressions."""


class Expression:
    """Base class for expression nodes."""

    def compile(self, schema: Schema) -> RowPredicate:
        """Return a closure evaluating this expression on rows of ``schema``."""
        raise NotImplementedError

    def columns(self) -> tuple["Column", ...]:
        """All column references in this expression, in tree order."""
        raise NotImplementedError

    def qualifiers(self) -> set[str]:
        """The set of table qualifiers referenced by this expression."""
        return {c.qualifier for c in self.columns() if c.qualifier is not None}

    def substitute(self, mapping: dict["Column", "Expression"]) -> "Expression":
        """Return a copy with column references rewritten via ``mapping``."""
        raise NotImplementedError

    def to_sql(self) -> str:
        """Render the expression as SQL text."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.to_sql()


@dataclass(frozen=True)
class Column(Expression):
    """A reference to an attribute, optionally qualified by table name."""

    name: str
    qualifier: str | None = None

    @property
    def qualified_name(self) -> str:
        if self.qualifier is None:
            return self.name
        return f"{self.qualifier}.{self.name}"

    @classmethod
    def parse(cls, reference: str) -> "Column":
        """Build a column from ``name`` or ``table.name`` text."""
        if "." in reference:
            qualifier, __, name = reference.partition(".")
            return cls(name, qualifier)
        return cls(reference)

    def compile(self, schema: Schema) -> RowPredicate:
        index = schema.index_of(self.name, self.qualifier)
        return lambda row: row[index]

    def columns(self) -> tuple["Column", ...]:
        return (self,)

    def substitute(self, mapping: dict["Column", Expression]) -> Expression:
        return mapping.get(self, self)

    def to_sql(self) -> str:
        return self.qualified_name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: object

    def compile(self, schema: Schema) -> RowPredicate:
        value = self.value
        return lambda row: value

    def columns(self) -> tuple[Column, ...]:
        return ()

    def substitute(self, mapping: dict[Column, Expression]) -> Expression:
        return self

    def to_sql(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return repr(self.value)


_COMPARISON_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC_OPS: dict[str, Callable[[object, object], object]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """``left OP right`` where OP is one of = <> != < <= > >=."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def compile(self, schema: Schema) -> RowPredicate:
        fn = _COMPARISON_OPS[self.op]
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: fn(left(row), right(row))

    def columns(self) -> tuple[Column, ...]:
        return self.left.columns() + self.right.columns()

    def substitute(self, mapping: dict[Column, Expression]) -> Expression:
        return Comparison(
            self.op,
            self.left.substitute(mapping),
            self.right.substitute(mapping),
        )

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op} {self.right.to_sql()}"


@dataclass(frozen=True)
class Arithmetic(Expression):
    """``left OP right`` where OP is one of + - * /."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC_OPS:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def compile(self, schema: Schema) -> RowPredicate:
        fn = _ARITHMETIC_OPS[self.op]
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: fn(left(row), right(row))

    def columns(self) -> tuple[Column, ...]:
        return self.left.columns() + self.right.columns()

    def substitute(self, mapping: dict[Column, Expression]) -> Expression:
        return Arithmetic(
            self.op,
            self.left.substitute(mapping),
            self.right.substitute(mapping),
        )

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class And(Expression):
    """Conjunction of one or more conditions."""

    conditions: tuple[Expression, ...]

    def __init__(self, *conditions: Expression):
        flattened: list[Expression] = []
        for condition in conditions:
            if isinstance(condition, And):
                flattened.extend(condition.conditions)
            else:
                flattened.append(condition)
        object.__setattr__(self, "conditions", tuple(flattened))

    def compile(self, schema: Schema) -> RowPredicate:
        compiled = [c.compile(schema) for c in self.conditions]
        return lambda row: all(fn(row) for fn in compiled)

    def columns(self) -> tuple[Column, ...]:
        return tuple(c for cond in self.conditions for c in cond.columns())

    def substitute(self, mapping: dict[Column, Expression]) -> Expression:
        return And(*(c.substitute(mapping) for c in self.conditions))

    def to_sql(self) -> str:
        if not self.conditions:
            return "TRUE"
        return " AND ".join(c.to_sql() for c in self.conditions)


@dataclass(frozen=True)
class Or(Expression):
    """Disjunction of one or more conditions."""

    conditions: tuple[Expression, ...]

    def __init__(self, *conditions: Expression):
        object.__setattr__(self, "conditions", tuple(conditions))

    def compile(self, schema: Schema) -> RowPredicate:
        compiled = [c.compile(schema) for c in self.conditions]
        return lambda row: any(fn(row) for fn in compiled)

    def columns(self) -> tuple[Column, ...]:
        return tuple(c for cond in self.conditions for c in cond.columns())

    def substitute(self, mapping: dict[Column, Expression]) -> Expression:
        return Or(*(c.substitute(mapping) for c in self.conditions))

    def to_sql(self) -> str:
        if not self.conditions:
            return "FALSE"
        return "(" + " OR ".join(c.to_sql() for c in self.conditions) + ")"


@dataclass(frozen=True)
class Not(Expression):
    """Negation."""

    condition: Expression

    def compile(self, schema: Schema) -> RowPredicate:
        inner = self.condition.compile(schema)
        return lambda row: not inner(row)

    def columns(self) -> tuple[Column, ...]:
        return self.condition.columns()

    def substitute(self, mapping: dict[Column, Expression]) -> Expression:
        return Not(self.condition.substitute(mapping))

    def to_sql(self) -> str:
        return f"NOT ({self.condition.to_sql()})"


@dataclass(frozen=True)
class InList(Expression):
    """``expr IN (v1, v2, ...)`` over literal values."""

    expr: Expression
    values: tuple[object, ...]

    def __init__(self, expr: Expression, values: Iterable[object]):
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "values", tuple(values))

    def compile(self, schema: Schema) -> RowPredicate:
        inner = self.expr.compile(schema)
        members = set(self.values)
        return lambda row: inner(row) in members

    def columns(self) -> tuple[Column, ...]:
        return self.expr.columns()

    def substitute(self, mapping: dict[Column, Expression]) -> Expression:
        return InList(self.expr.substitute(mapping), self.values)

    def to_sql(self) -> str:
        rendered = ", ".join(Literal(v).to_sql() for v in self.values)
        return f"{self.expr.to_sql()} IN ({rendered})"


TRUE = And()
"""The empty conjunction: always true."""


def conjuncts(expression: Expression | None) -> tuple[Expression, ...]:
    """Split an expression into its top-level conjuncts."""
    if expression is None:
        return ()
    if isinstance(expression, And):
        return expression.conditions
    return (expression,)


def conjoin(conditions: Iterable[Expression]) -> Expression:
    """Combine conditions into a single conjunction."""
    items = tuple(conditions)
    if len(items) == 1:
        return items[0]
    return And(*items)
