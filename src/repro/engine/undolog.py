"""Undo logging: the engine half of atomic transaction application.

Self-maintained detail data cannot be re-derived from the (sealed)
sources, so a transaction that fails halfway through maintenance must
leave ``{V} ∪ X`` exactly as it found it — partial application would be
silent, permanent corruption.  An :class:`UndoLog` collects inverse
operations (closures) as mutations happen; on failure they are replayed
in reverse (LIFO), restoring every participating relation, index, and
group map to its pre-transaction state.

Participants record into a *shared* log, so one rollback interleaves
the inverse operations of many objects in exactly the reverse of the
order the forward operations ran.  The log is operation-granular —
cost is proportional to the delta, never to the stored detail — which
keeps the always-on overhead inside the hot path's budget; the O(n)
work (index rebuilds, cache refills) is deferred to the rollback path,
which only runs on failure.
"""

from __future__ import annotations

from typing import Callable, Hashable


class RollbackError(Exception):
    """One or more inverse operations failed during a multi-log rollback.

    Raised by coordinators (:meth:`rollback_all`) that must keep rolling
    back sibling logs even after one of them fails: every log is given
    its chance, then the failures surface together.  ``failures`` holds
    the exceptions in the order they occurred.
    """

    def __init__(self, failures: list[BaseException]):
        self.failures = list(failures)
        summary = "; ".join(f"{type(e).__name__}: {e}" for e in self.failures)
        super().__init__(
            f"{len(self.failures)} rollback step(s) failed: {summary}"
        )


class UndoLog:
    """A LIFO log of inverse operations for one transaction scope.

    ``rows`` on :meth:`record` lets participants attribute a row count
    to each entry, so a rollback can report how many stored rows it
    restored (the ``rows_undone`` perf counter).

    ``redo`` on :meth:`record` lets a participant attach a *forward*
    description of the mutation being made undoable — e.g. the summary
    group key a transaction touched.  Redo records are the inverse log
    flipped around: after a successful transaction they name exactly
    what changed, so a snapshot layer can publish a copy-on-write patch
    for readers without diffing whole views.  They are discarded by
    :meth:`rollback` (the change never happened) and preserved by
    :meth:`commit` and :meth:`absorb`.
    """

    __slots__ = ("_entries", "_rows", "_redo")

    def __init__(self):
        self._entries: list[Callable[[], None]] = []
        self._rows = 0
        self._redo: list[Hashable] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def rows_recorded(self) -> int:
        """Total row mutations the logged entries would undo."""
        return self._rows

    @property
    def redo_records(self) -> tuple[Hashable, ...]:
        """Forward records attached via ``record(..., redo=...)``, in
        the order the forward operations ran."""
        return tuple(self._redo)

    def record(
        self,
        undo: Callable[[], None],
        rows: int = 0,
        redo: Hashable | None = None,
    ) -> None:
        """Append an inverse operation (undoing ``rows`` row mutations),
        optionally tagged with a forward ``redo`` record."""
        self._entries.append(undo)
        self._rows += rows
        if redo is not None:
            self._redo.append(redo)

    def note_redo(self, redo: Hashable, rows: int = 0) -> None:
        """Attach a forward record (and its row count) to an inverse
        operation recorded earlier.  Participants that batch many
        mutations behind one closure — e.g. the maintainer's per-group
        snapshots — still publish one redo record per logical change,
        keeping :attr:`redo_records` and ``rows_undone`` identical to
        the one-record-per-change discipline."""
        self._rows += rows
        self._redo.append(redo)

    def rollback(self) -> int:
        """Run every inverse operation in reverse order; return the number
        of row mutations undone.  The log is empty afterwards."""
        entries = self._entries
        rows = self._rows
        self._entries = []
        self._rows = 0
        self._redo = []
        while entries:
            entries.pop()()
        return rows

    def commit(self) -> None:
        """Discard the logged entries (the transaction is keeping them).
        Redo records survive: they describe the committed history."""
        self._entries.clear()
        self._rows = 0

    def absorb(self, other: "UndoLog") -> None:
        """Take over ``other``'s entries (appended after this log's own),
        leaving ``other`` empty.  Used by multi-participant coordinators
        that commit or roll back several scopes as one."""
        self._entries.extend(other._entries)
        self._rows += other._rows
        self._redo.extend(other._redo)
        other._entries = []
        other._rows = 0
        other._redo = []

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"UndoLog({len(self._entries)} entries, {self._rows} rows)"


def rollback_all(logs, perf_for=None) -> None:
    """Roll back every ``(participant, UndoLog)`` pair in ``logs`` —
    already in the desired (reverse) order — *continuing past failures*
    so one broken inverse never leaves sibling participants
    un-rolled-back.  ``perf_for(participant)`` (optional) returns the
    PerfStats to count ``rollbacks``/``rows_undone`` on.

    Raises :class:`RollbackError` carrying every failure once all logs
    have been attempted; returns silently when all rollbacks succeed.
    """
    failures: list[BaseException] = []
    for participant, log in logs:
        try:
            undone = log.rollback()
        except BaseException as error:  # noqa: BLE001 - keep unwinding
            failures.append(error)
            continue
        if perf_for is not None:
            perf = perf_for(participant)
            perf.count("rollbacks")
            perf.count("rows_undone", undone)
    if failures:
        raise RollbackError(failures)
