"""Undo logging: the engine half of atomic transaction application.

Self-maintained detail data cannot be re-derived from the (sealed)
sources, so a transaction that fails halfway through maintenance must
leave ``{V} ∪ X`` exactly as it found it — partial application would be
silent, permanent corruption.  An :class:`UndoLog` collects inverse
operations (closures) as mutations happen; on failure they are replayed
in reverse (LIFO), restoring every participating relation, index, and
group map to its pre-transaction state.

Participants record into a *shared* log, so one rollback interleaves
the inverse operations of many objects in exactly the reverse of the
order the forward operations ran.  The log is operation-granular —
cost is proportional to the delta, never to the stored detail — which
keeps the always-on overhead inside the hot path's budget; the O(n)
work (index rebuilds, cache refills) is deferred to the rollback path,
which only runs on failure.
"""

from __future__ import annotations

from typing import Callable


class UndoLog:
    """A LIFO log of inverse operations for one transaction scope.

    ``rows`` on :meth:`record` lets participants attribute a row count
    to each entry, so a rollback can report how many stored rows it
    restored (the ``rows_undone`` perf counter).
    """

    __slots__ = ("_entries", "_rows")

    def __init__(self):
        self._entries: list[Callable[[], None]] = []
        self._rows = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def rows_recorded(self) -> int:
        """Total row mutations the logged entries would undo."""
        return self._rows

    def record(self, undo: Callable[[], None], rows: int = 0) -> None:
        """Append an inverse operation (undoing ``rows`` row mutations)."""
        self._entries.append(undo)
        self._rows += rows

    def rollback(self) -> int:
        """Run every inverse operation in reverse order; return the number
        of row mutations undone.  The log is empty afterwards."""
        entries = self._entries
        rows = self._rows
        self._entries = []
        self._rows = 0
        while entries:
            entries.pop()()
        return rows

    def commit(self) -> None:
        """Discard the logged entries (the transaction is keeping them)."""
        self._entries.clear()
        self._rows = 0

    def absorb(self, other: "UndoLog") -> None:
        """Take over ``other``'s entries (appended after this log's own),
        leaving ``other`` empty.  Used by multi-participant coordinators
        that commit or roll back several scopes as one."""
        self._entries.extend(other._entries)
        self._rows += other._rows
        other._entries = []
        other._rows = 0

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"UndoLog({len(self._entries)} entries, {self._rows} rows)"
