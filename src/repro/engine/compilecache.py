"""Keyed caches for compiled row predicates and projection extractors.

``select()`` used to call ``Expression.compile(schema)`` and
``project()`` used to re-resolve attribute positions on *every*
invocation — wasted work for the maintenance loop and the plan
executor, which evaluate the same handful of (expression, schema)
shapes on every transaction.  Both the eager operator API and the
physical plan nodes now share these caches, so an expression is
compiled once per schema it meets.

Expressions and schemas are immutable and hashable (frozen dataclasses
and :class:`~repro.engine.schema.Schema`'s attribute-tuple hash), which
makes structural keys safe: two structurally equal conditions share one
compiled predicate.  A ``Literal`` holding an unhashable value falls
back to direct compilation.  The caches are capped and cleared
wholesale on overflow — property tests generate thousands of one-shot
expressions and must not accumulate them.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.engine.expressions import Expression
from repro.engine.rowindex import make_tuple_extractor
from repro.engine.schema import Schema

_MAX_ENTRIES = 4096

_predicates: dict[tuple, Callable[[tuple], bool]] = {}
_extractors: dict[tuple, tuple[Schema, Callable[[tuple], tuple]]] = {}
_hits = 0
_misses = 0


def compiled_predicate(
    condition: Expression, schema: Schema
) -> Callable[[tuple], bool]:
    """The compiled row predicate for ``condition`` over ``schema``."""
    global _hits, _misses
    try:
        key = (condition, schema)
        cached = _predicates.get(key)
    except TypeError:  # unhashable literal: compile without caching
        return condition.compile(schema)
    if cached is not None:
        _hits += 1
        return cached
    _misses += 1
    if len(_predicates) >= _MAX_ENTRIES:
        _predicates.clear()
    compiled = _predicates[key] = condition.compile(schema)
    return compiled


def projection_extractor(
    schema: Schema, references: Sequence[str]
) -> tuple[Schema, Callable[[tuple], tuple]]:
    """``(output schema, row extractor)`` for ``π_references`` over
    ``schema``, resolved once per (schema, references) pair."""
    global _hits, _misses
    key = (schema, tuple(references))
    cached = _extractors.get(key)
    if cached is not None:
        _hits += 1
        return cached
    _misses += 1
    if len(_extractors) >= _MAX_ENTRIES:
        _extractors.clear()
    indexes = tuple(schema.index_of(ref) for ref in references)
    out_schema = Schema(schema[i] for i in indexes)
    cached = _extractors[key] = (out_schema, make_tuple_extractor(indexes))
    return cached


def cache_stats() -> dict[str, int]:
    """Hit/miss counters plus current cache sizes (for tests/benchmarks)."""
    return {
        "hits": _hits,
        "misses": _misses,
        "predicates": len(_predicates),
        "extractors": len(_extractors),
    }


def clear_caches() -> None:
    global _hits, _misses
    _predicates.clear()
    _extractors.clear()
    _hits = 0
    _misses = 0
