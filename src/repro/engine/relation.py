"""Relations: a schema plus a bag of rows.

Rows are plain tuples; the relation is a *bag* (duplicates allowed) since
base tables and deltas are bags in the paper's model.  Deletion removes
one occurrence per requested row, which matches delta semantics.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator

from repro.engine.rowindex import RowIndex
from repro.engine.schema import Attribute, Schema
from repro.engine.types import AttributeType
from repro.engine.undolog import UndoLog


class RelationError(Exception):
    """Raised on invalid relation manipulation (e.g. deleting absent rows)."""


class Relation:
    """A mutable bag of typed rows.

    Relations can carry registered :class:`RowIndex` instances (see
    :meth:`index_on`); every mutation keeps them in step, so a probe
    never pays a rebuild.

    Inside a transaction scope (:meth:`begin_undo` / :meth:`end_undo`)
    every mutation records its inverse into the supplied
    :class:`~repro.engine.undolog.UndoLog`; rolling the log back
    restores the bag (and its registered indexes) to the state at
    ``begin_undo``.  Row order within the backing list may differ after
    a rollback — relations are bags, so order is not part of the state.
    """

    __slots__ = ("schema", "_rows", "_indexes", "_undo")

    def __init__(self, schema: Schema, rows: Iterable[tuple] = (), validate: bool = True):
        self.schema = schema
        if validate:
            self._rows = [schema.validate_row(tuple(row)) for row in rows]
        else:
            self._rows = [tuple(row) for row in rows]
        self._indexes: dict[tuple[int, ...], RowIndex] = {}
        self._undo: UndoLog | None = None

    @classmethod
    def from_columns(
        cls,
        names: Iterable[str],
        types: Iterable[AttributeType],
        rows: Iterable[tuple] = (),
        qualifier: str | None = None,
    ) -> "Relation":
        schema = Schema(
            Attribute(name, atype, qualifier)
            for name, atype in zip(names, types)
        )
        return cls(schema, rows)

    @property
    def rows(self) -> list[tuple]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def copy(self) -> "Relation":
        return Relation(self.schema, list(self._rows), validate=False)

    def insert(self, row: tuple) -> None:
        validated = self.schema.validate_row(tuple(row))
        self._rows.append(validated)
        for index in self._indexes.values():
            index.add(validated)
        if self._undo is not None:
            self._undo.record(lambda: self._unapply_insert(validated), rows=1)

    def insert_all(self, rows: Iterable[tuple]) -> None:
        for row in rows:
            self.insert(row)

    def delete(self, row: tuple) -> None:
        """Remove one occurrence of ``row``; raise if absent.

        Routed through :meth:`delete_all`'s multiset path, so callers
        alternating single deletions with batches never hit the quadratic
        repeated-``list.remove`` behavior.
        """
        target = self.schema.validate_row(tuple(row))
        try:
            self.delete_all((target,))
        except RelationError:
            raise RelationError(f"cannot delete absent row {target!r}") from None

    def delete_all(self, rows: Iterable[tuple]) -> None:
        """Remove one occurrence per row; raise if any is absent.

        Deleting many rows one-by-one via ``list.remove`` is quadratic, so
        this batches through a multiset: one pass over the bag regardless
        of how many rows the batch removes.
        """
        removed = Counter(self.schema.validate_row(tuple(row)) for row in rows)
        if not removed:
            return
        wanted = Counter(removed)
        kept: list[tuple] = []
        for row in self._rows:
            if wanted.get(row, 0) > 0:
                wanted[row] -= 1
            else:
                kept.append(row)
        missing = {row: n for row, n in wanted.items() if n > 0}
        if missing:
            raise RelationError(f"cannot delete absent rows {missing!r}")
        for index in self._indexes.values():
            index.remove_all(removed.elements())
        self._rows = kept
        if self._undo is not None:
            gone = list(removed.elements())
            self._undo.record(
                lambda: self._unapply_delete(gone), rows=len(gone)
            )

    def delete_where(self, predicate: Callable[[tuple], object]) -> list[tuple]:
        """Remove all rows satisfying ``predicate``; return them.

        A single pass partitions the bag, so the predicate runs exactly
        once per row.
        """
        removed: list[tuple] = []
        kept: list[tuple] = []
        for row in self._rows:
            if predicate(row):
                removed.append(row)
            else:
                kept.append(row)
        self._rows = kept
        if removed:
            for index in self._indexes.values():
                index.remove_all(removed)
            if self._undo is not None:
                gone = list(removed)
                self._undo.record(
                    lambda: self._unapply_delete(gone), rows=len(gone)
                )
        return removed

    # ------------------------------------------------------------------
    # Transaction scope (undo logging).
    # ------------------------------------------------------------------

    def begin_undo(self, log: UndoLog) -> None:
        """Enter a transaction scope: record every mutation's inverse
        into ``log`` until :meth:`end_undo`."""
        if self._undo is not None:
            raise RelationError("relation is already in a transaction scope")
        self._undo = log

    def end_undo(self) -> None:
        """Leave the transaction scope (the log's entries stay valid)."""
        self._undo = None

    def _unapply_insert(self, row: tuple) -> None:
        """Inverse of one :meth:`insert`: remove one occurrence again."""
        rows = self._rows
        for i in range(len(rows) - 1, -1, -1):
            if rows[i] == row:
                del rows[i]
                break
        else:  # pragma: no cover - indicates a corrupted undo log
            raise RelationError(f"undo cannot remove absent row {row!r}")
        for index in self._indexes.values():
            index.remove(row)

    def _unapply_delete(self, rows: list[tuple]) -> None:
        """Inverse of a batch deletion: put the removed rows back."""
        self._rows.extend(rows)
        for index in self._indexes.values():
            index.add_all(rows)

    # ------------------------------------------------------------------
    # Registered indexes.
    # ------------------------------------------------------------------

    def index_on(self, *references: str) -> RowIndex:
        """A :class:`RowIndex` on the given columns, registered so every
        subsequent mutation maintains it incrementally.

        Repeated calls with the same columns return the same index."""
        positions = tuple(self.schema.index_of(ref) for ref in references)
        index = self._indexes.get(positions)
        if index is None:
            index = self._indexes[positions] = RowIndex(positions, self._rows)
            if self._undo is not None:
                # An index born mid-transaction never saw the earlier
                # forward operations, so inverse entries recorded before
                # this point must not touch it: drop it on rollback (the
                # LIFO order runs this before those earlier inverses) and
                # let the next probe rebuild it lazily.
                self._undo.record(lambda: self._indexes.pop(positions, None))
        return index

    def as_multiset(self) -> Counter:
        return Counter(self._rows)

    def same_bag(self, other: "Relation") -> bool:
        """Bag equality, ignoring row order (schemas must have equal arity)."""
        if len(self.schema) != len(other.schema):
            return False
        return self.as_multiset() == other.as_multiset()

    def column(self, name: str, qualifier: str | None = None) -> list[object]:
        index = self.schema.index_of(name, qualifier)
        return [row[index] for row in self._rows]

    def size_bytes(self) -> int:
        """Size under the paper's tuples x fields x width model."""
        return len(self._rows) * self.schema.row_width_bytes()

    def sorted_rows(self) -> list[tuple]:
        return sorted(self._rows, key=_sort_key)

    def pretty(self, limit: int | None = 20) -> str:
        """Render as an aligned text table (for examples and benchmarks)."""
        headers = [a.qualified_name for a in self.schema]
        body = self.sorted_rows()
        truncated = False
        if limit is not None and len(body) > limit:
            body = body[:limit]
            truncated = True
        cells = [headers] + [[_fmt(v) for v in row] for row in body]
        widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
            for row in cells
        ]
        lines.insert(1, "  ".join("-" * width for width in widths))
        if truncated:
            lines.append(f"... ({len(self._rows)} rows total)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        names = ", ".join(a.qualified_name for a in self.schema)
        return f"Relation([{names}], {len(self._rows)} rows)"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _sort_key(row: tuple) -> tuple:
    return tuple((str(type(v)), v if not isinstance(v, bool) else int(v)) for v in row)
