"""Relations: a schema plus a bag of rows.

Rows are plain tuples; the relation is a *bag* (duplicates allowed) since
base tables and deltas are bags in the paper's model.  Deletion removes
one occurrence per requested row, which matches delta semantics.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator

from repro.engine.rowindex import RowIndex
from repro.engine.schema import Attribute, Schema
from repro.engine.types import AttributeType


class RelationError(Exception):
    """Raised on invalid relation manipulation (e.g. deleting absent rows)."""


class Relation:
    """A mutable bag of typed rows.

    Relations can carry registered :class:`RowIndex` instances (see
    :meth:`index_on`); every mutation keeps them in step, so a probe
    never pays a rebuild.
    """

    __slots__ = ("schema", "_rows", "_indexes")

    def __init__(self, schema: Schema, rows: Iterable[tuple] = (), validate: bool = True):
        self.schema = schema
        if validate:
            self._rows = [schema.validate_row(tuple(row)) for row in rows]
        else:
            self._rows = [tuple(row) for row in rows]
        self._indexes: dict[tuple[int, ...], RowIndex] = {}

    @classmethod
    def from_columns(
        cls,
        names: Iterable[str],
        types: Iterable[AttributeType],
        rows: Iterable[tuple] = (),
        qualifier: str | None = None,
    ) -> "Relation":
        schema = Schema(
            Attribute(name, atype, qualifier)
            for name, atype in zip(names, types)
        )
        return cls(schema, rows)

    @property
    def rows(self) -> list[tuple]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def copy(self) -> "Relation":
        return Relation(self.schema, list(self._rows), validate=False)

    def insert(self, row: tuple) -> None:
        validated = self.schema.validate_row(tuple(row))
        self._rows.append(validated)
        for index in self._indexes.values():
            index.add(validated)

    def insert_all(self, rows: Iterable[tuple]) -> None:
        for row in rows:
            self.insert(row)

    def delete(self, row: tuple) -> None:
        """Remove one occurrence of ``row``; raise if absent.

        Routed through :meth:`delete_all`'s multiset path, so callers
        alternating single deletions with batches never hit the quadratic
        repeated-``list.remove`` behavior.
        """
        target = self.schema.validate_row(tuple(row))
        try:
            self.delete_all((target,))
        except RelationError:
            raise RelationError(f"cannot delete absent row {target!r}") from None

    def delete_all(self, rows: Iterable[tuple]) -> None:
        """Remove one occurrence per row; raise if any is absent.

        Deleting many rows one-by-one via ``list.remove`` is quadratic, so
        this batches through a multiset: one pass over the bag regardless
        of how many rows the batch removes.
        """
        removed = Counter(self.schema.validate_row(tuple(row)) for row in rows)
        if not removed:
            return
        wanted = Counter(removed)
        kept: list[tuple] = []
        for row in self._rows:
            if wanted.get(row, 0) > 0:
                wanted[row] -= 1
            else:
                kept.append(row)
        missing = {row: n for row, n in wanted.items() if n > 0}
        if missing:
            raise RelationError(f"cannot delete absent rows {missing!r}")
        for index in self._indexes.values():
            index.remove_all(removed.elements())
        self._rows = kept

    def delete_where(self, predicate: Callable[[tuple], object]) -> list[tuple]:
        """Remove all rows satisfying ``predicate``; return them.

        A single pass partitions the bag, so the predicate runs exactly
        once per row.
        """
        removed: list[tuple] = []
        kept: list[tuple] = []
        for row in self._rows:
            if predicate(row):
                removed.append(row)
            else:
                kept.append(row)
        self._rows = kept
        if removed:
            for index in self._indexes.values():
                index.remove_all(removed)
        return removed

    # ------------------------------------------------------------------
    # Registered indexes.
    # ------------------------------------------------------------------

    def index_on(self, *references: str) -> RowIndex:
        """A :class:`RowIndex` on the given columns, registered so every
        subsequent mutation maintains it incrementally.

        Repeated calls with the same columns return the same index."""
        positions = tuple(self.schema.index_of(ref) for ref in references)
        index = self._indexes.get(positions)
        if index is None:
            index = self._indexes[positions] = RowIndex(positions, self._rows)
        return index

    def as_multiset(self) -> Counter:
        return Counter(self._rows)

    def same_bag(self, other: "Relation") -> bool:
        """Bag equality, ignoring row order (schemas must have equal arity)."""
        if len(self.schema) != len(other.schema):
            return False
        return self.as_multiset() == other.as_multiset()

    def column(self, name: str, qualifier: str | None = None) -> list[object]:
        index = self.schema.index_of(name, qualifier)
        return [row[index] for row in self._rows]

    def size_bytes(self) -> int:
        """Size under the paper's tuples x fields x width model."""
        return len(self._rows) * self.schema.row_width_bytes()

    def sorted_rows(self) -> list[tuple]:
        return sorted(self._rows, key=_sort_key)

    def pretty(self, limit: int | None = 20) -> str:
        """Render as an aligned text table (for examples and benchmarks)."""
        headers = [a.qualified_name for a in self.schema]
        body = self.sorted_rows()
        truncated = False
        if limit is not None and len(body) > limit:
            body = body[:limit]
            truncated = True
        cells = [headers] + [[_fmt(v) for v in row] for row in body]
        widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
            for row in cells
        ]
        lines.insert(1, "  ".join("-" * width for width in widths))
        if truncated:
            lines.append(f"... ({len(self._rows)} rows total)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        names = ", ".join(a.qualified_name for a in self.schema)
        return f"Relation([{names}], {len(self._rows)} rows)"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _sort_key(row: tuple) -> tuple:
    return tuple((str(type(v)), v if not isinstance(v, bool) else int(v)) for v in row)
