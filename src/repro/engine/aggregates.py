"""SQL aggregate functions: batch evaluation and incremental state machines.

Two layers live here:

* :func:`compute_aggregate` — batch evaluation of an aggregate over a list
  of values, used by the generalized projection operator.

* Incremental *aggregate states* — objects that absorb inserted and
  deleted values and either keep an exact running result or report that
  they can no longer answer without recomputation.  These implement
  exactly the maintainability semantics classified by Table 1 of the
  paper: COUNT and SUM(+COUNT) are self-maintainable for insertions and
  deletions, AVG only as the SUM/COUNT pair, and MIN/MAX only for
  insertions.  The Table-1 benchmark probes these state machines to
  *derive* the classification empirically rather than restating it.

NULL and empty-group semantics vs standard SQL
----------------------------------------------

The engine implements the paper's GPSJ model, which is deliberately
narrower than ANSI SQL, and a SQL execution backend must bridge three
divergences:

* **No NULLs.**  Section 2.1 assumes NULL-free sources, and
  :meth:`~repro.engine.types.AttributeType.validate` rejects ``None``
  everywhere, so ``SUM``/``MIN``/``MAX``/``COUNT`` never see a NULL and
  ``COUNT(column)`` ≡ ``COUNT(*)``.  Generated SQL therefore needs no
  NULL-skipping adjustments.

* **No empty groups.**  A GPSJ group exists only if at least one tuple
  contributes, so :func:`compute_aggregate` raises on empty input.  SQL
  agrees when a ``GROUP BY`` clause is present (no contributing row,
  no group) but differs for aggregation *without* group-by: SQL yields
  one row with ``SUM``/``MIN``/``MAX = NULL`` and ``COUNT = 0`` over an
  empty input, where the algebra yields no row at all.  The SQL
  generator closes this gap by attaching ``HAVING COUNT(*) > 0`` to
  group-by-free aggregations (see
  :func:`repro.backends.sqlgen._apply_generalized_project`).

* **True division.**  ``AVG`` and explicit ``/`` are true division
  here (Python semantics); SQLite's ``/`` truncates on INTEGER
  operands, so the execution dialect renders ``CAST(l AS REAL) / r``
  (see :func:`repro.backends.sqlgen.render_expression`).  ``AVG``
  itself needs no cast: SQLite's built-in AVG is already a REAL over
  the NULL-free inputs guaranteed above.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence


class AggregateFunction(enum.Enum):
    """The five SQL aggregate functions considered by the paper."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"

    @property
    def is_distributive(self) -> bool:
        """Distributive aggregates can be computed over disjoint partitions
        and then combined (footnote 2 of the paper)."""
        return self is not AggregateFunction.AVG


class MaintenanceError(Exception):
    """Raised when an aggregate state cannot absorb a change exactly."""


def compute_aggregate(
    func: AggregateFunction,
    values: Sequence[object],
    distinct: bool = False,
) -> object:
    """Evaluate ``func`` over ``values`` (batch, non-incremental).

    ``values`` is the column restricted to one group; ``COUNT(*)`` is
    expressed by counting an all-ones column at the call site.  Empty
    groups never occur in GPSJ semantics (a group exists only if it has at
    least one contributing tuple), so empty input raises.
    """
    if not values:
        raise ValueError("aggregates over empty groups are undefined in GPSJ views")
    if distinct:
        values = list(dict.fromkeys(values))
    if func is AggregateFunction.COUNT:
        return len(values)
    if func is AggregateFunction.SUM:
        return sum(values)
    if func is AggregateFunction.AVG:
        return sum(values) / len(values)
    if func is AggregateFunction.MIN:
        return min(values)
    return max(values)


class AggregateState:
    """Base class for incremental aggregate computations.

    Subclasses keep whatever running information their strategy allows
    and raise :class:`MaintenanceError` from :meth:`delete` (or
    :meth:`insert`) when the running information no longer determines the
    exact result — which is precisely the "not self-maintainable"
    situation of Table 1.
    """

    def insert(self, value: object) -> None:
        raise NotImplementedError

    def delete(self, value: object) -> None:
        raise NotImplementedError

    def result(self) -> object:
        raise NotImplementedError

    @property
    def empty(self) -> bool:
        """True when all absorbed tuples have been deleted again."""
        raise NotImplementedError


class CountState(AggregateState):
    """COUNT is a CSMAS: a single counter survives inserts and deletes."""

    def __init__(self, initial: int = 0):
        self._count = initial

    def insert(self, value: object) -> None:
        self._count += 1

    def delete(self, value: object) -> None:
        if self._count == 0:
            raise MaintenanceError("COUNT underflow: deleting from empty group")
        self._count -= 1

    def result(self) -> int:
        return self._count

    @property
    def empty(self) -> bool:
        return self._count == 0


class SumState(AggregateState):
    """SUM paired with a COUNT, per Table 2's replacement rule.

    The count distinguishes "sum is 0 because the group vanished" from
    "sum of the remaining tuples happens to be 0" — without it SUM alone
    is only a SMAS for deletions, which is what Table 1 records.
    """

    def __init__(self, initial_sum: float = 0, initial_count: int = 0):
        self._sum = initial_sum
        self._count = initial_count

    def insert(self, value: object) -> None:
        self._sum += value
        self._count += 1

    def delete(self, value: object) -> None:
        if self._count == 0:
            raise MaintenanceError("SUM underflow: deleting from empty group")
        self._sum -= value
        self._count -= 1

    def result(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    @property
    def empty(self) -> bool:
        return self._count == 0


class AvgState(AggregateState):
    """AVG maintained as the (SUM, COUNT) pair per Table 2."""

    def __init__(self):
        self._sum = SumState()

    def insert(self, value: object) -> None:
        self._sum.insert(value)

    def delete(self, value: object) -> None:
        self._sum.delete(value)

    def result(self) -> float:
        if self._sum.count == 0:
            raise MaintenanceError("AVG of an empty group is undefined")
        return self._sum.result() / self._sum.count

    @property
    def empty(self) -> bool:
        return self._sum.empty


class BareSumState(AggregateState):
    """SUM *without* a companion count — deliberately not a SMAS.

    Used only by the Table-1 probes to demonstrate why the companion
    COUNT(*) of Table 2 is required: after deletions this state cannot
    tell whether its group still exists.
    """

    def __init__(self):
        self._sum = 0
        self._seen_delete = False

    def insert(self, value: object) -> None:
        self._sum += value

    def delete(self, value: object) -> None:
        self._sum -= value
        self._seen_delete = True

    def result(self) -> float:
        if self._seen_delete:
            raise MaintenanceError(
                "SUM without COUNT cannot certify group existence after deletions"
            )
        return self._sum

    @property
    def empty(self) -> bool:
        raise MaintenanceError("SUM without COUNT cannot detect empty groups")


class ExtremumState(AggregateState):
    """MIN/MAX: self-maintainable for insertions only (Table 1).

    Deleting the current extremum destroys the running information — the
    new extremum lives among tuples this state never stored — so such a
    deletion raises :class:`MaintenanceError`, signalling that the caller
    must recompute from detail data.
    """

    def __init__(self, func: AggregateFunction, append_only: bool = False):
        if func not in (AggregateFunction.MIN, AggregateFunction.MAX):
            raise ValueError(f"{func} is not an extremum aggregate")
        self._func = func
        self._value: object | None = None
        self._count = 0
        self._append_only = append_only

    def insert(self, value: object) -> None:
        if self._value is None:
            self._value = value
        elif self._func is AggregateFunction.MIN:
            self._value = min(self._value, value)
        else:
            self._value = max(self._value, value)
        self._count += 1

    def delete(self, value: object) -> None:
        if self._append_only:
            raise MaintenanceError(
                f"{self._func.value} over append-only detail data "
                "received a deletion"
            )
        if self._count == 0:
            raise MaintenanceError("extremum underflow: deleting from empty group")
        self._count -= 1
        if self._count == 0:
            self._value = None
            return
        if value == self._value:
            raise MaintenanceError(
                f"deleting the current {self._func.value} requires recomputation"
            )

    def result(self) -> object:
        if self._value is None:
            raise MaintenanceError("extremum of an empty group is undefined")
        return self._value

    @property
    def empty(self) -> bool:
        return self._count == 0


class DistinctState(AggregateState):
    """DISTINCT aggregates are non-distributive and thus never CSMAS.

    Maintaining them exactly requires the full multiset of values, which
    is precisely the detail data the paper refuses to throw away for such
    aggregates.  This state refuses both kinds of changes once it would
    have to answer from partial information: an insert of a value it has
    not stored, or any delete.  It exists so the classification probes can
    demonstrate the failure; the maintenance runtime instead recomputes
    DISTINCT aggregates from the auxiliary views (Section 3.2).
    """

    def __init__(self, func: AggregateFunction):
        self._func = func
        self._initialized = False

    def insert(self, value: object) -> None:
        raise MaintenanceError(
            f"{self._func.value}(DISTINCT) is non-distributive: membership of "
            "the inserted value among prior values is unknown"
        )

    def delete(self, value: object) -> None:
        raise MaintenanceError(
            f"{self._func.value}(DISTINCT) is non-distributive: multiplicity "
            "of the deleted value is unknown"
        )

    def result(self) -> object:
        raise MaintenanceError("DISTINCT aggregates must be recomputed from detail")

    @property
    def empty(self) -> bool:
        raise MaintenanceError("DISTINCT aggregates must be recomputed from detail")


def make_aggregate_state(
    func: AggregateFunction,
    distinct: bool = False,
    append_only: bool = False,
) -> AggregateState:
    """Build the incremental state machine for an aggregate.

    ``append_only`` implements the paper's future-work relaxation for old
    detail data: under insert-only streams MIN/MAX become completely
    self-maintainable, so they get a state that accepts inserts and
    rejects deletes.
    """
    if distinct:
        return DistinctState(func)
    if func is AggregateFunction.COUNT:
        return CountState()
    if func is AggregateFunction.SUM:
        return SumState()
    if func is AggregateFunction.AVG:
        return AvgState()
    return ExtremumState(func, append_only=append_only)


def merge_distributive(
    func: AggregateFunction, partials: Iterable[object]
) -> object:
    """Combine per-partition results of a distributive aggregate.

    COUNT and SUM combine by summation, MIN/MAX by min/max.  AVG is not
    distributive and must be reconstructed from SUM and COUNT partials by
    the caller (Table 2).
    """
    items = list(partials)
    if not items:
        raise ValueError("cannot merge zero partitions")
    if func in (AggregateFunction.COUNT, AggregateFunction.SUM):
        return sum(items)
    if func is AggregateFunction.MIN:
        return min(items)
    if func is AggregateFunction.MAX:
        return max(items)
    raise ValueError("AVG is not distributive; merge its SUM/COUNT parts instead")
