"""Relational operators: selection, projection, joins, generalized projection.

The generalized projection operator ``Π_A`` (Gupta, Harinarayan & Quass,
VLDB 1995) extends duplicate-eliminating projection with aggregates; its
regular attributes act as group-by attributes.  It is the operator at the
top of every GPSJ view and of every compressed auxiliary view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.aggregates import AggregateFunction, compute_aggregate
from repro.engine.compilecache import compiled_predicate, projection_extractor
from repro.engine.expressions import Column, Expression
from repro.engine.relation import Relation
from repro.engine.rowindex import RowIndex, make_key_extractor, make_tuple_extractor
from repro.engine.schema import Attribute, Schema
from repro.engine.types import AttributeType


class OperatorError(Exception):
    """Raised on invalid operator invocations."""


def select(relation: Relation, condition: Expression) -> Relation:
    """``σ_condition(relation)``.

    The compiled predicate comes from the shared compile cache, so
    repeated selections with the same condition over the same schema
    (the common case in maintenance and plan execution) compile once.
    """
    predicate = compiled_predicate(condition, relation.schema)
    return Relation(
        relation.schema, list(filter(predicate, relation.rows)), validate=False
    )


def project(
    relation: Relation,
    references: Sequence[str],
    distinct: bool = True,
) -> Relation:
    """``π_references(relation)``; duplicate-eliminating by default.

    Attribute resolution and the row extractor are cached per
    (schema, references) pair in the shared compile cache.
    """
    schema, extract = projection_extractor(relation.schema, references)
    rows: Iterable[tuple] = map(extract, relation.rows)
    if distinct:
        rows = dict.fromkeys(rows)
    return Relation(schema, list(rows), validate=False)


def cross_product(left: Relation, right: Relation) -> Relation:
    """``left × right`` with concatenated qualified schemas."""
    schema = left.schema.concat(right.schema)
    rows = [l + r for l in left for r in right]
    return Relation(schema, rows, validate=False)


def _join_extractors(
    left: Relation,
    right: Relation,
    pairs: Sequence[tuple[str, str]],
    right_index: RowIndex | None,
):
    """Precompiled key extractors for both sides of a join.

    When ``right_index`` is supplied it must be keyed on exactly the
    join's right-side columns; its extractor is reused so both sides
    agree on the scalar-vs-tuple key convention."""
    left_idx = tuple(left.schema.index_of(l) for l, __ in pairs)
    right_idx = tuple(right.schema.index_of(r) for __, r in pairs)
    if right_index is not None and right_index.positions != right_idx:
        raise OperatorError(
            f"index on positions {right_index.positions} cannot serve a "
            f"join on right positions {right_idx}"
        )
    return make_key_extractor(left_idx), make_key_extractor(right_idx)


def equijoin(
    left: Relation,
    right: Relation,
    pairs: Sequence[tuple[str, str]],
    right_index: RowIndex | None = None,
) -> Relation:
    """Hash equijoin on ``pairs`` of (left reference, right reference).

    With a ``right_index`` (a maintained :class:`RowIndex` on the right
    side's join columns) the build phase is skipped entirely.
    """
    if not pairs:
        return cross_product(left, right)
    left_key, right_key = _join_extractors(left, right, pairs, right_index)
    schema = left.schema.concat(right.schema)
    if right_index is not None:
        rows = [
            lrow + rrow
            for lrow in left.rows
            for rrow in right_index.rows_for(left_key(lrow))
        ]
        return Relation(schema, rows, validate=False)
    buckets: dict[object, list[tuple]] = {}
    for row in right.rows:
        key = right_key(row)
        bucket = buckets.get(key)
        if bucket is None:
            bucket = buckets[key] = []
        bucket.append(row)
    rows = [
        lrow + rrow
        for lrow in left.rows
        for rrow in buckets.get(left_key(lrow), ())
    ]
    return Relation(schema, rows, validate=False)


def semijoin(
    left: Relation,
    right: Relation,
    pairs: Sequence[tuple[str, str]],
    right_index: RowIndex | None = None,
) -> Relation:
    """``left ⋉ right``: left rows with at least one join partner."""
    left_key, right_key = _join_extractors(left, right, pairs, right_index)
    keys = (
        right_index.keys()
        if right_index is not None
        else set(map(right_key, right.rows))
    )
    rows = [row for row in left.rows if left_key(row) in keys]
    return Relation(left.schema, rows, validate=False)


def antijoin(
    left: Relation,
    right: Relation,
    pairs: Sequence[tuple[str, str]],
    right_index: RowIndex | None = None,
) -> Relation:
    """``left ▷ right``: left rows with no join partner."""
    left_key, right_key = _join_extractors(left, right, pairs, right_index)
    keys = (
        right_index.keys()
        if right_index is not None
        else set(map(right_key, right.rows))
    )
    rows = [row for row in left.rows if left_key(row) not in keys]
    return Relation(left.schema, rows, validate=False)


def union_all(left: Relation, right: Relation) -> Relation:
    """Bag union; arities must agree (left schema wins)."""
    if len(left.schema) != len(right.schema):
        raise OperatorError("union of relations with different arities")
    return Relation(left.schema, left.rows + right.rows, validate=False)


def rename(relation: Relation, qualifier: str | None) -> Relation:
    """Re-qualify all attributes (the ρ operator)."""
    return Relation(
        relation.schema.with_qualifier(qualifier), relation.rows, validate=False
    )


@dataclass(frozen=True)
class GroupByItem:
    """A regular attribute of a generalized projection (a group-by key)."""

    column: Column
    alias: str | None = None

    @property
    def output_name(self) -> str:
        return self.alias if self.alias is not None else self.column.name

    def to_sql(self) -> str:
        if self.alias is not None and self.alias != self.column.name:
            return f"{self.column.to_sql()} AS {self.alias}"
        return self.column.to_sql()


@dataclass(frozen=True)
class AggregateItem:
    """An aggregate of a generalized projection.

    ``column is None`` encodes ``COUNT(*)``.  All aggregates are over
    single attributes, per Section 2.1 of the paper.
    """

    func: AggregateFunction
    column: Column | None
    distinct: bool = False
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.column is None and self.func is not AggregateFunction.COUNT:
            raise OperatorError(f"{self.func.value}(*) is not a valid aggregate")

    @property
    def is_count_star(self) -> bool:
        return self.column is None

    @property
    def output_name(self) -> str:
        if self.alias is not None:
            return self.alias
        if self.is_count_star:
            return "count_star"
        prefix = "distinct_" if self.distinct else ""
        return f"{self.func.value.lower()}_{prefix}{self.column.name}"

    def output_type(self, input_type: AttributeType | None = None) -> AttributeType:
        """Result type, given the argument's type (None for COUNT(*))."""
        if self.func is AggregateFunction.COUNT:
            return AttributeType.INT
        if self.func is AggregateFunction.AVG:
            return AttributeType.FLOAT
        # SUM/MIN/MAX inherit their argument's type.
        if input_type is None:
            raise OperatorError(f"{self.func.value} requires an argument type")
        return input_type

    def argument_sql(self) -> str:
        if self.is_count_star:
            return "*"
        inner = self.column.to_sql()
        if self.distinct:
            return f"DISTINCT {inner}"
        return inner

    def to_sql(self) -> str:
        rendered = f"{self.func.value}({self.argument_sql()})"
        if self.alias is not None:
            rendered += f" AS {self.alias}"
        return rendered


ProjectionItem = GroupByItem | AggregateItem


def projection_schema(
    items: Sequence[ProjectionItem],
    input_schema: Schema,
    qualifier: str | None = None,
) -> Schema:
    """The output schema of ``Π_items`` over ``input_schema``."""
    attributes = []
    for item in items:
        if isinstance(item, GroupByItem):
            source = input_schema.attribute(item.column.name, item.column.qualifier)
            attributes.append(
                Attribute(item.output_name, source.atype, qualifier, source.size_bytes)
            )
        else:
            input_type = None
            if not item.is_count_star:
                input_type = input_schema.attribute(
                    item.column.name, item.column.qualifier
                ).atype
            attributes.append(
                Attribute(item.output_name, item.output_type(input_type), qualifier)
            )
    return Schema(attributes)


def generalized_project(
    relation: Relation,
    items: Sequence[ProjectionItem],
    qualifier: str | None = None,
) -> Relation:
    """``Π_items(relation)``: group on the regular attributes, aggregate the rest.

    With no aggregates this degenerates to duplicate-eliminating
    projection, exactly as in the paper's definition.
    """
    group_positions = [
        (i, relation.schema.index_of(item.column.name, item.column.qualifier))
        for i, item in enumerate(items)
        if isinstance(item, GroupByItem)
    ]
    agg_specs = [
        (
            i,
            item,
            None
            if item.is_count_star
            else relation.schema.index_of(item.column.name, item.column.qualifier),
        )
        for i, item in enumerate(items)
        if isinstance(item, AggregateItem)
    ]
    schema = projection_schema(items, relation.schema, qualifier)
    group_key = make_tuple_extractor(tuple(pos for __, pos in group_positions))

    if not agg_specs:
        rows = dict.fromkeys(map(group_key, relation.rows))
        return Relation(schema, list(rows), validate=False)

    groups: dict[tuple, list[tuple]] = {}
    for row in relation.rows:
        key = group_key(row)
        members = groups.get(key)
        if members is None:
            members = groups[key] = []
        members.append(row)

    rows = []
    for key, members in groups.items():
        out: list[object] = [None] * len(items)
        for (slot, __), value in zip(group_positions, key):
            out[slot] = value
        for slot, item, pos in agg_specs:
            if item.is_count_star:
                out[slot] = len(members)
            else:
                values = [member[pos] for member in members]
                out[slot] = compute_aggregate(item.func, values, item.distinct)
        rows.append(tuple(out))
    return Relation(schema, rows, validate=False)
