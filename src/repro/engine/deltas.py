"""Change sets flowing from sources to the warehouse.

A :class:`Delta` carries the inserted and deleted rows of one base table;
a :class:`Transaction` groups per-table deltas that are applied together.
Updates are represented as deletion + insertion pairs, which is how the
paper propagates *exposed* updates (Section 2.1); the warehouse runtime
applies the same discipline to all updates for uniformity.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping


@dataclass(frozen=True)
class Delta:
    """Inserted and deleted rows for one base table (full tuples)."""

    table: str
    inserted: tuple[tuple, ...] = ()
    deleted: tuple[tuple, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "inserted", tuple(tuple(r) for r in self.inserted))
        object.__setattr__(self, "deleted", tuple(tuple(r) for r in self.deleted))

    @property
    def empty(self) -> bool:
        return not self.inserted and not self.deleted

    def inverted(self) -> "Delta":
        """The delta that undoes this one."""
        return Delta(self.table, self.deleted, self.inserted)

    @classmethod
    def insertion(cls, table: str, rows: Iterable[tuple]) -> "Delta":
        return cls(table, inserted=tuple(rows))

    @classmethod
    def deletion(cls, table: str, rows: Iterable[tuple]) -> "Delta":
        return cls(table, deleted=tuple(rows))

    @classmethod
    def update(
        cls, table: str, old_rows: Iterable[tuple], new_rows: Iterable[tuple]
    ) -> "Delta":
        """An update propagated as deletions followed by insertions."""
        return cls(table, inserted=tuple(new_rows), deleted=tuple(old_rows))

    def coalesced(self) -> "Delta":
        """Cancel insert/delete pairs of identical rows (multiset minimum).

        Deleting a row and re-inserting the very same row within one
        transaction is a no-op on the final state, so maintenance need
        not propagate either side.  Rows that differ in any attribute
        (i.e. genuine updates) are left untouched.

        Runs on every transaction before any reduction work, so the
        cancellation is a single pass over each side (the availability
        counts come from ``Counter``'s C counting helper, the rest is
        one availability dict) and the surviving rows keep the
        historical order exactly: the *first* ``min(inserts, deletes)``
        occurrences of a row cancel on both sides.
        """
        inserted, deleted = self.inserted, self.deleted
        if not inserted or not deleted:
            return self
        remaining = Counter(deleted)
        kept_ins: list[tuple] = []
        cancelled: dict = {}
        for row in inserted:
            available = remaining.get(row, 0)
            if available:
                remaining[row] = available - 1
                cancelled[row] = cancelled.get(row, 0) + 1
            else:
                kept_ins.append(row)
        if not cancelled:
            return self
        kept_dels: list[tuple] = []
        for row in deleted:
            count = cancelled.get(row, 0)
            if count:
                cancelled[row] = count - 1
            else:
                kept_dels.append(row)
        # Bypass __post_init__'s defensive re-tupling: the surviving
        # rows are the already-normalized tuples of this delta.
        delta = object.__new__(Delta)
        object.__setattr__(delta, "table", self.table)
        object.__setattr__(delta, "inserted", tuple(kept_ins))
        object.__setattr__(delta, "deleted", tuple(kept_dels))
        return delta


@dataclass(frozen=True)
class Transaction:
    """A set of per-table deltas applied atomically at the sources.

    Within a transaction the referential-integrity discipline is:
    deletions cascade bottom-up (referencing tables first) and insertions
    apply top-down (referenced tables first), so every intermediate state
    the warehouse observes satisfies the declared constraints.
    """

    deltas: tuple[Delta, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "deltas", tuple(self.deltas))
        seen: set[str] = set()
        for delta in self.deltas:
            if delta.table in seen:
                raise ValueError(
                    f"transaction holds multiple deltas for table {delta.table!r}"
                )
            seen.add(delta.table)

    def __iter__(self) -> Iterator[Delta]:
        return iter(self.deltas)

    @property
    def empty(self) -> bool:
        return all(delta.empty for delta in self.deltas)

    @property
    def tables(self) -> tuple[str, ...]:
        return tuple(delta.table for delta in self.deltas)

    def delta_for(self, table: str) -> Delta:
        for delta in self.deltas:
            if delta.table == table:
                return delta
        return Delta(table)

    @classmethod
    def of(cls, *deltas: Delta) -> "Transaction":
        return cls(tuple(delta for delta in deltas if not delta.empty))

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, tuple[Iterable, Iterable]]) -> "Transaction":
        """Build from ``{table: (inserted_rows, deleted_rows)}``."""
        return cls.of(
            *(
                Delta(table, tuple(ins), tuple(dels))
                for table, (ins, dels) in mapping.items()
            )
        )

    def coalesced(self) -> "Transaction":
        """The transaction with every per-table delta coalesced.

        Final state is unchanged; only churn (rows both inserted and
        deleted within the transaction) disappears.  This runs before any
        reduction work in the maintenance hot path, so cancelled rows
        never pay for validation, semijoin probes, or group folds.
        """
        coalesced = tuple(delta.coalesced() for delta in self.deltas)
        if all(c is d for c, d in zip(coalesced, self.deltas)):
            return self
        return Transaction.of(*coalesced)


def _subtract_in_order(rows: tuple[tuple, ...], cancelled) -> tuple[tuple, ...]:
    """Remove ``cancelled[row]`` occurrences of each row, preserving order."""
    remaining = Counter(cancelled)
    kept = []
    for row in rows:
        if remaining.get(row, 0) > 0:
            remaining[row] -= 1
        else:
            kept.append(row)
    return tuple(kept)


def coalesce(transactions: "Iterable[Transaction]") -> Transaction:
    """Merge a sequence of transactions into one net transaction.

    Rows both inserted and deleted across the sequence cancel (multiset
    arithmetic), so a deferred-refresh warehouse propagates only the net
    change.  The result reaches the same final state as applying the
    sequence in order, which is all exact view maintenance depends on.
    """
    inserted: dict[str, Counter] = {}
    deleted: dict[str, Counter] = {}
    for transaction in transactions:
        for delta in transaction:
            table_ins = inserted.setdefault(delta.table, Counter())
            table_del = deleted.setdefault(delta.table, Counter())
            for row in delta.deleted:
                if table_ins[row] > 0:
                    table_ins[row] -= 1  # cancels an earlier insertion
                else:
                    table_del[row] += 1
            for row in delta.inserted:
                table_ins[row] += 1
    deltas = []
    for table in inserted:
        ins = tuple(inserted[table].elements())
        dels = tuple(deleted[table].elements())
        if ins or dels:
            deltas.append(Delta(table, ins, dels))
    return Transaction.of(*deltas)
