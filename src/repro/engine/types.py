"""Attribute types and the paper's storage size model for a single field.

The paper sizes warehouse relations as ``tuples x fields x 4 bytes``
(Section 1.1), so every type defaults to four bytes; strings may be sized
explicitly when a workload wants a more realistic model.
"""

from __future__ import annotations

import enum
from numbers import Real


class AttributeType(enum.Enum):
    """The value domains supported by the engine."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    @property
    def default_size_bytes(self) -> int:
        """Size of one field of this type under the paper's model."""
        return _DEFAULT_SIZES[self]

    def validate(self, value: object) -> bool:
        """Return True when ``value`` belongs to this type's domain.

        The engine assumes no null values (Section 2.1 of the paper), so
        ``None`` is never valid.
        """
        if value is None:
            return False
        if self is AttributeType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is AttributeType.FLOAT:
            return isinstance(value, Real) and not isinstance(value, bool)
        if self is AttributeType.STRING:
            return isinstance(value, str)
        return isinstance(value, bool)

    def coerce(self, value: object) -> object:
        """Coerce ``value`` into this type's domain or raise ``TypeError``."""
        if self is AttributeType.FLOAT and isinstance(value, int):
            value = float(value)
        if not self.validate(value):
            raise TypeError(f"{value!r} is not a valid {self.value}")
        return value

    @property
    def is_numeric(self) -> bool:
        return self in (AttributeType.INT, AttributeType.FLOAT)


_DEFAULT_SIZES = {
    AttributeType.INT: 4,
    AttributeType.FLOAT: 4,
    AttributeType.STRING: 4,
    AttributeType.BOOL: 4,
}
