"""In-memory relational engine used as the data-warehouse substrate.

The engine provides typed schemas, relations, an expression language,
classic relational operators plus the *generalized projection* operator of
Gupta, Harinarayan & Quass (VLDB 1995) that the paper builds on, and
incremental aggregate state machines used both by the maintenance runtime
and by the Table-1 classification probes.
"""

from repro.engine.types import AttributeType
from repro.engine.schema import Attribute, Schema
from repro.engine.relation import Relation
from repro.engine.expressions import (
    And,
    Arithmetic,
    Column,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
    Or,
)
from repro.engine.aggregates import (
    AggregateFunction,
    compute_aggregate,
    make_aggregate_state,
)
from repro.engine.deltas import Delta, Transaction
from repro.engine import operators

__all__ = [
    "AttributeType",
    "Attribute",
    "Schema",
    "Relation",
    "Expression",
    "Column",
    "Literal",
    "Comparison",
    "And",
    "Or",
    "Not",
    "InList",
    "Arithmetic",
    "AggregateFunction",
    "compute_aggregate",
    "make_aggregate_state",
    "Delta",
    "Transaction",
    "operators",
]
