"""Command-line interface: derive and inspect minimal detail data.

Usage (``python -m repro <command> ...``)::

    python -m repro classify [--append-only]
        Print the aggregate classification (Tables 1 and 2).

    python -m repro graph --schema schema.sql --view view.sql
        Print the extended join graph, annotations, Need sets, and
        dependence relation (Figure 2 and Definitions 2-4).

    python -m repro derive --schema schema.sql --view view.sql
                     [--append-only]
        Run Algorithm 3.2: print the auxiliary views as SQL, which views
        were eliminated and why, and the reconstruction query.

    python -m repro storage [--days N --stores N --products N
                             --sold-per-day N --transactions N]
        Print the Section 1.1 storage analysis for the given (default:
        the paper's) cardinalities.

    python -m repro perf --schema schema.sql --view view.sql
        Maintain the view under a synthetic transaction stream and print
        the hot-path counters, phase timings, and per-transaction
        histogram summaries.

    python -m repro trace --schema schema.sql --view view.sql
                    [--sample-every N --jsonl out.jsonl]
        Same stream, with structured tracing on: prints the slowest
        transaction's span tree (flame-style) and optionally exports
        every sampled trace as JSONL.

    python -m repro metrics --schema schema.sql --view view.sql
                    [--jsonl out.jsonl]
        Same stream; prints the merged metrics registry in Prometheus
        text exposition format and optionally snapshots it as JSONL.

    python -m repro serve --retail [--host H --port P --backend SPEC]
        Run the warehouse as an HTTP service: snapshot-isolated
        /query reads, a single-writer /apply queue with micro-batched
        coalescing, /refresh barrier, /explain, Prometheus /metrics,
        /healthz with SLO state, the structured /events log, and
        stitched /trace trees.

    python -m repro events --retail [--level L --jsonl out.jsonl]
        Run the synthetic stream and print the structured event log
        (txn commits/rollbacks, replans, checkpoints, backpressure).

    python -m repro doctor --retail [--json --checkpoint path
                                     --plant-index-corruption]
        Operational self-check: index consistency, checkpoint
        staleness, stats-catalog drift, event-log errors.  Exits 0
        healthy, 1 degraded (warnings), 2 unhealthy (failures).

    python -m repro top [--url U --interval S --once]
        Live terminal dashboard over a serving /metrics endpoint:
        throughput, queue depth, read latency quantiles, planner
        q-error, per-shard balance.

The observability commands and ``serve`` also run against the built-in
retail star schema with ``--retail`` (no schema/view files needed), and
share ``--transactions``/``--seed``/``--rows-per-table`` stream knobs.

``schema.sql`` holds CREATE TABLE statements (see ``repro.sql.ddl``);
``view.sql`` holds one CREATE VIEW statement in the GPSJ dialect.  Pass
``-`` to read from stdin.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.derivation import derive_auxiliary_views
from repro.core.joingraph import ExtendedJoinGraph
from repro.core.rewrite import ReconstructionError, Reconstructor
from repro.core.aggregates import classification_table
from repro.sql.ddl import parse_schema
from repro.sql.parser import parse_view
from repro.storage.model import (
    paper_auxiliary_view_estimate,
    paper_fact_table_estimate,
)


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except Exception as error:  # CLI boundary: surface, don't trace
        print(f"error: {error}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Minimizing Detail Data in Data Warehouses (EDBT 1998)",
    )
    subparsers = parser.add_subparsers(dest="command")
    parser.set_defaults(command=None)

    classify = subparsers.add_parser(
        "classify", help="print the aggregate classification (Tables 1-2)"
    )
    classify.add_argument(
        "--append-only",
        action="store_true",
        help="apply the old-detail-data relaxation (Section 4)",
    )
    classify.set_defaults(handler=_cmd_classify)

    for name, handler, description in (
        ("graph", _cmd_graph, "print the extended join graph and Need sets"),
        ("derive", _cmd_derive, "derive the minimal auxiliary views"),
        ("explain", _cmd_explain, "narrate every derivation decision"),
    ):
        sub = subparsers.add_parser(name, help=description)
        sub.add_argument("--schema", required=True, help="CREATE TABLE file ('-' for stdin)")
        sub.add_argument("--view", required=True, help="CREATE VIEW file ('-' for stdin)")
        if name in ("derive", "explain"):
            sub.add_argument(
                "--append-only",
                action="store_true",
                help="derive for append-only (old) detail data",
            )
        if name == "explain":
            sub.add_argument(
                "--plan",
                action="store_true",
                help="print the physical evaluation and maintenance plans",
            )
            sub.add_argument(
                "--analyze",
                action="store_true",
                help="run a synthetic transaction stream first and "
                "annotate the plans with observed per-node cardinalities "
                "and timings",
            )
            sub.add_argument("--transactions", type=int, default=40)
            sub.add_argument("--seed", type=int, default=0)
            sub.add_argument("--rows-per-table", type=int, default=24)
            _add_backend_flag(sub)
            _add_planner_flag(sub)
        sub.set_defaults(handler=handler)

    for name, handler, description in (
        ("perf", _cmd_perf, "run a synthetic stream; print perf counters"),
        ("trace", _cmd_trace, "run a synthetic stream with tracing on"),
        ("metrics", _cmd_metrics, "run a synthetic stream; export metrics"),
        ("events", _cmd_events, "run a synthetic stream; print the event log"),
        ("doctor", _cmd_doctor, "run warehouse self-checks (exit 0/1/2)"),
    ):
        sub = subparsers.add_parser(name, help=description)
        sub.add_argument("--schema", help="CREATE TABLE file ('-' for stdin)")
        sub.add_argument("--view", help="CREATE VIEW file ('-' for stdin)")
        sub.add_argument(
            "--retail",
            action="store_true",
            help="use the built-in retail star schema instead of "
            "--schema/--view",
        )
        sub.add_argument("--transactions", type=int, default=40)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--rows-per-table",
            type=int,
            default=24,
            help="synthetic rows seeded per table when the schema has no data",
        )
        if name == "trace":
            sub.add_argument(
                "--sample-every",
                type=int,
                default=1,
                help="trace the first of every N transactions (1 = all)",
            )
            sub.add_argument(
                "--jsonl", help="export every sampled trace as JSONL"
            )
        if name == "metrics":
            sub.add_argument(
                "--jsonl", help="write a JSONL snapshot of the registry"
            )
        if name == "events":
            sub.add_argument(
                "--level",
                choices=("debug", "info", "warn", "error"),
                default=None,
                help="only show events at or above this level",
            )
            sub.add_argument(
                "--limit", type=int, default=None,
                help="only show the newest N events",
            )
            sub.add_argument(
                "--jsonl", help="export the event log as JSONL"
            )
        if name == "doctor":
            sub.add_argument(
                "--json",
                action="store_true",
                help="emit the machine-readable report instead of text",
            )
            sub.add_argument(
                "--checkpoint",
                help="checkpoint file whose staleness the doctor verifies",
            )
            sub.add_argument(
                "--max-checkpoint-age",
                type=float,
                default=86_400.0,
                help="seconds before a checkpoint counts as stale",
            )
            sub.add_argument(
                "--plant-index-corruption",
                action="store_true",
                help="deliberately corrupt one row index first (CI gate: "
                "proves the doctor notices)",
            )
        _add_backend_flag(sub)
        _add_planner_flag(sub)
        sub.set_defaults(handler=handler)

    top = subparsers.add_parser(
        "top",
        help="live terminal dashboard over a serving /metrics endpoint",
    )
    top.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="base URL of a running 'repro serve' (default %(default)s)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes",
    )
    top.add_argument(
        "--iterations", type=int, default=None,
        help="stop after N refreshes (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (no screen clearing)",
    )
    top.set_defaults(handler=_cmd_top)

    serve = subparsers.add_parser(
        "serve",
        help="run the warehouse as an HTTP service (snapshot-isolated reads)",
    )
    serve.add_argument("--schema", help="CREATE TABLE file ('-' for stdin)")
    serve.add_argument("--view", help="CREATE VIEW file ('-' for stdin)")
    serve.add_argument(
        "--retail",
        action="store_true",
        help="serve the built-in retail star schema instead of "
        "--schema/--view",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642,
        help="TCP port (0 binds an ephemeral port; default 8642)",
    )
    serve.add_argument(
        "--rows-per-table",
        type=int,
        default=24,
        help="synthetic rows seeded per table when the schema has no data",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="apply-queue depth before submissions get 503 backpressure",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="transactions coalesced into one micro-batch per apply",
    )
    serve.add_argument(
        "--retain-versions",
        type=int,
        default=64,
        help="snapshot versions kept reconstructable for pinned readers",
    )
    serve.add_argument(
        "--trace-sample-every",
        type=int,
        default=1,
        help="trace the first of every N requests/transactions "
        "(1 = all, 0 = tracing off; errors are always retained)",
    )
    _add_backend_flag(serve)
    _add_planner_flag(serve)
    serve.set_defaults(handler=_cmd_serve)

    share = subparsers.add_parser(
        "share",
        help="merge the auxiliary views of several views (Section 4)",
    )
    share.add_argument("--schema", required=True, help="CREATE TABLE file")
    share.add_argument(
        "--views",
        required=True,
        nargs="+",
        help="CREATE VIEW files forming the class",
    )
    share.set_defaults(handler=_cmd_share)

    storage = subparsers.add_parser(
        "storage", help="print the Section 1.1 storage analysis"
    )
    storage.add_argument("--days", type=int, default=730)
    storage.add_argument("--stores", type=int, default=300)
    storage.add_argument("--products", type=int, default=30_000)
    storage.add_argument("--sold-per-day", type=int, default=3_000)
    storage.add_argument("--transactions", type=int, default=20)
    storage.add_argument(
        "--selected-days",
        type=int,
        default=None,
        help="days passing the view's time condition (default: half)",
    )
    storage.set_defaults(handler=_cmd_storage)
    return parser


def _add_backend_flag(sub) -> None:
    from repro.backends import BACKEND_NAMES

    sub.add_argument(
        "--backend",
        metavar="SPEC",
        type=_backend_spec,
        default=None,
        help="execution backend for the maintained warehouse: one of "
        f"{', '.join(BACKEND_NAMES)}, optionally parameterized "
        "('sqlite:<path>', 'sharded:<N>', 'sharded:<N>:parallel'); "
        "default: the REPRO_BACKEND environment variable, else memory",
    )


def _backend_spec(value: str) -> str:
    """Validate a ``--backend`` spec early, with an argparse-style error."""
    import argparse

    from repro.backends import BackendError, resolve_backend_name

    try:
        resolve_backend_name(value)
    except BackendError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _add_planner_flag(sub) -> None:
    from repro.plan.cost import PLANNER_NAMES

    sub.add_argument(
        "--planner",
        metavar="MODE",
        type=_planner_spec,
        default=None,
        help="maintenance planner mode: one of "
        f"{', '.join(PLANNER_NAMES)} (cost picks join order, probe "
        "direction, and restriction from live cardinality statistics "
        "and re-plans on misestimates; static keeps the deterministic "
        "policy); default: the REPRO_PLANNER environment variable, "
        "else cost",
    )


def _planner_spec(value: str) -> str:
    """Validate a ``--planner`` spec early, with an argparse-style error."""
    import argparse

    from repro.plan.cost import PlannerError, resolve_planner_name

    try:
        resolve_planner_name(value)
    except PlannerError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _load(args) -> tuple:
    database = parse_schema(_read(args.schema))
    view = parse_view(_read(args.view), database, name="view")
    return database, view


def _cmd_classify(args) -> int:
    mode = " (append-only relaxation)" if args.append_only else ""
    print(f"Classification of SQL aggregates{mode}:")
    print(f"{'aggregate':<10}{'SMA ins/del':<14}{'SMAS ins/del':<15}"
          f"{'replaced by':<16}{'class'}")
    for row in classification_table(append_only=args.append_only):
        sma = "/".join("yes" if x else "no" for x in row["sma"])
        smas = "/".join("yes" if x else "no" for x in row["smas"])
        print(
            f"{row['aggregate']:<10}{sma:<14}{smas:<15}"
            f"{row['replaced_by']:<16}{row['class']}"
        )
    return 0


def _cmd_graph(args) -> int:
    database, view = _load(args)
    graph = ExtendedJoinGraph(view, database)
    print("Extended join graph (g = group-by attributes, k = key grouped):")
    print(graph.render())
    print(f"\nroot table: {graph.root}")
    print("\nNeed sets (Definition 3):")
    for table in view.tables:
        print(f"  Need({table}) = {sorted(graph.need(table)) or '{}'}")
    print("\nDependence (join reductions, Section 2.2):")
    for table in view.tables:
        deps = graph.depends_on(table)
        if deps:
            print(f"  {table} depends on {sorted(deps)}")
    return 0


def _cmd_derive(args) -> int:
    database, view = _load(args)
    aux = derive_auxiliary_views(
        view, database, append_only=args.append_only
    )
    print("-- view ----------------------------------------------------")
    print(view.to_sql())
    print()
    print("-- minimal auxiliary views (Algorithm 3.2) -----------------")
    if aux.auxiliary:
        print(aux.to_sql())
    else:
        print("-- none required: the view is self-maintainable alone")
    if aux.eliminated:
        print()
        for table, reason in aux.eliminated.items():
            print(f"-- X_{table} omitted: {reason}")
    print()
    print("-- reconstruction of the view over the auxiliary views -----")
    try:
        print(Reconstructor(view, aux, database).to_sql())
    except ReconstructionError:
        print(
            "-- not reconstructable from auxiliary views alone "
            "(an auxiliary view was eliminated); the view is maintained "
            "directly from deltas"
        )
    return 0


def _cmd_explain(args) -> int:
    database, view = _load(args)
    if args.analyze:
        from repro.plan.explain import (
            maintainer_plan_report,
            merged_stats_annotator,
        )
        from repro.plan.planner import evaluate_view

        warehouse, __ = _run_stream(database, view, args)
        evaluate_view(view, database)  # give the evaluation plan a run too
        maintainer = warehouse.maintainer(view.name)
        print(
            maintainer_plan_report(
                maintainer, database, merged_stats_annotator(maintainer)
            )
        )
        print(
            f"\n(observed over {args.transactions} synthetic transactions, "
            f"seed {args.seed}; nodes without an 'actual:' note never ran)"
        )
        return 0
    if args.plan:
        from repro.plan.explain import explain_view_plans

        print(
            explain_view_plans(
                view,
                database,
                backend=args.backend,
                planner=getattr(args, "planner", None),
            )
        )
        return 0
    from repro.core.explain import explain_derivation

    report = explain_derivation(
        view, database, append_only=args.append_only
    )
    print(report.render())
    return 0


def _workload(args) -> tuple:
    """The (database, view) pair an observability command streams over."""
    if getattr(args, "retail", False):
        from repro.workloads.retail import (
            RetailConfig,
            build_retail_database,
            product_sales_view,
        )

        config = RetailConfig(
            days=10, stores=3, products=30, products_sold_per_day=10,
            start_year=1997,
        )
        return build_retail_database(config), product_sales_view()
    if not args.schema or not args.view:
        raise ValueError("pass --schema and --view, or --retail")
    return _load(args)


def _run_stream(database, view, args, tracer=None):
    """Register ``view`` in a warehouse and maintain it under a
    referential-integrity-preserving synthetic stream; returns the
    warehouse and the applied transaction count."""
    from repro.warehouse.warehouse import Warehouse
    from repro.workloads.streams import (
        TransactionGenerator,
        generic_value_makers,
        seed_database,
    )

    if all(not table.relation for table in database.tables):
        seed_database(
            database, rows_per_table=args.rows_per_table, seed=args.seed
        )
    warehouse = Warehouse(
        database,
        [view],
        tracer=tracer,
        backend=getattr(args, "backend", None),
        planner=getattr(args, "planner", None),
    )
    generator = TransactionGenerator(
        database,
        seed=args.seed,
        value_makers=generic_value_makers(database),
    )
    applied = 0
    for __ in range(args.transactions):
        transaction = generator.next_transaction(update_probability=0.0)
        if transaction.empty:
            continue
        database.apply(transaction)
        warehouse.apply(transaction)
        applied += 1
    return warehouse, applied


def _cmd_perf(args) -> int:
    database, view = _workload(args)
    warehouse, applied = _run_stream(database, view, args)
    from repro.perf import TXN_DELTA_ROWS, TXN_LATENCY_MS, TXN_ROWS_PER_SEC

    print(f"synthetic stream: {applied} transactions applied")
    print(warehouse.perf_report())
    perf = warehouse.maintainer(view.name).perf
    print("per-transaction distributions:")
    for name in (TXN_LATENCY_MS, TXN_DELTA_ROWS, TXN_ROWS_PER_SEC):
        summary = perf.histogram_summary(name)
        print(
            f"  {name}: count={summary['count']} p50={summary['p50']} "
            f"p95={summary['p95']} p99={summary['p99']}"
        )
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.trace import Tracer

    database, view = _workload(args)
    tracer = Tracer(sample_every=args.sample_every)
    warehouse, applied = _run_stream(database, view, args, tracer=tracer)
    print(
        f"synthetic stream: {applied} transactions applied, "
        f"{tracer.sampled} traced (sample_every={args.sample_every})"
    )
    slowest = tracer.slowest()
    if slowest is None:
        print("no transactions were sampled")
        return 0
    print("\nslowest traced transaction:")
    print(slowest.render())
    if args.jsonl:
        tracer.export_jsonl(args.jsonl)
        print(f"\n{len(tracer.traces)} traces exported to {args.jsonl}")
    return 0


def _cmd_metrics(args) -> int:
    database, view = _workload(args)
    warehouse, __ = _run_stream(database, view, args)
    registry = warehouse.metrics_registry()
    print(registry.render_prometheus())
    if args.jsonl:
        registry.write_jsonl(args.jsonl)
        print(f"# registry snapshot written to {args.jsonl}")
    return 0


def _cmd_events(args) -> int:
    database, view = _workload(args)
    warehouse, applied = _run_stream(database, view, args)
    events = warehouse.events
    print(
        f"synthetic stream: {applied} transactions applied, "
        f"{len(events)} events in the ring "
        f"(totals: {events.totals or '{}'})"
    )
    rendered = events.render(level=args.level, limit=args.limit)
    if rendered:
        print(rendered)
    if args.jsonl:
        events.write_jsonl(args.jsonl, level=args.level)
        print(f"event log exported to {args.jsonl}")
    return 0


def _cmd_doctor(args) -> int:
    from repro.warehouse.doctor import plant_index_corruption, run_doctor

    database, view = _workload(args)
    warehouse, __ = _run_stream(database, view, args)
    if args.plant_index_corruption:
        if not plant_index_corruption(warehouse):
            print(
                "error: no in-process row index to corrupt on this backend",
                file=sys.stderr,
            )
            return 1
    report = run_doctor(
        warehouse,
        checkpoint_path=args.checkpoint,
        max_checkpoint_age_s=args.max_checkpoint_age,
    )
    print(report.to_json() if args.json else report.render())
    warehouse.close()
    return report.exit_code


def _cmd_top(args) -> int:
    import time as _time

    from repro.obs.top import Dashboard

    dashboard = Dashboard(args.url)
    iteration = 0
    while True:
        try:
            metrics, health = dashboard.fetch()
        except OSError as error:
            print(f"error: cannot reach {args.url}: {error}", file=sys.stderr)
            return 1
        if not args.once:
            # Clear and home (ANSI) so the dashboard repaints in place.
            print("\x1b[2J\x1b[H", end="")
        print(dashboard.render(metrics, health, args.interval))
        iteration += 1
        if args.once or (
            args.iterations is not None and iteration >= args.iterations
        ):
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_serve(args) -> int:
    from repro.obs.trace import Tracer
    from repro.serving.server import WarehouseServer
    from repro.warehouse.warehouse import Warehouse
    from repro.workloads.streams import seed_database

    database, view = _workload(args)
    if all(not table.relation for table in database.tables):
        seed_database(
            database, rows_per_table=args.rows_per_table, seed=args.seed
        )
    tracer = (
        Tracer(sample_every=args.trace_sample_every)
        if args.trace_sample_every > 0
        else None
    )
    warehouse = Warehouse(
        database,
        [view],
        tracer=tracer,
        backend=args.backend,
        planner=getattr(args, "planner", None),
    )
    server = WarehouseServer(
        warehouse,
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        retain_versions=args.retain_versions,
    )
    print(f"serving {view.name!r} on {server.url}")
    print(
        "endpoints: /query?view=" + view.name + "  /apply  /refresh  "
        "/explain  /metrics  /healthz  /events  /trace   (Ctrl-C stops)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        warehouse.close()
    return 0


def _cmd_share(args) -> int:
    from repro.core.sharing import merge_views

    database = parse_schema(_read(args.schema))
    views = []
    for index, path in enumerate(args.views):
        views.append(
            parse_view(_read(path), database, name=f"view_{index}")
        )
    shared = merge_views(views, database)
    print("-- shared auxiliary views for the class --------------------")
    print(shared.to_sql())
    for merged in shared.merged:
        print("\n-- " + merged.name + " serves: " + ", ".join(merged.serves))
    return 0


def _cmd_storage(args) -> int:
    fact = paper_fact_table_estimate(
        days=args.days,
        stores=args.stores,
        products_sold_per_day=args.sold_per_day,
        transactions_per_product=args.transactions,
    )
    selected = (
        args.selected_days if args.selected_days is not None else args.days // 2
    )
    aux = paper_auxiliary_view_estimate(
        days=selected, distinct_products_per_day=args.products
    )
    print("Storage analysis (Section 1.1 model):")
    print(f"  {fact}")
    print(f"  {aux}")
    print(f"  reduction: {aux.ratio_to(fact):,.0f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
