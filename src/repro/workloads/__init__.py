"""Synthetic workloads: the paper's retail star schema, a snowflake
variant, random databases/views for property testing, and update streams.
"""

from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    paper_example_rows,
    paper_mini_database,
    product_sales_max_view,
    product_sales_view,
)
from repro.workloads.snowflake import build_snowflake_database, category_sales_view
from repro.workloads.streams import TransactionGenerator

__all__ = [
    "RetailConfig",
    "build_retail_database",
    "product_sales_view",
    "product_sales_max_view",
    "paper_example_rows",
    "paper_mini_database",
    "build_snowflake_database",
    "category_sales_view",
    "TransactionGenerator",
]
