"""The paper's retail grocery-chain star schema (Section 1.1).

Schema::

    sale(id, timeid, productid, storeid, price)
    time(id, day, month, year)
    product(id, brand, category)
    store(id, street_address, city, country, manager)

with referential integrity from ``sale.productid``, ``sale.timeid``, and
``sale.storeid`` to the respective dimension keys.  Prices are integer
cents so maintained sums stay exact.

The paper's case-study cardinalities (Kimball): 2 years x 365 days, 300
stores, 30 000 products of which 3 000 sell per store per day, 20
transactions per sold product.  :class:`RetailConfig` scales these down
for laptop-sized runs while keeping the same shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.database import BaseTable, Database
from repro.core.view import JoinCondition, ViewDefinition
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import AggregateItem, GroupByItem
from repro.engine.types import AttributeType

#: The paper's case-study cardinalities (Section 1.1).
PAPER_DAYS = 730
PAPER_STORES = 300
PAPER_PRODUCTS = 30_000
PAPER_PRODUCTS_SOLD_PER_DAY = 3_000
PAPER_TRANSACTIONS_PER_PRODUCT = 20
PAPER_FACT_FIELDS = 5
PAPER_FIELD_BYTES = 4

BRANDS = tuple(f"brand_{i:03d}" for i in range(60))
CATEGORIES = ("dairy", "bakery", "produce", "frozen", "beverage", "household")
CITIES = ("Aalborg", "Aarhus", "Odense", "Copenhagen", "Esbjerg")
COUNTRIES = ("Denmark", "Sweden", "Germany")


@dataclass(frozen=True)
class RetailConfig:
    """Scaled-down retail warehouse parameters (paper shape preserved)."""

    days: int = 30
    stores: int = 4
    products: int = 60
    products_sold_per_day: int = 20
    transactions_per_product: int = 3
    start_year: int = 1996
    seed: int = 7

    @property
    def years(self) -> tuple[int, ...]:
        n_years = max(1, (self.days + 364) // 365)
        return tuple(self.start_year + i for i in range(n_years))

    def fact_rows(self) -> int:
        return (
            self.days
            * self.stores
            * self.products_sold_per_day
            * self.transactions_per_product
        )


def build_retail_database(config: RetailConfig = RetailConfig()) -> Database:
    """Generate the star schema at ``config`` scale."""
    rng = random.Random(config.seed)
    database = Database()
    database.add_table(_time_table(config))
    database.add_table(_product_table(config, rng))
    database.add_table(_store_table(config, rng))
    database.add_table(_sale_table(config, rng))
    return database


def _time_table(config: RetailConfig) -> BaseTable:
    rows = []
    for day_index in range(config.days):
        year = config.start_year + day_index // 365
        day_of_year = day_index % 365
        month = day_of_year // 30 + 1
        rows.append((day_index + 1, day_of_year % 30 + 1, min(month, 12), year))
    return BaseTable(
        "time",
        {
            "id": AttributeType.INT,
            "day": AttributeType.INT,
            "month": AttributeType.INT,
            "year": AttributeType.INT,
        },
        key="id",
        rows=rows,
    )


def _product_table(config: RetailConfig, rng: random.Random) -> BaseTable:
    rows = [
        (i + 1, rng.choice(BRANDS), rng.choice(CATEGORIES))
        for i in range(config.products)
    ]
    return BaseTable(
        "product",
        {
            "id": AttributeType.INT,
            "brand": AttributeType.STRING,
            "category": AttributeType.STRING,
        },
        key="id",
        rows=rows,
    )


def _store_table(config: RetailConfig, rng: random.Random) -> BaseTable:
    rows = [
        (
            i + 1,
            f"{rng.randint(1, 200)} Main Street",
            rng.choice(CITIES),
            rng.choice(COUNTRIES),
            f"manager_{i + 1:03d}",
        )
        for i in range(config.stores)
    ]
    return BaseTable(
        "store",
        {
            "id": AttributeType.INT,
            "street_address": AttributeType.STRING,
            "city": AttributeType.STRING,
            "country": AttributeType.STRING,
            "manager": AttributeType.STRING,
        },
        key="id",
        rows=rows,
    )


def _sale_table(config: RetailConfig, rng: random.Random) -> BaseTable:
    rows = []
    sale_id = 0
    for day_index in range(config.days):
        time_id = day_index + 1
        for store_id in range(1, config.stores + 1):
            sold = rng.sample(
                range(1, config.products + 1),
                min(config.products_sold_per_day, config.products),
            )
            for product_id in sold:
                for __ in range(config.transactions_per_product):
                    sale_id += 1
                    price = rng.randint(50, 5_000)  # integer cents
                    rows.append((sale_id, time_id, product_id, store_id, price))
    return BaseTable(
        "sale",
        {
            "id": AttributeType.INT,
            "timeid": AttributeType.INT,
            "productid": AttributeType.INT,
            "storeid": AttributeType.INT,
            "price": AttributeType.INT,
        },
        key="id",
        references={
            "timeid": "time",
            "productid": "product",
            "storeid": "store",
        },
        rows=rows,
    )


def product_sales_view(year: int = 1997) -> ViewDefinition:
    """The paper's running example (Section 1.1)::

        CREATE VIEW product_sales AS
        SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
               COUNT(DISTINCT brand) AS DifferentBrands
        FROM sale, time, product
        WHERE time.year = <year> AND sale.timeid = time.id
          AND sale.productid = product.id
        GROUP BY time.month
    """
    return ViewDefinition(
        name="product_sales",
        tables=("sale", "time", "product"),
        projection=(
            GroupByItem(Column("month", "time")),
            AggregateItem(
                AggregateFunction.SUM, Column("price", "sale"), alias="TotalPrice"
            ),
            AggregateItem(AggregateFunction.COUNT, None, alias="TotalCount"),
            AggregateItem(
                AggregateFunction.COUNT,
                Column("brand", "product"),
                distinct=True,
                alias="DifferentBrands",
            ),
        ),
        selection=(
            Comparison("=", Column("year", "time"), Literal(year)),
        ),
        joins=(
            JoinCondition("sale", "timeid", "time", "id"),
            JoinCondition("sale", "productid", "product", "id"),
        ),
    )


def product_sales_max_view() -> ViewDefinition:
    """The paper's Section 3.2 example::

        CREATE VIEW product_sales_max AS
        SELECT sale.productid, MAX(sale.price) AS MaxPrice,
               SUM(sale.price) AS TotalPrice, COUNT(*) AS TotalCount
        FROM sale GROUP BY sale.productid
    """
    return ViewDefinition(
        name="product_sales_max",
        tables=("sale",),
        projection=(
            GroupByItem(Column("productid", "sale")),
            AggregateItem(
                AggregateFunction.MAX, Column("price", "sale"), alias="MaxPrice"
            ),
            AggregateItem(
                AggregateFunction.SUM, Column("price", "sale"), alias="TotalPrice"
            ),
            AggregateItem(AggregateFunction.COUNT, None, alias="TotalCount"),
        ),
    )


def paper_example_rows() -> list[tuple]:
    """The example ``sale`` instance behind the paper's Tables 3 and 4.

    Table 3 shows the auxiliary view with (timeid, productid, price) plus
    a COUNT(*); these rows are a detail instance that generalizes exactly
    to those group counts: (1,1,10)x2, (1,2,10)x1, (1,3,5)x3, (2,1,10)x1,
    (2,2,5)x2, (3,1,5)x1 — with sale ids 1..10 and store 1.
    """
    grouped = [
        (1, 1, 10, 2),
        (1, 2, 10, 1),
        (1, 3, 5, 3),
        (2, 1, 10, 1),
        (2, 2, 5, 2),
        (3, 1, 5, 1),
    ]
    rows = []
    sale_id = 0
    for timeid, productid, price, count in grouped:
        for __ in range(count):
            sale_id += 1
            rows.append((sale_id, timeid, productid, 1, price))
    return rows


def paper_mini_database(sale_rows=None) -> Database:
    """A tiny hand-written instance of the Section 1.1 star schema.

    Deterministic and small enough to assert exact rows against; used by
    unit tests, the worked examples, and the Table 3/4 benchmarks.
    """
    database = Database()
    database.add_table(
        BaseTable(
            "time",
            {
                "id": AttributeType.INT,
                "day": AttributeType.INT,
                "month": AttributeType.INT,
                "year": AttributeType.INT,
            },
            key="id",
            rows=[
                (1, 1, 1, 1997),
                (2, 2, 1, 1997),
                (3, 1, 2, 1997),
                (4, 1, 1, 1996),
            ],
        )
    )
    database.add_table(
        BaseTable(
            "product",
            {
                "id": AttributeType.INT,
                "brand": AttributeType.STRING,
                "category": AttributeType.STRING,
            },
            key="id",
            rows=[
                (1, "acme", "dairy"),
                (2, "acme", "bakery"),
                (3, "bestco", "dairy"),
            ],
        )
    )
    database.add_table(
        BaseTable(
            "store",
            {
                "id": AttributeType.INT,
                "street_address": AttributeType.STRING,
                "city": AttributeType.STRING,
                "country": AttributeType.STRING,
                "manager": AttributeType.STRING,
            },
            key="id",
            rows=[(1, "1 Main St", "Aalborg", "Denmark", "ann")],
        )
    )
    if sale_rows is None:
        sale_rows = [
            # id, timeid, productid, storeid, price
            (1, 1, 1, 1, 10),
            (2, 1, 1, 1, 10),
            (3, 1, 2, 1, 10),
            (4, 1, 3, 1, 5),
            (5, 2, 1, 1, 10),
            (6, 2, 2, 1, 5),
            (7, 2, 2, 1, 5),
            (8, 3, 1, 1, 5),
            (9, 4, 1, 1, 99),  # 1996: filtered out by the view
        ]
    database.add_table(
        BaseTable(
            "sale",
            {
                "id": AttributeType.INT,
                "timeid": AttributeType.INT,
                "productid": AttributeType.INT,
                "storeid": AttributeType.INT,
                "price": AttributeType.INT,
            },
            key="id",
            references={
                "timeid": "time",
                "productid": "product",
                "storeid": "store",
            },
            rows=sale_rows,
        )
    )
    return database
