"""A snowflake-schema workload: sale -> product -> category, sale -> time.

Snowflake structures also have tree-shaped extended join graphs
(Section 3.3), so Algorithm 3.2 applies unchanged; this workload
exercises multi-level Need sets and chained join reductions.
"""

from __future__ import annotations

import random

from repro.catalog.database import BaseTable, Database
from repro.core.view import JoinCondition, ViewDefinition
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column
from repro.engine.operators import AggregateItem, GroupByItem
from repro.engine.types import AttributeType


def build_snowflake_database(
    categories: int = 5,
    products_per_category: int = 8,
    days: int = 20,
    sales_per_day: int = 30,
    seed: int = 11,
) -> Database:
    """Generate the snowflake schema at the requested scale."""
    rng = random.Random(seed)
    database = Database()
    database.add_table(
        BaseTable(
            "category",
            {
                "id": AttributeType.INT,
                "department": AttributeType.STRING,
                "margin_bps": AttributeType.INT,
            },
            key="id",
            rows=[
                (i + 1, rng.choice(("food", "household", "leisure")), rng.randint(100, 900))
                for i in range(categories)
            ],
        )
    )
    n_products = categories * products_per_category
    database.add_table(
        BaseTable(
            "product",
            {
                "id": AttributeType.INT,
                "categoryid": AttributeType.INT,
                "name": AttributeType.STRING,
            },
            key="id",
            references={"categoryid": "category"},
            rows=[
                (i + 1, i % categories + 1, f"product_{i + 1:03d}")
                for i in range(n_products)
            ],
        )
    )
    database.add_table(
        BaseTable(
            "time",
            {
                "id": AttributeType.INT,
                "month": AttributeType.INT,
                "year": AttributeType.INT,
            },
            key="id",
            rows=[(d + 1, d // 30 + 1, 1997) for d in range(days)],
        )
    )
    sale_rows = []
    sale_id = 0
    for day in range(1, days + 1):
        for __ in range(sales_per_day):
            sale_id += 1
            sale_rows.append(
                (
                    sale_id,
                    day,
                    rng.randint(1, n_products),
                    rng.randint(1, 9) ,
                    rng.randint(100, 2_000),
                )
            )
    database.add_table(
        BaseTable(
            "sale",
            {
                "id": AttributeType.INT,
                "timeid": AttributeType.INT,
                "productid": AttributeType.INT,
                "quantity": AttributeType.INT,
                "amount": AttributeType.INT,
            },
            key="id",
            references={"timeid": "time", "productid": "product"},
            rows=sale_rows,
        )
    )
    return database


def category_sales_view() -> ViewDefinition:
    """Monthly revenue per category over the snowflake schema."""
    return ViewDefinition(
        name="category_sales",
        tables=("sale", "time", "product", "category"),
        projection=(
            GroupByItem(Column("month", "time")),
            GroupByItem(Column("department", "category")),
            AggregateItem(
                AggregateFunction.SUM, Column("amount", "sale"), alias="Revenue"
            ),
            AggregateItem(
                AggregateFunction.SUM, Column("quantity", "sale"), alias="Units"
            ),
            AggregateItem(AggregateFunction.COUNT, None, alias="Transactions"),
        ),
        joins=(
            JoinCondition("sale", "timeid", "time", "id"),
            JoinCondition("sale", "productid", "product", "id"),
            JoinCondition("product", "categoryid", "category", "id"),
        ),
    )


def category_sales_by_product_view() -> ViewDefinition:
    """Per-product revenue: the product key group-by enables fact-table
    elimination when referential integrity holds everywhere."""
    return ViewDefinition(
        name="product_revenue",
        tables=("sale", "product"),
        projection=(
            GroupByItem(Column("id", "product")),
            AggregateItem(
                AggregateFunction.SUM, Column("amount", "sale"), alias="Revenue"
            ),
            AggregateItem(AggregateFunction.COUNT, None, alias="Transactions"),
        ),
        joins=(JoinCondition("sale", "productid", "product", "id"),),
    )
