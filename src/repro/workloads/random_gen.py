"""Randomized databases, views, and streams for property-based testing.

:func:`random_scenario` builds, from a single seed, a tree-shaped schema
(1-4 tables), a random GPSJ view over it (random group-bys including
keys, random aggregates including MIN/MAX and DISTINCT, random local
conditions), initial data, and a transaction generator whose updates
respect each table's exposed-updates declaration.  The self-maintenance
property test then streams transactions and checks the maintained view
against recomputation at every step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.database import BaseTable, Database
from repro.core.view import JoinCondition, ViewDefinition
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import AggregateItem, GroupByItem, ProjectionItem
from repro.engine.types import AttributeType
from repro.workloads.streams import TransactionGenerator

_VALUE_DOMAIN = 6  # small domains force duplicates and group collisions


@dataclass
class Scenario:
    """One randomized test universe."""

    database: Database
    view: ViewDefinition
    generator: TransactionGenerator
    seed: int
    schema_plan: "list[_TablePlan]" = None


def random_scenario(
    seed: int,
    max_tables: int = 4,
    max_extra_attributes: int = 3,
    initial_rows: int = 12,
) -> Scenario:
    """Deterministically build a random scenario from ``seed``."""
    rng = random.Random(seed)
    schema_plan = _plan_schema(rng, max_tables, max_extra_attributes)
    database = _build_database(rng, schema_plan, initial_rows)
    view = _build_view(rng, database, schema_plan)
    frozen = _frozen_attributes(view, database)
    generator = TransactionGenerator(
        database, seed=rng.randrange(1 << 30), frozen_attributes=frozen
    )
    return Scenario(database, view, generator, seed, schema_plan)


def random_view(scenario: Scenario, seed: int) -> ViewDefinition:
    """An additional random view over an existing scenario's schema."""
    rng = random.Random(seed)
    return _build_view(rng, scenario.database, scenario.schema_plan)


# ----------------------------------------------------------------------
# Schema.
# ----------------------------------------------------------------------


@dataclass
class _TablePlan:
    name: str
    parent: str | None          # the table referencing this one
    fk_attribute: str | None    # attribute of parent pointing here
    extra_attributes: list[str]
    has_integrity: bool
    exposed_updates: bool


def _plan_schema(
    rng: random.Random, max_tables: int, max_extra: int
) -> list[_TablePlan]:
    count = rng.randint(1, max_tables)
    plans = [
        _TablePlan(
            "t0",
            parent=None,
            fk_attribute=None,
            extra_attributes=[f"a{j}" for j in range(rng.randint(1, max_extra))],
            has_integrity=True,
            exposed_updates=False,
        )
    ]
    for index in range(1, count):
        parent = rng.choice(plans)
        name = f"t{index}"
        plans.append(
            _TablePlan(
                name,
                parent=parent.name,
                fk_attribute=f"fk_{name}",
                extra_attributes=[
                    f"b{index}{j}" for j in range(rng.randint(1, max_extra))
                ],
                has_integrity=rng.random() < 0.8,
                exposed_updates=rng.random() < 0.25,
            )
        )
    return plans


def _build_database(
    rng: random.Random, plans: list[_TablePlan], initial_rows: int
) -> Database:
    database = Database()
    # Build leaves-to-root so foreign keys can point at existing rows.
    for plan in reversed(plans):
        columns: dict[str, AttributeType] = {"id": AttributeType.INT}
        references: dict[str, str] = {}
        for child in plans:
            if child.parent == plan.name:
                columns[child.fk_attribute] = AttributeType.INT
                if child.has_integrity:
                    references[child.fk_attribute] = child.name
        for attribute in plan.extra_attributes:
            columns[attribute] = AttributeType.INT
        table = BaseTable(
            plan.name,
            columns,
            key="id",
            references=references,
            exposed_updates=plan.exposed_updates,
        )
        database.add_table(table)
    # Populate root-last ordering does not matter for generation; fill
    # every table with rows whose FKs point at existing keys.
    for plan in reversed(plans):
        table = database.table(plan.name)
        rows = []
        n_rows = rng.randint(max(2, initial_rows // 2), initial_rows)
        for key in range(1, n_rows + 1):
            row = []
            for attribute in table.schema:
                if attribute.name == "id":
                    row.append(key)
                    continue
                child = _child_for_fk(plans, plan.name, attribute.name)
                if child is not None:
                    targets = sorted(database.table(child).key_values())
                    row.append(rng.choice(targets))
                else:
                    row.append(rng.randint(0, _VALUE_DOMAIN))
            rows.append(tuple(row))
        table.relation.insert_all(rows)
    database.validate_integrity()
    return database


def _child_for_fk(
    plans: list[_TablePlan], parent: str, attribute: str
) -> str | None:
    for plan in plans:
        if plan.parent == parent and plan.fk_attribute == attribute:
            return plan.name
    return None


# ----------------------------------------------------------------------
# View.
# ----------------------------------------------------------------------


def _build_view(
    rng: random.Random, database: Database, plans: list[_TablePlan]
) -> ViewDefinition:
    tables = _pick_connected_tables(rng, plans)
    joins = tuple(
        JoinCondition(plan.parent, plan.fk_attribute, plan.name, "id")
        for plan in plans
        if plan.name in tables and plan.parent in tables
    )
    projection = _pick_projection(rng, database, plans, tables)
    selection = _pick_selection(rng, plans, tables)
    having = _pick_having(rng, projection)
    return ViewDefinition(
        name=f"v_{rng.randrange(1 << 16)}",
        tables=tuple(tables),
        projection=projection,
        selection=selection,
        joins=joins,
        having=having,
    )


def _pick_having(rng: random.Random, projection) -> Comparison | None:
    """Occasionally add a HAVING filter over a COUNT output column."""
    if rng.random() >= 0.2:
        return None
    counts = [
        item
        for item in projection
        if isinstance(item, AggregateItem)
        and item.func is AggregateFunction.COUNT
        and not item.distinct
    ]
    if not counts:
        return None
    target = rng.choice(counts)
    return Comparison(">=", Column(target.output_name), Literal(rng.randint(1, 3)))


def _pick_connected_tables(
    rng: random.Random, plans: list[_TablePlan]
) -> list[str]:
    picked = ["t0"]
    candidates = [p for p in plans if p.parent is not None]
    rng.shuffle(candidates)
    for plan in candidates:
        if plan.parent in picked and rng.random() < 0.7:
            picked.append(plan.name)
    # Keep schema order for determinism of the view definition.
    order = [p.name for p in plans]
    return sorted(picked, key=order.index)


def _pick_projection(
    rng: random.Random,
    database: Database,
    plans: list[_TablePlan],
    tables: list[str],
) -> tuple[ProjectionItem, ...]:
    items: list[ProjectionItem] = []
    group_candidates: list[Column] = []
    aggregate_candidates: list[Column] = []
    for name in tables:
        plan = next(p for p in plans if p.name == name)
        group_candidates.append(Column("id", name))
        for attribute in plan.extra_attributes:
            group_candidates.append(Column(attribute, name))
            aggregate_candidates.append(Column(attribute, name))
    rng.shuffle(group_candidates)
    for column in group_candidates[: rng.randint(0, 3)]:
        items.append(GroupByItem(column, alias=f"g_{column.qualifier}_{column.name}"))
    n_aggregates = rng.randint(1, 4)
    functions = list(AggregateFunction)
    for index in range(n_aggregates):
        if not aggregate_candidates or rng.random() < 0.25:
            items.append(AggregateItem(AggregateFunction.COUNT, None, alias=f"agg{index}"))
            continue
        func = rng.choice(functions)
        column = rng.choice(aggregate_candidates)
        distinct = func is not AggregateFunction.AVG and rng.random() < 0.2
        items.append(AggregateItem(func, column, distinct, alias=f"agg{index}"))
    if not any(isinstance(item, AggregateItem) for item in items):
        items.append(AggregateItem(AggregateFunction.COUNT, None, alias="agg_cnt"))
    return tuple(items)


def _pick_selection(
    rng: random.Random, plans: list[_TablePlan], tables: list[str]
) -> tuple[Comparison, ...]:
    selection = []
    for name in tables:
        plan = next(p for p in plans if p.name == name)
        if plan.extra_attributes and rng.random() < 0.4:
            attribute = rng.choice(plan.extra_attributes)
            threshold = rng.randint(1, _VALUE_DOMAIN)
            op = rng.choice(("<=", ">=", "<", ">"))
            selection.append(
                Comparison(op, Column(attribute, name), Literal(threshold))
            )
    return tuple(selection)


def _frozen_attributes(
    view: ViewDefinition, database: Database
) -> dict[str, set[str]]:
    """Attributes whose updates would be *exposed* on tables declared
    exposed-update-free: the stream generator must not touch them.

    Only tables some other table *depends on* (key-joined with
    referential integrity and no declared exposed updates — Section 2.2)
    are join-reduction targets, so only their selection/join-condition
    attributes must stay frozen to keep the declaration honest.  Keys
    are never updated by the generator, so join attributes on the
    referenced side need no entry.
    """
    frozen: dict[str, set[str]] = {}
    for join in view.joins:
        referencing = database.table(join.left_table)
        referenced = database.table(join.right_table)
        constraint = referencing.reference_for(join.left_attribute)
        depended_on = (
            constraint is not None
            and constraint.referenced == join.right_table
            and not referenced.exposed_updates
        )
        if not depended_on:
            continue
        condition_attrs = set()
        for condition in view.local_conditions(join.right_table):
            condition_attrs.update(c.name for c in condition.columns())
        # Foreign keys of the depended-on table (snowflake middle tables)
        # are join-condition attributes too: changing them is exposed.
        condition_attrs.update(
            j.left_attribute for j in view.joins_from(join.right_table)
        )
        if condition_attrs:
            frozen.setdefault(join.right_table, set()).update(condition_attrs)
    return frozen
