"""Random, referential-integrity-preserving update streams.

The generator inspects a live :class:`Database` and produces
transactions mixing fact insertions/deletions, dimension insertions,
deletions of unreferenced dimension tuples, and dimension updates
(propagated as delete + insert, as the paper prescribes for exposed
updates).  Every transaction leaves the database integrity-valid, which
is the contract the warehouse maintenance discipline assumes.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.catalog.database import BaseTable, Database
from repro.engine.deltas import Delta, Transaction
from repro.engine.types import AttributeType


def generic_value_makers(
    database: Database,
) -> dict[str, Callable[[random.Random, int], tuple]]:
    """Type-driven row factories for every table of ``database``.

    Keys get the generator's fresh key, foreign keys get placeholder
    values (the generator rebinds them to live referenced keys), and the
    remaining attributes get small random values of their declared type
    — enough to drive a synthetic stream over a schema parsed from bare
    DDL, where no example rows exist to resample.
    """

    def maker_for(table: BaseTable) -> Callable[[random.Random, int], tuple]:
        key_index = table.key_index()

        def make(rng: random.Random, fresh_key: int) -> tuple:
            row = []
            for index, attribute in enumerate(table.schema):
                if index == key_index:
                    row.append(fresh_key)
                elif attribute.atype is AttributeType.INT:
                    row.append(rng.randint(1, 100))
                elif attribute.atype is AttributeType.FLOAT:
                    row.append(round(rng.uniform(1.0, 100.0), 2))
                elif attribute.atype is AttributeType.BOOL:
                    row.append(rng.random() < 0.5)
                else:
                    row.append(f"{attribute.name}_{rng.randint(0, 19)}")
            return tuple(row)

        return make

    return {table.name: maker_for(table) for table in database.tables}


def seed_database(
    database: Database, rows_per_table: int = 20, seed: int = 0
) -> None:
    """Populate an empty (or sparse) database with valid synthetic rows.

    Tables are filled referenced-first so every foreign key binds to a
    live key; one transaction per table keeps integrity checkable at
    each step.  Used by the CLI observability commands to make a bare
    DDL schema streamable.
    """
    rng = random.Random(seed)
    makers = generic_value_makers(database)
    generator = TransactionGenerator(database, seed=seed, value_makers=makers)
    for name in _referenced_first(database):
        table = database.table(name)
        key_index = table.key_index()
        rows = []
        for __ in range(rows_per_table):
            row = list(makers[name](rng, generator.fresh_key(name)))
            for constraint in table.references:
                if constraint.referenced not in database:
                    continue
                targets = sorted(
                    database.table(constraint.referenced).key_values(),
                    key=repr,
                )
                if not targets:
                    raise ValueError(
                        f"cannot seed {name!r}: referenced table "
                        f"{constraint.referenced!r} is empty"
                    )
                index = table.schema.index_of(constraint.attribute)
                row[index] = rng.choice(targets)
            rows.append(tuple(row))
        database.apply(Transaction.of(Delta(name, tuple(rows), ())))


def _referenced_first(database: Database) -> list[str]:
    """Table names ordered so referenced tables precede referencing ones."""
    ordered: list[str] = []
    visiting: set[str] = set()

    def visit(name: str) -> None:
        if name in ordered or name in visiting:
            return
        visiting.add(name)
        for constraint in database.table(name).references:
            if constraint.referenced in database:
                visit(constraint.referenced)
        visiting.discard(name)
        ordered.append(name)

    for table in database.tables:
        visit(table.name)
    return ordered


class TransactionGenerator:
    """Generates valid transactions against ``database`` (and applies them)."""

    def __init__(
        self,
        database: Database,
        seed: int = 0,
        value_makers: dict[str, Callable[[random.Random, int], tuple]] | None = None,
        frozen_attributes: dict[str, set[str]] | None = None,
    ):
        """``value_makers[table](rng, fresh_key)`` builds a brand-new row
        for insertions; tables without a maker get insertions synthesized
        by resampling an existing row under a fresh key.
        ``frozen_attributes[table]`` lists attributes updates must never
        change — used to honour a table's declared absence of *exposed
        updates* (Section 2.1 of the paper)."""
        self.database = database
        self.rng = random.Random(seed)
        self.value_makers = value_makers or {}
        self.frozen_attributes = frozen_attributes or {}
        self._next_key = {
            table.name: self._max_key(table) + 1 for table in database.tables
        }

    @staticmethod
    def _max_key(table: BaseTable) -> int:
        index = table.key_index()
        keys = [row[index] for row in table.relation if isinstance(row[index], int)]
        return max(keys, default=0)

    def fresh_key(self, table: str) -> int:
        key = self._next_key[table]
        self._next_key[table] = key + 1
        return key

    # ------------------------------------------------------------------
    # Transaction synthesis.
    # ------------------------------------------------------------------

    def next_transaction(
        self,
        max_inserts: int = 5,
        max_deletes: int = 3,
        update_probability: float = 0.3,
    ) -> Transaction:
        """Build one valid transaction (without applying it)."""
        plan = _TransactionPlan(self.database)
        tables = list(self.database.tables)
        self.rng.shuffle(tables)
        for table in tables:
            choice = self.rng.random()
            if choice < 0.45:
                self._plan_insertions(table, plan, max_inserts)
            elif choice < 0.75:
                self._plan_deletions(table, plan, max_deletes)
            elif self.rng.random() < update_probability:
                self._plan_update(table, plan)
        return plan.transaction()

    def step(self, **kwargs) -> Transaction:
        """Generate one transaction and apply it to the source database."""
        transaction = self.next_transaction(**kwargs)
        self.database.apply(transaction)
        return transaction

    # ------------------------------------------------------------------
    # Per-table planning.
    # ------------------------------------------------------------------

    def _plan_insertions(
        self, table: BaseTable, plan: "_TransactionPlan", limit: int
    ) -> None:
        for __ in range(self.rng.randint(1, limit)):
            row = self._make_row(table, plan)
            if row is not None:
                plan.insert(table, row)

    def _plan_deletions(
        self, table: BaseTable, plan: "_TransactionPlan", limit: int
    ) -> None:
        candidates = plan.deletable_rows(table)
        if not candidates:
            return
        count = min(len(candidates), self.rng.randint(1, limit))
        for row in self.rng.sample(candidates, count):
            plan.delete(table, row)

    def _plan_update(self, table: BaseTable, plan: "_TransactionPlan") -> None:
        """Update one non-key attribute of one row (delete + insert)."""
        candidates = [
            row for row in table.relation if not plan.is_deleted(table.name, row)
        ]
        if not candidates or len(table.schema) < 2:
            return
        old = self.rng.choice(candidates)
        key_index = table.key_index()
        frozen = self.frozen_attributes.get(table.name, set())
        mutable = [
            i
            for i in range(len(old))
            if i != key_index and table.schema[i].name not in frozen
        ]
        if not mutable:
            return
        index = self.rng.choice(mutable)
        new = list(old)
        attribute = table.schema[index].name
        constraint = table.reference_for(attribute)
        if constraint is not None and constraint.referenced in self.database:
            targets = plan.live_keys(constraint.referenced)
            if not targets:
                return
            new[index] = self.rng.choice(targets)
            plan.use_key(constraint.referenced, new[index])
        else:
            new[index] = self._perturb(new[index])
        if tuple(new) == old:
            return
        plan.delete(table, old, cascade_guard=False)
        plan.insert(table, tuple(new))

    def _perturb(self, value: object) -> object:
        if isinstance(value, bool):
            return not value
        if isinstance(value, int):
            return value + self.rng.randint(1, 10)
        if isinstance(value, float):
            return value + self.rng.random()
        return f"{value}_u{self.rng.randint(0, 99)}"

    def _make_row(self, table: BaseTable, plan: "_TransactionPlan") -> tuple | None:
        maker = self.value_makers.get(table.name)
        if maker is not None:
            row = list(maker(self.rng, self.fresh_key(table.name)))
        elif table.relation:
            row = list(self.rng.choice(table.relation.rows))
            row[table.key_index()] = self.fresh_key(table.name)
        else:
            return None
        for constraint in table.references:
            if constraint.referenced not in self.database:
                continue
            targets = plan.live_keys(constraint.referenced)
            if not targets:
                return None
            index = table.schema.index_of(constraint.attribute)
            row[index] = self.rng.choice(targets)
            plan.use_key(constraint.referenced, row[index])
        return tuple(row)


class _TransactionPlan:
    """Accumulates per-table inserts/deletes while keeping the final
    state referentially valid: keys referenced by planned inserts cannot
    be deleted, and planned-deleted keys cannot be referenced."""

    def __init__(self, database: Database):
        self._database = database
        self._inserted: dict[str, list[tuple]] = {}
        self._deleted: dict[str, list[tuple]] = {}
        self._deleted_keys: dict[str, set] = {}
        self._used_keys: dict[str, set] = {}

    def insert(self, table: BaseTable, row: tuple) -> None:
        self._inserted.setdefault(table.name, []).append(row)

    def delete(self, table: BaseTable, row: tuple, cascade_guard: bool = True) -> None:
        self._deleted.setdefault(table.name, []).append(row)
        if cascade_guard:
            key = row[table.key_index()]
            self._deleted_keys.setdefault(table.name, set()).add(key)

    def is_deleted(self, table: str, row: tuple) -> bool:
        return row in self._deleted.get(table, ())

    def use_key(self, table: str, key: object) -> None:
        self._used_keys.setdefault(table, set()).add(key)

    def live_keys(self, table: str) -> list:
        """Keys of ``table`` guaranteed to exist in the final state."""
        existing = self._database.table(table).key_values()
        existing -= self._deleted_keys.get(table, set())
        return sorted(existing, key=repr)

    def deletable_rows(self, table: BaseTable) -> list[tuple]:
        """Rows no live (or planned) tuple references and no plan touches."""
        used: set[object] = set(self._used_keys.get(table.name, set()))
        for other in self._database.tables:
            for constraint in other.references:
                if constraint.referenced != table.name:
                    continue
                index = other.schema.index_of(constraint.attribute)
                for row in other.relation:
                    if not self.is_deleted(other.name, row):
                        used.add(row[index])
                for row in self._inserted.get(other.name, ()):
                    used.add(row[index])
        key_index = table.key_index()
        already = self._deleted.get(table.name, [])
        return [
            row
            for row in table.relation
            if row[key_index] not in used and row not in already
        ]

    def transaction(self) -> Transaction:
        deltas = [
            Delta(
                name,
                tuple(self._inserted.get(name, ())),
                tuple(self._deleted.get(name, ())),
            )
            for name in {*self._inserted, *self._deleted}
        ]
        return Transaction.of(*deltas)
