"""Batch kernels and typed column stores for the columnar backend.

This module is deliberately free of plan-node knowledge: it provides
the *data layout* (:class:`ColumnStore` — one typed column per schema
attribute, a liveness mask, and a free list of recycled row ids) and
the *batch operators* the columnar backend fuses plans into —
selection vectors, hash equijoin/semijoin/antijoin via key-vector
probes, and the distributive aggregate fold over the reconstructor's
:class:`~repro.core.rewrite.SymbolicProgram`.  Everything operates on
whole delta batches; per-row work is a few dict probes and list
appends, never an interpreter dispatch.

Type mapping (chosen for bit-identical parity with the row engine):

* FLOAT columns live in ``array('d')`` — C doubles round-trip Python
  floats exactly and pack 8 bytes/value.
* INT, STRING, and BOOL columns stay plain Python lists: ``array('q')``
  would overflow arbitrary-precision ints, and a packed bool column
  returns ``0``/``1`` where the row engine yields ``True``/``False``.

The liveness mask doubles as the null mask: a cleared bit means the
row id holds no value (it is parked on the free list and will be
recycled by the next insert), so columns never shift and row ids stay
stable for the hash indexes that reference them.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.rewrite import AggregateCategory, GroupAccumulator, SymbolicProgram
from repro.engine.schema import Schema
from repro.engine.types import AttributeType


class ColumnStore:
    """Typed columns with a liveness mask and free-list row recycling.

    Rows are addressed by *row id* (rid).  Deleting releases the rid to
    the free list; the next append writes into the freed slot instead
    of growing the columns, so long-running churn does not leak
    storage and rid-keyed indexes stay dense.
    """

    __slots__ = ("schema", "columns", "live", "free", "list_columns")

    def __init__(self, schema: Schema):
        self.schema = schema
        self.columns: tuple = tuple(
            array("d") if attribute.atype is AttributeType.FLOAT else []
            for attribute in schema
        )
        #: The object-holding columns (everything but array('d')), cached
        #: so release() nulls them without a per-call type scan.
        self.list_columns: tuple = tuple(
            column for column in self.columns if type(column) is list
        )
        #: 1 = live, 0 = hole (deleted / recyclable): the null mask.
        self.live = bytearray()
        self.free: list[int] = []

    def __len__(self) -> int:
        return len(self.live) - len(self.free)

    @property
    def capacity(self) -> int:
        """Physical slots allocated (live rows plus free-list holes)."""
        return len(self.live)

    def append(self, row: Sequence) -> int:
        """Store ``row``, recycling a freed slot when one exists."""
        free = self.free
        if free:
            rid = free.pop()
            for column, value in zip(self.columns, row):
                column[rid] = value
            self.live[rid] = 1
            return rid
        rid = len(self.live)
        for column, value in zip(self.columns, row):
            column.append(value)
        self.live.append(1)
        return rid

    def release(self, rid: int) -> None:
        """Mark ``rid`` dead and park it for recycling."""
        self.live[rid] = 0
        self.free.append(rid)
        # Drop object references in list columns so deleted strings /
        # big ints are collectable; array('d') slots just keep a stale
        # double under a dead mask bit.
        for column in self.list_columns:
            column[rid] = None

    def row(self, rid: int) -> tuple:
        return tuple(column[rid] for column in self.columns)

    def rows(self, rids: Iterable[int]) -> list[tuple]:
        columns = self.columns
        return [tuple(column[rid] for column in columns) for rid in rids]

    def live_rids(self) -> Iterator[int]:
        return (rid for rid, bit in enumerate(self.live) if bit)

    def all_rows(self) -> list[tuple]:
        columns = self.columns
        return [
            tuple(column[rid] for column in columns)
            for rid, bit in enumerate(self.live)
            if bit
        ]


# ----------------------------------------------------------------------
# Batch kernels over row batches.
# ----------------------------------------------------------------------


def selection_vector(
    rows: Sequence[tuple], predicate: Callable[[tuple], object]
) -> list[int]:
    """Positions of the rows satisfying ``predicate`` (σ as a vector)."""
    return [i for i, row in enumerate(rows) if predicate(row)]


def gather(rows: Sequence[tuple], selection: Sequence[int]) -> list[tuple]:
    """Materialize a selection vector back into a row batch."""
    return [rows[i] for i in selection]


def build_key_index(
    rows: Sequence[tuple], positions: Sequence[int]
) -> dict:
    """``key -> [row positions]`` over ``rows`` (the key-vector index
    every hash join kernel probes).  Single-column keys index the bare
    value, multi-column keys a tuple — matching the probe side."""
    index: dict = {}
    if len(positions) == 1:
        position = positions[0]
        for i, row in enumerate(rows):
            index.setdefault(row[position], []).append(i)
    else:
        for i, row in enumerate(rows):
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(i)
    return index


def _probe_key(row: tuple, positions: Sequence[int]):
    if len(positions) == 1:
        return row[positions[0]]
    return tuple(row[p] for p in positions)


def hash_equijoin(
    left_rows: Sequence[tuple],
    right_rows: Sequence[tuple],
    left_positions: Sequence[int],
    right_positions: Sequence[int],
) -> list[tuple]:
    """Build on the right batch, probe with the left: concatenated rows."""
    index = build_key_index(right_rows, right_positions)
    out: list[tuple] = []
    for row in left_rows:
        matches = index.get(_probe_key(row, left_positions))
        if matches:
            for i in matches:
                out.append(row + right_rows[i])
    return out


def hash_semijoin(
    left_rows: Sequence[tuple],
    keys,
    left_positions: Sequence[int],
) -> list[tuple]:
    """Left rows with a partner in ``keys`` (a set-like of join keys)."""
    if len(left_positions) == 1:
        position = left_positions[0]
        return [row for row in left_rows if row[position] in keys]
    return [
        row
        for row in left_rows
        if tuple(row[p] for p in left_positions) in keys
    ]


def hash_antijoin(
    left_rows: Sequence[tuple],
    keys,
    left_positions: Sequence[int],
) -> list[tuple]:
    """Left rows with *no* partner in ``keys`` (the ▷ complement)."""
    if len(left_positions) == 1:
        position = left_positions[0]
        return [row for row in left_rows if row[position] not in keys]
    return [
        row
        for row in left_rows
        if tuple(row[p] for p in left_positions) not in keys
    ]


def fold_groups(
    rows: Iterable[tuple],
    program: SymbolicProgram,
    combiners: dict,
    groups: dict,
) -> int:
    """Fold a joined batch into per-group accumulators (the distributive
    aggregate kernel).  ``combiners`` maps extremum slots to min/max;
    ``groups`` maps key tuples to :class:`GroupAccumulator`, exactly the
    structure :meth:`Reconstructor.run_program` produces — the two folds
    must stay indistinguishable for backend parity.  Returns the number
    of rows folded."""
    key_positions = program.key_positions
    count_position = program.count_position
    sum_items = program.sum_items
    raw_items = program.raw_items
    folded = 0
    for row in rows:
        folded += 1
        key = tuple(row[p] for p in key_positions)
        acc = groups.get(key)
        if acc is None:
            acc = groups[key] = GroupAccumulator()
        multiplicity = 1 if count_position is None else row[count_position]
        acc.multiplicity += multiplicity
        if sum_items:
            sums = acc.sums
            for slot, position, scaled in sum_items:
                value = row[position]
                if scaled:
                    value = value * multiplicity
                sums[slot] = sums.get(slot, 0) + value
        for slot, category, position in raw_items:
            value = row[position]
            if category is AggregateCategory.EXTREMUM:
                current = acc.extrema.get(slot)
                acc.extrema[slot] = (
                    value if current is None else combiners[slot](current, value)
                )
            else:
                acc.distincts.setdefault(slot, set()).add(value)
    return folded
