"""Sharded execution: delta propagation partitioned across N shards.

The paper's auxiliary-view construction is embarrassingly shardable.
Local reduction is per-row, duplicate compression is per-group, and the
propagation join touches exactly one root (fact) row per joined row —
so hash-partitioning the root auxiliary view by its pinned (group-by)
columns routes every delta row to exactly one shard, and the shards'
contributions merge *exactly*: multiplicities and sums add, extrema
combine with the view's own MIN/MAX, and auxiliary bags concatenate.

Routing is derived from the join graph, never guessed:

* the **root** auxiliary view is *partitioned* by the hash of its
  pinned columns (the compression plan's group key), keeping every
  compressed group wholly inside one shard so per-shard folds stay
  exact;
* when the root was *eliminated* (its auxiliary view is the view
  itself), root delta rows are partitioned by whole-row hash — each
  joined row still involves exactly one delta row, so any deterministic
  partition of the delta partitions the join;
* every **dimension** auxiliary view is *replicated* — dimensions are
  the small side of the star, and replication makes each shard's
  propagation join self-contained (no cross-shard probes, ever).

Two execution modes share one API.  ``serial`` loops over the shards
in-process: deterministic, debuggable, and transparent to the
:class:`~repro.testing.faults.FaultInjector` harness (per-shard
materializations record into the same undo log the interpreter uses).
``parallel`` keeps N persistent worker processes (forked once, fed
pickled coalesced deltas over pipes); each worker compiles its own
per-shard :class:`~repro.plan.maintenance.DeltaPlans` once and applies
its partition locally, with a token-stack of undo scopes standing in
for SQLite's savepoints so a shard failure rolls every shard back and
``apply`` stays all-or-nothing.

The deterministic partitioner is ``crc32(repr(key))`` — the builtin
``hash`` is salted per process and would route the same row to
different shards in parent and workers.

Tracing crosses the process boundary: when the transaction is traced,
serial mode wraps every per-shard plan run in a ``shard:<k>`` span
(inner plan-node spans nest inside), and parallel mode asks each worker
to record its stage into a temporary per-shard trace whose serialized
spans ride back on the reply and are grafted — re-parented, re-id'd,
shard-labeled — under the parent's open stage span
(:meth:`~repro.obs.trace.Trace.graft`).  Either way one traced apply
renders a single connected tree with no per-shard holes.
"""

from __future__ import annotations

import multiprocessing
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter

from repro.backends.base import Backend, BackendError
from repro.engine.relation import Relation
from repro.engine.undolog import UndoLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace
from repro.plan.executor import ExecutionContext
from repro.plan.physical import AccumulateNode, DeltaScanNode, KeyProbeSemiJoinNode

#: Metric names exported by the backend's registry.
SHARD_ROUTED_ROWS = "repro_shard_routed_rows_total"
SHARD_COUNT_GAUGE = "repro_shard_count"
SHARD_QUEUE_DEPTH = "repro_shard_worker_queue_depth"
#: Seconds of plan execution attributable to each shard (serial mode
#: times every per-shard run; the scaling benchmark projects the
#: critical path from these — total over max — without needing N cores).
SHARD_COMPUTE_SECONDS = "repro_shard_compute_seconds_total"
#: Seconds spent in replicated single-runs — work every worker repeats
#: in parallel mode, so it bounds the achievable speedup (Amdahl).
SHARD_REPLICATED_SECONDS = "repro_shard_replicated_seconds_total"


# ----------------------------------------------------------------------
# Routing, derived from the join graph.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TableRouting:
    """How one table's delta and auxiliary rows reach the shards."""

    table: str
    mode: str  # "partition" | "replicate"
    #: Qualified pinned columns the partition hash reads (empty for
    #: replicated tables, and for whole-row routing of an eliminated root).
    columns: tuple[str, ...]
    #: Positions of ``columns`` in the table's *base* schema (delta rows).
    base_indexes: tuple[int, ...]


@dataclass(frozen=True)
class ViewRouting:
    """The per-table routing decisions for one maintained view."""

    namespace: str
    root: str
    tables: dict


def derive_routing(view, graph, aux_set, namespace: str) -> ViewRouting:
    """Partition the root by its pinned (group) columns; replicate the
    dimensions.  See the module docstring for why this is exact."""
    root = graph.root
    tables: dict[str, TableRouting] = {}
    for table in view.tables:
        if table != root:
            tables[table] = TableRouting(table, "replicate", (), ())
        elif aux_set.has_view(root):
            aux = aux_set.for_table(root)
            pinned = tuple(aux.plan.pinned)
            base_indexes = tuple(
                aux.base_schema.index_of(name) for name in pinned
            )
            tables[root] = TableRouting(root, "partition", pinned, base_indexes)
        else:
            # Root eliminated: nothing compressed to keep together, so
            # partition its delta by whole-row hash (contributions of
            # distinct delta rows are additive, hence exact).
            tables[root] = TableRouting(root, "partition", (), ())
    return ViewRouting(namespace, root, tables)


def shard_of(values: tuple, n_shards: int) -> int:
    """Deterministic, cross-process stable shard of a routing key."""
    return zlib.crc32(repr(values).encode("utf-8")) % n_shards


def partition_rows(rows, indexes: tuple[int, ...], n_shards: int) -> list[list]:
    """Split ``rows`` by the hash of the values at ``indexes`` (whole
    row when ``indexes`` is empty)."""
    parts: list[list] = [[] for _ in range(n_shards)]
    if indexes:
        for row in rows:
            parts[shard_of(tuple(row[i] for i in indexes), n_shards)].append(row)
    else:
        for row in rows:
            parts[shard_of(row, n_shards)].append(row)
    return parts


def partition_output_rows(rows, width: int, n_shards: int) -> list[list]:
    """Split auxiliary *output* rows, whose first ``width`` values are
    the pinned columns in pinned order (whole row when ``width`` is 0 —
    the eliminated-root projection)."""
    parts: list[list] = [[] for _ in range(n_shards)]
    if width:
        for row in rows:
            parts[shard_of(row[:width], n_shards)].append(row)
    else:
        for row in rows:
            parts[shard_of(row, n_shards)].append(row)
    return parts


def merge_contributions(merged: dict, part: dict, combiners: dict) -> None:
    """Fold one shard's ``{group key: GroupAccumulator}`` into ``merged``.

    Exact by construction: multiplicities and sums add, extrema combine
    with the view's own MIN/MAX semantics (``combiners`` maps projection
    index to ``min``/``max``), and DISTINCT collections union.
    """
    for key, acc in part.items():
        into = merged.get(key)
        if into is None:
            merged[key] = acc
            continue
        into.multiplicity += acc.multiplicity
        for index, value in acc.sums.items():
            into.sums[index] = into.sums.get(index, 0) + value
        for index, value in acc.extrema.items():
            if index in into.extrema:
                into.extrema[index] = combiners[index](into.extrema[index], value)
            else:
                into.extrema[index] = value
        for index, values in acc.distincts.items():
            if index in into.distincts:
                into.distincts[index] |= values
            else:
                into.distincts[index] = values


def _fold_stat_record(target: dict, record: dict) -> None:
    """Accumulate one worker's observed-node record into ``target``
    (additive fields sum, the max tracks the max, the mean re-derives)."""
    target["executions"] += record["executions"]
    target["rows_out"] += record["rows_out"]
    target["rows_out_max"] = max(target["rows_out_max"], record["rows_out_max"])
    target["total_ms"] = round(target["total_ms"] + record["total_ms"], 3)
    target["reuses"] += record["reuses"]
    executions = target["executions"]
    target["mean_rows_out"] = (
        round(target["rows_out"] / executions, 3) if executions else 0.0
    )


def _merge_stat_records(target: list, records: list) -> None:
    """Merge one worker's ``collect_node_stats`` list into the parent's.

    Matching is by node description + label with per-key occurrence
    counters, not by position: the parent's plan (stage roots only in
    parallel mode) and each worker's per-shard plan may differ in shape
    (cost planning consults shard-local statistics), so the k-th
    occurrence of an operator folds into the parent's k-th occurrence
    of the same operator, and unmatched worker nodes are appended.
    """
    index: dict[tuple, list[dict]] = {}
    for record in target:
        index.setdefault((record["node"], record["label"]), []).append(record)
    used: dict[tuple, int] = {}
    for record in records:
        key = (record["node"], record["label"])
        position = used.get(key, 0)
        used[key] = position + 1
        matches = index.get(key, [])
        if position < len(matches):
            _fold_stat_record(matches[position], record)
        else:
            appended = {**record, "shard_only": True}
            target.append(appended)
            index.setdefault(key, []).append(appended)


@contextmanager
def _shard_span(trace, shard: int | None):
    """A ``shard:<k>`` span around one per-shard plan run (``None``
    shard = the single replicated run); no-op when untraced."""
    if trace is None:
        yield
        return
    name = "replicated" if shard is None else f"shard:{shard}"
    with trace.span(name, kind="shard", shard=shard):
        yield


def _result_size(result) -> int | None:
    if result is None:
        return None
    try:
        return len(result)
    except TypeError:  # pragma: no cover - defensive
        return None


def _extremum_combiners(view) -> dict:
    """``projection index -> min|max`` for the view's extremum items."""
    from repro.engine.aggregates import AggregateFunction
    from repro.engine.operators import AggregateItem

    combiners = {}
    for index, item in enumerate(view.projection):
        if isinstance(item, AggregateItem) and item.func in (
            AggregateFunction.MIN,
            AggregateFunction.MAX,
        ):
            combiners[index] = (
                min if item.func is AggregateFunction.MIN else max
            )
    return combiners


# ----------------------------------------------------------------------
# Serial-mode materializations.
# ----------------------------------------------------------------------


class _SerialPartitionedMaterialization:
    """The root auxiliary view as N per-shard core materializations.

    Shard contexts read the per-shard parts directly (``.parts``); the
    maintainer-facing surface (``relation``, ``key_values``, ...) serves
    merged views, concatenated lazily and cached until the next apply.
    """

    def __init__(self, aux, use_indexes, namespace, backend, routing):
        from repro.core.maintenance import make_materialization

        self.aux = aux
        self.schema = aux.output_schema()
        self.use_indexes = use_indexes
        self.namespace = namespace
        self.routing = routing
        self._backend = backend
        self.parts = [
            make_materialization(aux, use_indexes=use_indexes)
            for _ in range(backend.n_shards)
        ]
        self._cache: Relation | None = None

    def _drop_caches(self) -> None:
        self._cache = None

    def load(self, relation: Relation) -> None:
        from repro.core.maintenance import SelfMaintenanceError

        if relation.schema != self.schema:
            raise SelfMaintenanceError(
                f"loaded relation does not match {self.aux.name} schema"
            )
        width = len(self.routing.columns)
        parts = partition_output_rows(
            relation.rows, width, len(self.parts)
        )
        for part, rows in zip(self.parts, parts):
            part.load(Relation(self.schema, rows, validate=False))
        self._cache = relation.copy()

    def relation(self) -> Relation:
        if self._cache is None:
            rows: list[tuple] = []
            for part in self.parts:
                rows.extend(part.relation().rows)
            self._cache = Relation(self.schema, rows, validate=False)
        return self._cache

    def apply(self, base_rows, sign: int) -> None:
        self._cache = None
        parts = partition_rows(
            base_rows, self.routing.base_indexes, len(self.parts)
        )
        for part, rows in zip(self.parts, parts):
            if rows:
                part.apply(rows, sign)

    def begin_undo(self, log: UndoLog) -> None:
        log.record(self._drop_caches)
        for part in self.parts:
            part.begin_undo(log)

    def end_undo(self) -> None:
        for part in self.parts:
            part.end_undo()

    def key_values(self, column: str):
        merged: set = set()
        for part in self.parts:
            merged.update(part.key_values(column))
        return merged

    def rows_matching(self, column: str, values: set) -> list[tuple]:
        rows: list[tuple] = []
        for part in self.parts:
            rows.extend(part.rows_matching(column, values))
        return rows

    def size_bytes(self) -> int:
        return sum(part.size_bytes() for part in self.parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts)


# ----------------------------------------------------------------------
# Parallel mode: the worker side.
# ----------------------------------------------------------------------


class _WorkerRuntime:
    """One maintained view inside one worker process.

    A throwaway :class:`SelfMaintainer` over a rows-free catalog clone
    rebuilds the exact materialization classes and compiled
    :class:`DeltaPlans` of the parent — per-shard plans compiled once
    per worker, reused for every transaction.
    """

    def __init__(self, payload):
        from repro.core.maintenance import SelfMaintainer
        from repro.sql import parse_view

        view_sql, catalog_spec, append_only, hotpath = payload
        database = _build_catalog(catalog_spec)
        view = parse_view(view_sql, database)
        self.maintainer = SelfMaintainer(
            view,
            database,
            append_only=append_only,
            initialize=False,
            hotpath=hotpath,
            backend="memory",
        )
        #: Execution contexts per (table, sign), rebuilt on every
        #: ``delta`` command so stage results memoize within one delta.
        self.contexts: dict = {}


def _catalog_spec(database) -> list:
    """A picklable, rows-free description of the base-table catalog."""
    return [
        (
            table.name,
            [(a.name, a.atype) for a in table.schema],
            table.key,
            {c.attribute: c.referenced for c in table.references},
            table.exposed_updates,
        )
        for table in database.tables
    ]


def _build_catalog(spec):
    from repro.catalog.database import BaseTable, Database

    database = Database()
    for name, columns, key, references, exposed_updates in spec:
        database.add_table(
            BaseTable(name, dict(columns), key, references, exposed_updates)
        )
    return database


def _all_materializations(runtimes):
    for runtime in runtimes.values():
        yield from runtime.maintainer._materializations.values()


def _rebind_undo(runtimes, scopes) -> None:
    """Point every materialization's undo hook at the innermost open
    scope (or close the hooks when none remain)."""
    if scopes:
        log = scopes[-1][1]
        for materialization in _all_materializations(runtimes):
            materialization.end_undo()
            materialization.begin_undo(log)
    else:
        for materialization in _all_materializations(runtimes):
            materialization.end_undo()


def _handle_command(runtimes, scopes, message, shard: int = 0):
    """Execute one parent command inside the worker; returns the reply
    payload.  Raises to report a failure (the loop pickles it back)."""
    command = message[0]
    if command == "prepare_view":
        __, namespace, payload = message
        runtimes[namespace] = _WorkerRuntime(payload)
        if scopes:
            # A view registered inside an open transaction joins the
            # innermost scope so a later rollback restores it too.
            _rebind_undo(runtimes, scopes)
        return None
    if command == "load":
        __, namespace, table, rows = message
        materialization = runtimes[namespace].maintainer._materializations[table]
        materialization.load(
            Relation(materialization.schema, rows, validate=False)
        )
        return None
    if command == "delta":
        __, namespace, table, sign, rows = message
        runtime = runtimes[namespace]
        maintainer = runtime.maintainer
        schema = maintainer._tables[table].schema
        runtime.contexts[(table, sign)] = ExecutionContext(
            providers=maintainer._materializations,
            perf=maintainer.perf,
            deltas={(table, sign): Relation(schema, rows, validate=False)},
        )
        return None
    if command == "stage":
        __, namespace, table, sign, stage = message[:5]
        traced = len(message) > 5 and bool(message[5])
        runtime = runtimes[namespace]
        plans = runtime.maintainer.delta_plans(table, sign)
        node = {
            "local": plans.local,
            "reduce": plans.reduce,
            "propagate": plans.propagate,
        }[stage]
        context = runtime.contexts[(table, sign)]
        trace = None
        if traced:
            # Record this shard's plan spans into a throwaway trace; the
            # serialized spans ride the reply and the parent grafts them
            # under its open stage span — no per-shard trace holes.
            trace = Trace(0, f"shard:{shard}", kind="shard", shard=shard)
            context.trace = trace
        try:
            result = node.run(context)
        finally:
            if traced:
                context.trace = None
        spans = None
        if trace is not None:
            trace.finish()
            spans = trace.to_dicts()
        if isinstance(result, dict):
            return ("acc", result, spans)
        return ("rows", result.rows, spans)
    if command == "apply_reduced":
        # Apply this shard's own memoized reduce result — the parent
        # already holds the merged rows, so none cross the pipe again.
        __, namespace, table, sign = message
        runtime = runtimes[namespace]
        plans = runtime.maintainer.delta_plans(table, sign)
        reduced = plans.reduce.run(runtime.contexts[(table, sign)])
        runtime.maintainer._materializations[table].apply(reduced.rows, sign)
        return len(reduced)
    if command == "apply":
        __, namespace, table, rows, sign = message
        runtimes[namespace].maintainer._materializations[table].apply(rows, sign)
        return None
    if command == "begin":
        __, token = message
        log = UndoLog()
        scopes.append((token, log))
        _rebind_undo(runtimes, scopes)
        return None
    if command == "rollback":
        __, token = message
        undone = 0
        while scopes and scopes[-1][0] >= token:
            __, log = scopes.pop()
            undone += log.rollback()
        _rebind_undo(runtimes, scopes)
        return undone
    if command == "commit":
        scopes.clear()
        _rebind_undo(runtimes, scopes)
        return None
    if command == "relation":
        __, namespace, table = message
        return runtimes[namespace].maintainer._materializations[table].relation().rows
    if command == "key_values":
        __, namespace, table, column = message
        return set(
            runtimes[namespace].maintainer._materializations[table].key_values(column)
        )
    if command == "rows_matching":
        __, namespace, table, column, values = message
        return runtimes[namespace].maintainer._materializations[table].rows_matching(
            column, values
        )
    if command == "len":
        __, namespace, table = message
        return len(runtimes[namespace].maintainer._materializations[table])
    if command == "size_bytes":
        __, namespace, table = message
        return runtimes[namespace].maintainer._materializations[table].size_bytes()
    if command == "metrics":
        merged = MetricsRegistry()
        for runtime in runtimes.values():
            merged.merge(runtime.maintainer.perf.registry)
        return merged
    if command == "runtime_stats":
        __, namespace = message
        return runtimes[namespace].maintainer.runtime_stats()
    raise BackendError(f"unknown shard worker command {command!r}")


def _worker_main(conn, shard: int, n_shards: int) -> None:
    """The persistent worker loop: recv command, reply ``("ok", ...)``
    or ``("error", exception)``.  Exactly one reply per command keeps
    the pipes in lockstep even across failures."""
    runtimes: dict[str, _WorkerRuntime] = {}
    scopes: list = []
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        if message[0] == "close":
            conn.send(("ok", None))
            conn.close()
            return
        try:
            result = _handle_command(runtimes, scopes, message, shard)
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            try:
                conn.send(("error", exc))
            except Exception:
                conn.send(
                    ("error", BackendError(f"{type(exc).__name__}: {exc}"))
                )
            continue
        conn.send(("ok", result))


def _mp_context():
    try:
        # Fork keeps worker start cheap and inherits the imported modules.
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return multiprocessing.get_context("spawn")


class _Worker:
    __slots__ = ("shard", "process", "conn", "pending")

    def __init__(self, shard, process, conn):
        self.shard = shard
        self.process = process
        self.conn = conn
        self.pending = 0


# ----------------------------------------------------------------------
# Parallel mode: the parent-side materialization proxy.
# ----------------------------------------------------------------------


class _ParallelShardedMaterialization:
    """Parent-side proxy for one auxiliary view living in the workers.

    Writes scatter partitioned rows (or broadcast replicated ones);
    reads fetch on demand and cache until the next mutation.  Data
    rollback is the backend's token scope — ``begin_undo`` only records
    the parent cache drop.
    """

    def __init__(self, backend, aux, use_indexes, namespace, routing):
        self.aux = aux
        self.schema = aux.output_schema()
        self.use_indexes = use_indexes
        self.namespace = namespace
        self.routing = routing
        self._backend = backend
        self._cache: Relation | None = None
        self._key_cache: dict[str, set] = {}
        #: ``(rows list identity, sign)`` of the last merged reduce
        #: result — lets ``apply`` tell the workers to fold their own
        #: memoized partition instead of re-shipping the rows.
        self._pending_reduced: tuple | None = None

    def _drop_caches(self) -> None:
        self._cache = None
        self._key_cache.clear()
        self._pending_reduced = None

    def load(self, relation: Relation) -> None:
        from repro.core.maintenance import SelfMaintenanceError

        if relation.schema != self.schema:
            raise SelfMaintenanceError(
                f"loaded relation does not match {self.aux.name} schema"
            )
        backend = self._backend
        self._drop_caches()
        if self.routing.mode == "partition":
            parts = partition_output_rows(
                relation.rows, len(self.routing.columns), backend.n_shards
            )
            backend._scatter(
                [
                    ("load", self.namespace, self.aux.table, rows)
                    for rows in parts
                ]
            )
        else:
            backend._broadcast(
                ("load", self.namespace, self.aux.table, list(relation.rows))
            )
        self._cache = relation.copy()

    def relation(self) -> Relation:
        if self._cache is None:
            message = ("relation", self.namespace, self.aux.table)
            if self.routing.mode == "partition":
                rows = [
                    row
                    for part in self._backend._broadcast(message)
                    for row in part
                ]
            else:
                rows = self._backend._first(message)
            self._cache = Relation(self.schema, rows, validate=False)
        return self._cache

    def apply(self, base_rows, sign: int) -> None:
        backend = self._backend
        pending = self._pending_reduced
        self._drop_caches()
        if (
            pending is not None
            and pending[0] is base_rows
            and pending[1] == sign
        ):
            backend._broadcast(
                ("apply_reduced", self.namespace, self.aux.table, sign)
            )
            return
        if self.routing.mode == "partition":
            parts = partition_rows(
                base_rows, self.routing.base_indexes, backend.n_shards
            )
            backend._scatter(
                [
                    ("apply", self.namespace, self.aux.table, rows, sign)
                    for rows in parts
                ]
            )
        else:
            backend._broadcast(
                ("apply", self.namespace, self.aux.table, list(base_rows), sign)
            )

    def begin_undo(self, log: UndoLog) -> None:
        log.record(self._drop_caches)

    def end_undo(self) -> None:
        pass

    def key_values(self, column: str):
        cached = self._key_cache.get(column)
        if cached is None:
            message = ("key_values", self.namespace, self.aux.table, column)
            if self.routing.mode == "partition":
                cached = set()
                for part in self._backend._broadcast(message):
                    cached |= part
            else:
                cached = self._backend._first(message)
            self._key_cache[column] = cached
        return cached

    def rows_matching(self, column: str, values: set) -> list[tuple]:
        message = (
            "rows_matching",
            self.namespace,
            self.aux.table,
            column,
            set(values),
        )
        if self.routing.mode == "partition":
            return [
                row
                for part in self._backend._broadcast(message)
                for row in part
            ]
        return self._backend._first(message)

    def size_bytes(self) -> int:
        return self.relation().size_bytes()

    def __len__(self) -> int:
        message = ("len", self.namespace, self.aux.table)
        if self.routing.mode == "partition":
            return sum(self._backend._broadcast(message))
        return self._backend._first(message)


# ----------------------------------------------------------------------
# The backend.
# ----------------------------------------------------------------------


class ShardedBackend(Backend):
    """N-way sharded composition of the in-memory backend.

    ``parallel=False`` (serial) loops over per-shard materializations
    in-process; ``parallel=True`` drives N persistent worker processes.
    Results are row-multiset-identical to :class:`MemoryBackend` either
    way — the differential suite in ``tests/test_backends_sharded.py``
    pins that down.
    """

    name = "sharded"

    def __init__(self, n_shards: int = 2, parallel: bool = False):
        if n_shards < 1:
            raise BackendError("sharded backend needs at least 1 shard")
        self.n_shards = n_shards
        self.parallel = parallel
        self._routings: dict[str, ViewRouting] = {}
        self._combiners: dict[str, dict] = {}
        self._registry = MetricsRegistry()
        self._registry.gauge(SHARD_COUNT_GAUGE).set(n_shards)
        self._routed = self._registry.counter_group(SHARD_ROUTED_ROWS, "shard")
        self._compute = self._registry.counter_group(
            SHARD_COMPUTE_SECONDS, "shard"
        )
        self._replicated = self._registry.counter(SHARD_REPLICATED_SECONDS)
        self._workers: list[_Worker] = []
        self._open_tokens: list[int] = []
        self._txn_token = 0
        self._closed = False
        if parallel:
            self._start_workers()

    # -- view preparation ------------------------------------------------

    def prepare_view(
        self,
        view,
        database,
        graph,
        aux_set,
        namespace: str = "",
        append_only: bool = False,
        hotpath: bool = True,
    ) -> None:
        namespace = namespace or view.name
        routing = derive_routing(view, graph, aux_set, namespace)
        self._routings[namespace] = routing
        self._combiners[namespace] = _extremum_combiners(view)
        if self.parallel:
            payload = (
                view.to_sql(),
                _catalog_spec(database),
                append_only,
                hotpath,
            )
            self._broadcast(("prepare_view", namespace, payload))

    def make_materialization(self, aux, use_indexes=True, namespace=""):
        routing = self._routings.get(namespace)
        if routing is None:
            raise BackendError(
                f"sharded backend has no routing for namespace {namespace!r} "
                "(prepare_view was not called)"
            )
        table_routing = routing.tables.get(aux.table) or TableRouting(
            aux.table, "replicate", (), ()
        )
        if self.parallel:
            return _ParallelShardedMaterialization(
                self, aux, use_indexes, namespace, table_routing
            )
        if table_routing.mode == "partition":
            return _SerialPartitionedMaterialization(
                aux, use_indexes, namespace, self, table_routing
            )
        from repro.core.maintenance import make_materialization

        materialization = make_materialization(aux, use_indexes=use_indexes)
        # One replica shared by the maintainer and every shard context
        # (serial shards run in-process, so replication is free).
        materialization.namespace = namespace
        return materialization

    # -- plan execution --------------------------------------------------

    def run_plan(self, node, ctx: ExecutionContext):
        memo = ctx.memo
        key = id(node)
        if key in memo:
            if ctx.trace is not None:
                ctx.trace.instant(
                    node.label, kind="plan", cache_hit=True, cache="memo"
                )
            return memo[key]
        shared = ctx.shared
        share_key = node.share_key
        if shared is not None and share_key is not None and share_key in shared:
            cached = shared[share_key]
            ctx.count("plan_shared_hits")
            node.stats.record_reuse()
            if ctx.trace is not None:
                span = ctx.trace.instant(
                    node.label, kind="plan", cache_hit=True, cache="shared"
                )
                span.rows_out = _result_size(cached)
            memo[key] = cached
            return cached
        if ctx.trace is None:
            result = self._run_stage(node, ctx)
        else:
            with ctx.trace.span(node.label, kind="plan") as span:
                result = self._run_stage(node, ctx)
                span.rows_out = _result_size(result)
        memo[key] = result
        if shared is not None and share_key is not None:
            shared[share_key] = result
        return result

    def _run_stage(self, node, ctx):
        if not self.parallel:
            return self._run_serial_stage(node, ctx)
        # Workers time their own plan nodes; the parent records the
        # whole stage (pipe round-trips included) like the SQLite
        # backend records each generated statement.
        started = perf_counter()
        result = self._run_parallel_stage(node, ctx)
        elapsed = perf_counter() - started
        if ctx.perf is not None:
            ctx.perf.seconds[node._timer_key] += elapsed
        node.stats.record(_result_size(result), elapsed)
        return result

    def _stage_of(self, node) -> str:
        if isinstance(node, AccumulateNode):
            return "propagate"
        if isinstance(node, KeyProbeSemiJoinNode):
            return "reduce"
        return "local"

    def _delta_identity(self, node):
        for leaf in node.walk():
            if isinstance(leaf, DeltaScanNode):
                return leaf.table, leaf.sign
        raise BackendError(f"plan stage {node.label!r} scans no delta")

    def _namespace_of(self, ctx) -> str | None:
        if ctx.providers:
            for provider in ctx.providers.values():
                namespace = getattr(provider, "namespace", None)
                if namespace is not None:
                    return namespace
        return None

    def _table_routing(self, routing: ViewRouting, table: str) -> TableRouting:
        table_routing = routing.tables.get(table)
        if table_routing is None:
            table_routing = TableRouting(table, "replicate", (), ())
        return table_routing

    # -- serial stage execution ------------------------------------------

    def _run_serial_stage(self, node, ctx):
        namespace = self._namespace_of(ctx)
        if namespace is None:
            # No sharded providers to split across (a fully-eliminated
            # single-table view): the in-process run is already exact.
            return node.run(ctx)
        routing = self._routings[namespace]
        table, sign = self._delta_identity(node)
        table_routing = self._table_routing(routing, table)
        contexts = self._serial_contexts(ctx, table, sign, table_routing)
        if isinstance(node, AccumulateNode):
            merged: dict = {}
            combiners = self._combiners[namespace]
            for shard, shard_ctx in enumerate(contexts):
                started = perf_counter()
                with _shard_span(ctx.trace, shard):
                    contribution = node.run(shard_ctx)
                self._compute[str(shard)] += perf_counter() - started
                merge_contributions(merged, contribution, combiners)
            return merged
        if table_routing.mode == "replicate":
            # Every shard holds the full replicated delta; one run is
            # the whole answer (a union would multiply the rows).
            started = perf_counter()
            with _shard_span(ctx.trace, None):
                result = node.run(contexts[0])
            self._replicated.inc(perf_counter() - started)
            return result
        rows: list[tuple] = []
        for shard, shard_ctx in enumerate(contexts):
            started = perf_counter()
            with _shard_span(ctx.trace, shard):
                part = node.run(shard_ctx)
            self._compute[str(shard)] += perf_counter() - started
            rows.extend(part.rows)
        return Relation(ctx.delta(table, sign).schema, rows, validate=False)

    def _serial_contexts(self, ctx, table, sign, table_routing):
        marker = ("sharded-ctxs", table, sign)
        cached = ctx.memo.get(marker)
        if cached is not None:
            return cached
        delta = ctx.delta(table, sign)
        if table_routing.mode == "partition":
            parts = partition_rows(
                delta.rows, table_routing.base_indexes, self.n_shards
            )
            self._count_routed(parts)
            deltas = [
                Relation(delta.schema, rows, validate=False) for rows in parts
            ]
        else:
            deltas = [delta] * self.n_shards
        contexts = [
            ExecutionContext(
                providers=self._shard_providers(ctx, shard),
                perf=ctx.perf,
                deltas={(table, sign): deltas[shard]},
                trace=ctx.trace,
            )
            for shard in range(self.n_shards)
        ]
        ctx.memo[marker] = contexts
        return contexts

    def _shard_providers(self, ctx, shard: int) -> dict:
        providers = {}
        for table, materialization in ctx.providers.items():
            parts = getattr(materialization, "parts", None)
            providers[table] = parts[shard] if parts is not None else materialization
        return providers

    # -- parallel stage execution ----------------------------------------

    def _run_parallel_stage(self, node, ctx):
        namespace = self._namespace_of(ctx)
        if namespace is None:
            return node.run(ctx)
        routing = self._routings[namespace]
        table, sign = self._delta_identity(node)
        table_routing = self._table_routing(routing, table)
        marker = ("sharded-delta", table, sign)
        if marker not in ctx.memo:
            delta = ctx.delta(table, sign)
            if table_routing.mode == "partition":
                parts = partition_rows(
                    delta.rows, table_routing.base_indexes, self.n_shards
                )
                self._count_routed(parts)
                self._scatter(
                    [
                        ("delta", namespace, table, sign, rows)
                        for rows in parts
                    ]
                )
            else:
                self._broadcast(
                    ("delta", namespace, table, sign, list(delta.rows))
                )
            ctx.memo[marker] = True
        stage = self._stage_of(node)
        traced = ctx.trace is not None
        replies = self._broadcast(
            ("stage", namespace, table, sign, stage, traced)
        )
        results = [
            self._graft_reply(ctx, shard, reply)
            for shard, reply in enumerate(replies)
        ]
        if stage == "propagate":
            merged: dict = {}
            combiners = self._combiners[namespace]
            for __, payload in results:
                merge_contributions(merged, payload, combiners)
            return merged
        if table_routing.mode == "replicate":
            rows = results[0][1]
        else:
            rows = [row for __, payload in results for row in payload]
        relation = Relation(
            ctx.delta(table, sign).schema, rows, validate=False
        )
        if stage == "reduce" and ctx.providers:
            provider = ctx.providers.get(table)
            if isinstance(provider, _ParallelShardedMaterialization):
                provider._pending_reduced = (relation.rows, sign)
        return relation

    def _graft_reply(self, ctx, shard: int, reply):
        """Strip the span payload off one worker's stage reply, grafting
        it into the open trace (re-parented under the stage span,
        labeled with the shard)."""
        spans = reply[2] if len(reply) > 2 else None
        if spans and ctx.trace is not None:
            ctx.trace.graft(spans, shard=shard)
        return reply[0], reply[1]

    def execute_view_plan(self, plan, database):
        return plan.physical.run(ExecutionContext(resolver=database.relation))

    # -- transactions ----------------------------------------------------

    def begin_transaction(self, log) -> None:
        if not self.parallel:
            return
        self._txn_token += 1
        token = self._txn_token
        self._open_tokens.append(token)
        self._broadcast(("begin", token))
        log.record(lambda token=token: self._rollback_to(token))

    def _rollback_to(self, token: int) -> None:
        if token not in self._open_tokens:
            return  # scope already rolled back (or committed)
        del self._open_tokens[self._open_tokens.index(token):]
        self._broadcast(("rollback", token))

    def commit(self) -> None:
        if not self.parallel or not self._open_tokens:
            return
        self._open_tokens.clear()
        self._broadcast(("commit",))

    # -- worker plumbing -------------------------------------------------

    def _start_workers(self) -> None:
        context = _mp_context()
        for shard in range(self.n_shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn, shard, self.n_shards),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            process.start()
            child_conn.close()
            self._workers.append(_Worker(shard, process, parent_conn))

    def _send(self, worker: _Worker, message) -> None:
        worker.conn.send(message)
        worker.pending += 1
        self._registry.gauge(
            SHARD_QUEUE_DEPTH, shard=str(worker.shard)
        ).set(worker.pending)

    def _recv(self, worker: _Worker):
        try:
            reply = worker.conn.recv()
        except EOFError:
            if self.events is not None:
                self.events.error("shard.worker_died", shard=worker.shard)
            raise BackendError(
                f"shard worker {worker.shard} died unexpectedly"
            ) from None
        worker.pending -= 1
        self._registry.gauge(
            SHARD_QUEUE_DEPTH, shard=str(worker.shard)
        ).set(worker.pending)
        return reply

    def _collect(self, workers):
        # Always drain one reply per sent command — even after an error —
        # so the pipes stay in lockstep for the rollback that follows.
        error = None
        results = []
        for worker in workers:
            reply = self._recv(worker)
            if reply[0] == "error":
                if error is None:
                    error = reply[1]
            else:
                results.append(reply[1])
        if error is not None:
            raise error
        return results

    def _broadcast(self, message):
        for worker in self._workers:
            self._send(worker, message)
        return self._collect(self._workers)

    def _scatter(self, messages):
        paired = list(zip(self._workers, messages))
        for worker, message in paired:
            self._send(worker, message)
        return self._collect([worker for worker, __ in paired])

    def _first(self, message):
        worker = self._workers[0]
        self._send(worker, message)
        reply = self._recv(worker)
        if reply[0] == "error":
            raise reply[1]
        return reply[1]

    # -- observability ---------------------------------------------------

    def _count_routed(self, parts) -> None:
        routed = self._routed
        for shard, rows in enumerate(parts):
            if rows:
                routed[str(shard)] += len(rows)

    def metrics_registry(self):
        merged = MetricsRegistry()
        merged.merge(self._registry)
        if self.parallel and self._workers and not self._closed:
            for registry in self._broadcast(("metrics",)):
                merged.merge(registry)
        return merged

    def merge_runtime_stats(self, namespace: str, stats: dict) -> dict:
        """``explain --analyze`` support: in parallel mode the parent
        only observes stage roots (workers run the inner plan nodes),
        so fold every worker's per-node ActualStats into the payload —
        the report shows the whole fleet's observations, not shard 0's.
        Serial mode runs the parent's own plan nodes per shard and needs
        no merge."""
        if not self.parallel or not self._workers or self._closed:
            return stats
        for payload in self._broadcast(("runtime_stats", namespace)):
            for shape, records in payload.items():
                _merge_stat_records(stats.setdefault(shape, []), records)
        return stats

    def describe(self, namespace: str = "") -> str | None:
        mode = "parallel" if self.parallel else "serial"
        routing = self._routings.get(namespace)
        if routing is None:
            return f"backend: sharded — {self.n_shards} shards ({mode})"
        details = []
        root_routing = routing.tables.get(routing.root)
        if root_routing is not None and root_routing.mode == "partition":
            key = (
                ", ".join(root_routing.columns)
                if root_routing.columns
                else "whole delta row"
            )
            details.append(f"{routing.root} partitioned by ({key})")
        replicated = sorted(
            table
            for table, table_routing in routing.tables.items()
            if table_routing.mode == "replicate"
        )
        if replicated:
            details.append("replicated: " + ", ".join(replicated))
        return (
            f"backend: sharded — {self.n_shards} shards ({mode}); "
            + "; ".join(details)
        )

    def close(self) -> None:
        if self._closed or not self.parallel:
            self._closed = True
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("close",))
                worker.conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            worker.conn.close()
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
        self._workers = []
