"""The execution-backend interface and the in-memory reference backend.

A :class:`Backend` owns the *physical* side of a warehouse: where
auxiliary views live, how a compiled plan runs, and how a transaction's
mutations are made atomic.  Everything above it — derivation, planning,
group reconstruction, observability — is backend-independent, which is
exactly the separation the plan layer was built for.

:class:`MemoryBackend` delegates to the existing Python interpreter
(:meth:`~repro.plan.physical.PhysicalNode.run` and the
materializations of :mod:`repro.core.maintenance`); atomicity stays
with the :class:`~repro.engine.undolog.UndoLog`.  The SQLite backend
(:mod:`repro.backends.sqlite`) replaces both with generated SQL and
native savepoint rollback.
"""

from __future__ import annotations

import os

from repro.plan.executor import ExecutionContext

#: Backends selectable by name (``sqlite`` also accepts ``sqlite:<path>``;
#: ``sharded`` accepts ``sharded:<N>`` and ``sharded:<N>:parallel``).
BACKEND_NAMES = ("memory", "sqlite", "sharded", "columnar")

#: The parameterized spec forms each backend accepts, for error messages
#: and ``--help`` text.
BACKEND_SPECS = (
    "memory",
    "sqlite[:<path>]",
    "sharded:<N>[:parallel]",
    "columnar",
)

#: Environment variable consulted when no backend is given explicitly.
BACKEND_ENV = "REPRO_BACKEND"


class BackendError(Exception):
    """Raised for unknown backend names or backend-level failures."""


class Backend:
    """Interface every execution backend implements."""

    name = "abstract"

    #: Structured event log the owning warehouse binds (None until
    #: :meth:`bind_observability`); backends narrate operational
    #: incidents (worker death, recovery) into it when present.
    events = None

    def bind_observability(self, events=None) -> None:
        """Attach observability sinks owned by the warehouse.  Called
        once at warehouse construction; ``events`` is an
        :class:`~repro.obs.log.EventLog` (or None to leave the backend
        silent).  The default just stores it; backends with their own
        processes or connections may override to propagate further."""
        if events is not None:
            self.events = events

    def prepare_view(
        self,
        view,
        database,
        graph,
        aux_set,
        namespace: str = "",
        append_only: bool = False,
        hotpath: bool = True,
    ) -> None:
        """Called once per maintained view, *before* any
        :meth:`make_materialization` for it: backends that need
        view-level physical decisions (e.g. the sharded backend's
        routing, derived from the join graph) hook in here.  The default
        is a no-op."""

    def make_materialization(self, aux, use_indexes=True, namespace=""):
        """A live materialization of auxiliary view ``aux`` on this
        backend (the object :class:`~repro.core.maintenance.SelfMaintainer`
        loads, probes, and applies deltas to).  ``namespace`` scopes the
        backing storage per maintained view."""
        raise NotImplementedError

    def run_plan(self, node, ctx: ExecutionContext):
        """Execute one physical stage root against ``ctx``'s bindings."""
        raise NotImplementedError

    def execute_view_plan(self, plan, database):
        """Evaluate a :class:`~repro.plan.planner.ViewPlan` from base
        tables (recomputation, not maintenance)."""
        raise NotImplementedError

    def execute_delta_plans(self, plans, ctx: ExecutionContext) -> dict:
        """Convenience: run a full :class:`DeltaPlans` pipeline, stage
        by stage, returning ``{"local": ..., "reduce": ...,
        "propagate": ...}`` (``propagate`` omitted when the pipeline has
        none)."""
        results = {
            "local": self.run_plan(plans.local, ctx),
            "reduce": self.run_plan(plans.reduce, ctx),
        }
        if plans.propagate is not None:
            results["propagate"] = self.run_plan(plans.propagate, ctx)
        return results

    # ------------------------------------------------------------------
    # Transaction boundaries.
    # ------------------------------------------------------------------

    def begin_transaction(self, log) -> None:
        """Open the backend's atomic scope for one warehouse transaction
        and register its rollback with ``log`` (an
        :class:`~repro.engine.undolog.UndoLog`)."""

    def end_transaction(self) -> None:
        """Close the per-transaction undo hooks (success or failure)."""

    def commit(self) -> None:
        """Durably commit every scope opened since the last commit."""

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def physical_detail_size_bytes(self, materializations) -> int | None:
        """Bytes the backend's own storage engine uses for the given
        materializations, or ``None`` when the backend has no physical
        measure beyond the paper's attribute-width model."""
        return None

    def describe(self, namespace: str = "") -> str | None:
        """One-line physical description of how this backend executes
        ``namespace`` (shown by ``explain``), or ``None`` when there is
        nothing physical to report beyond the plans themselves."""
        return None

    def metrics_registry(self):
        """A snapshot :class:`~repro.obs.metrics.MetricsRegistry` of
        backend-level metrics (e.g. shard routing skew), or ``None``
        when the backend keeps none.  Merged into
        :meth:`Warehouse.metrics_registry`."""
        return None

    def merge_runtime_stats(self, namespace: str, stats: dict) -> dict:
        """Fold backend-side plan observations into a maintainer's
        ``runtime_stats()`` payload for ``namespace``.  Backends that
        execute plans in this process (memory, sqlite) already
        accumulated everything on the caller's plan nodes and return
        ``stats`` unchanged; a distributed backend (the sharded pool's
        parallel mode) merges the per-worker ActualStats here so
        ``explain --analyze`` reports the whole fleet, not shard 0."""
        return stats

    def close(self) -> None:
        """Release backend resources."""


class MemoryBackend(Backend):
    """The existing Python interpreter, unchanged, behind the interface."""

    name = "memory"

    def make_materialization(self, aux, use_indexes=True, namespace=""):
        from repro.core.maintenance import make_materialization

        return make_materialization(aux, use_indexes=use_indexes)

    def run_plan(self, node, ctx: ExecutionContext):
        return node.run(ctx)

    def execute_view_plan(self, plan, database):
        return plan.physical.run(ExecutionContext(resolver=database.relation))


def resolve_backend_name(spec: str | None = None) -> str:
    """The backend name ``spec`` selects, honoring ``REPRO_BACKEND``."""
    if spec is None:
        spec = os.environ.get(BACKEND_ENV) or "memory"
    name = spec.split(":", 1)[0]
    if name not in BACKEND_NAMES:
        raise BackendError(
            f"unknown backend {spec!r}: valid names are "
            f"{', '.join(BACKEND_NAMES)} (specs: {', '.join(BACKEND_SPECS)})"
        )
    return name


def _parse_sharded_spec(rest: str, spec: str) -> tuple[int, bool]:
    """``(n_shards, parallel)`` from the part after ``sharded:``."""
    if not rest:
        return 2, False
    count, _, mode = rest.partition(":")
    try:
        n_shards = int(count)
    except ValueError:
        raise BackendError(
            f"bad sharded spec {spec!r}: shard count {count!r} is not an "
            "integer (expected 'sharded:<N>' or 'sharded:<N>:parallel')"
        ) from None
    if n_shards < 1:
        raise BackendError(f"bad sharded spec {spec!r}: need at least 1 shard")
    if mode not in ("", "serial", "parallel"):
        raise BackendError(
            f"bad sharded spec {spec!r}: mode {mode!r} is not 'serial' or "
            "'parallel'"
        )
    return n_shards, mode == "parallel"


def make_backend(spec=None) -> Backend:
    """Build a backend from a spec: an instance (returned as-is),
    ``"memory"``, ``"sqlite"``, ``"sqlite:<path>"``, ``"sharded:<N>"``,
    ``"sharded:<N>:parallel"``, ``"columnar"``, or ``None`` (defer to
    the ``REPRO_BACKEND`` environment variable, default memory)."""
    if isinstance(spec, Backend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV) or "memory"
    name, _, rest = spec.partition(":")
    if name == "memory":
        return MemoryBackend()
    if name == "sqlite":
        from repro.backends.sqlite import SQLiteBackend

        return SQLiteBackend(path=rest or ":memory:")
    if name == "sharded":
        from repro.backends.sharded import ShardedBackend

        n_shards, parallel = _parse_sharded_spec(rest, spec)
        return ShardedBackend(n_shards, parallel=parallel)
    if name == "columnar":
        from repro.backends.columnar import ColumnarBackend

        return ColumnarBackend()
    raise BackendError(
        f"unknown backend {spec!r}: valid names are "
        f"{', '.join(BACKEND_NAMES)} (specs: {', '.join(BACKEND_SPECS)})"
    )
