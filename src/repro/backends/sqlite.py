"""SQLite execution backend: generated SQL over stdlib :mod:`sqlite3`.

Auxiliary views live in SQLite tables (``aux_<view>_<table>``), plan
stages run as single ``SELECT`` statements produced by
:mod:`repro.backends.sqlgen`, and a warehouse transaction maps to a
``SAVEPOINT``: the maintainer's :class:`~repro.engine.undolog.UndoLog`
still sequences rollback, but the entry this backend records restores
the data with one native ``ROLLBACK TO`` instead of replaying Python
inverses row by row.

Observability threads through at stage granularity: each executed stage
root is memoized/shared exactly like the interpreter's
:meth:`~repro.plan.physical.PhysicalNode.run`, opens the same trace
span, feeds the same ``plan:<label>`` perf timer, and folds into the
same :class:`~repro.obs.stats.ActualStats` — so ``explain --analyze``,
``perf``, and ``trace`` work unchanged.  The difference is that a stage
is one SQL round trip, so there are no per-operator sub-spans below the
stage root.

The reconstructor's group accumulation stays in Python: the SQL layer
produces the flattened propagation join (column order identical to the
interpreter's left-deep concatenation) and the compiled row program
folds the fetched rows, keeping CSMAS correction logic in one place.
"""

from __future__ import annotations

import sqlite3
import re
from collections import Counter
from time import perf_counter

from repro.backends.base import Backend, BackendError
from repro.backends.sqlgen import (
    CompiledQuery,
    NameResolver,
    compile_logical,
    compile_physical,
    render_expression,
    render_select,
)
from repro.core.maintenance import AuxMaterialization, SelfMaintenanceError
from repro.core.rewrite import GroupAccumulator
from repro.engine.operators import GroupByItem
from repro.engine.relation import Relation, RelationError
from repro.engine.rowindex import make_tuple_extractor
from repro.engine.schema import Schema
from repro.engine.types import AttributeType
from repro.plan.executor import ExecutionContext
from repro.plan.physical import AccumulateNode, DeltaScanNode

_SQL_TYPES = {
    AttributeType.INT: "INTEGER",
    AttributeType.FLOAT: "REAL",
    AttributeType.STRING: "TEXT",
    AttributeType.BOOL: "BOOLEAN",
}

#: SQLite's default variable limit is 999; stay under it when chunking.
_IN_CHUNK = 500


def _ident(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


def _result_size(result) -> int | None:
    try:
        return len(result)
    except TypeError:
        return None


def _row_decoder(schema: Schema):
    """A row post-processor undoing SQLite's type erasure (BOOL comes
    back as 0/1, and INT-typed Python floats would round-trip as REAL
    only if sent as REAL — FLOAT columns are re-coerced to float), or
    None when the schema needs no decoding."""
    converters = [
        (index, bool if a.atype is AttributeType.BOOL else float)
        for index, a in enumerate(schema)
        if a.atype in (AttributeType.BOOL, AttributeType.FLOAT)
    ]
    if not converters:
        return None

    def decode(row: tuple) -> tuple:
        out = list(row)
        for index, convert in converters:
            out[index] = convert(out[index])
        return tuple(out)

    return decode


def _noop() -> None:
    """Placeholder undo entry: the data restore itself is the backend's
    savepoint rollback; this keeps the log's row accounting non-trivial
    so ``rows_undone`` stays meaningful across backends."""


class _SQLiteMaterialization(AuxMaterialization):
    """One auxiliary view stored as a SQLite table.

    The Python-visible contract is identical to the in-memory
    materializations (same load/apply/probe/undo surface, same error
    messages); ``relation()`` fetches are cached until the next
    mutation.  Undo entries recorded here only drop derived caches —
    the data rollback is the backend savepoint.
    """

    def __init__(self, backend: "SQLiteBackend", aux, use_indexes=True,
                 namespace: str = ""):
        super().__init__(aux, use_indexes)
        self._backend = backend
        self._conn = backend._conn
        prefix = f"aux_{_ident(namespace)}" if namespace else "aux"
        self.table_name = f"{prefix}_{_ident(aux.table)}"
        columns = ", ".join(
            f'"{a.name}" {_SQL_TYPES[a.atype]}' for a in self.schema
        )
        self._conn.execute(f'DROP TABLE IF EXISTS "{self.table_name}"')
        self._conn.execute(f'CREATE TABLE "{self.table_name}" ({columns})')
        # Dropping the table dropped any indexes created for a previous
        # incarnation under the same name.
        backend._ready_indexes.difference_update(
            name
            for name in tuple(backend._ready_indexes)
            if name.startswith(f"idx_{self.table_name}_")
        )
        self._select_list = ", ".join(f'"{a.name}"' for a in self.schema)
        self._insert_sql = (
            f'INSERT INTO "{self.table_name}" VALUES '
            f'({", ".join("?" * len(self.schema))})'
        )
        self._decode = _row_decoder(self.schema)
        self._cache: Relation | None = None
        self._undo = None

    # -- shared plumbing ------------------------------------------------

    def _column(self, reference: str) -> str:
        """Physical column name for a (possibly qualified) reference."""
        return self.schema[self.schema.index_of(reference)].name

    def _dirty(self) -> None:
        self._cache = None
        self._invalidate_keys()

    def _fetch_all(self) -> list[tuple]:
        cursor = self._conn.execute(
            f'SELECT {self._select_list} FROM "{self.table_name}"'
        )
        rows = cursor.fetchall()
        if self._decode is not None:
            rows = [self._decode(row) for row in rows]
        return rows

    def _ensure_index(self, column: str) -> None:
        # Cached in the backend's ready set so repeat probes skip the
        # DDL round trip entirely; a rollback conservatively forgets
        # readiness (it may have undone the CREATE), and re-creating
        # this materialization's table drops its indexes with it.
        if not self.use_indexes:
            return
        name = f"idx_{self.table_name}_{_ident(column)}"
        ready = self._backend._ready_indexes
        if name in ready:
            return
        self._conn.execute(
            f'CREATE INDEX IF NOT EXISTS "{name}" '
            f'ON "{self.table_name}"("{column}")'
        )
        ready.add(name)

    # -- AuxMaterialization surface -------------------------------------

    def load(self, relation: Relation) -> None:
        if relation.schema != self.schema:
            raise SelfMaintenanceError(
                f"loaded relation does not match {self.aux.name} schema"
            )
        self._conn.execute(f'DELETE FROM "{self.table_name}"')
        self._conn.executemany(self._insert_sql, relation.rows)
        self._dirty()

    def relation(self) -> Relation:
        if self._cache is None:
            self._cache = Relation(
                self.schema, self._fetch_all(), validate=False
            )
        return self._cache

    def begin_undo(self, log) -> None:
        self._undo = log
        # Data restore is the backend savepoint; what must roll back
        # here is only the derived Python state (fetch cache, key sets).
        log.record(self._dirty)

    def end_undo(self) -> None:
        self._undo = None

    def _live_key_view(self, column: str):
        name = self._column(column)
        self._ensure_index(name)
        decode = bool if (
            self.schema[self.schema.index_of(column)].atype
            is AttributeType.BOOL
        ) else None
        cursor = self._conn.execute(
            f'SELECT DISTINCT "{name}" FROM "{self.table_name}"'
        )
        if decode is None:
            return {row[0] for row in cursor}
        return {decode(row[0]) for row in cursor}

    def rows_matching(self, column: str, values: set) -> list[tuple]:
        name = self._column(column)
        self._ensure_index(name)
        rows: list[tuple] = []
        pending = list(values)
        for start in range(0, len(pending), _IN_CHUNK):
            chunk = pending[start:start + _IN_CHUNK]
            marks = ", ".join("?" * len(chunk))
            cursor = self._conn.execute(
                f'SELECT {self._select_list} FROM "{self.table_name}" '
                f'WHERE "{name}" IN ({marks})',
                chunk,
            )
            rows.extend(cursor.fetchall())
        if self._decode is not None:
            rows = [self._decode(row) for row in rows]
        return rows

    def __len__(self) -> int:
        cursor = self._conn.execute(
            f'SELECT COUNT(*) FROM "{self.table_name}"'
        )
        return cursor.fetchone()[0]


class SQLiteProjectionMaterialization(_SQLiteMaterialization):
    """A degenerate (PSJ) auxiliary view: projected rows, bag semantics."""

    def __init__(self, backend, aux, use_indexes=True, namespace=""):
        super().__init__(backend, aux, use_indexes, namespace)
        self._project = make_tuple_extractor(
            tuple(aux.base_schema.index_of(name) for name in aux.plan.pinned)
        )
        conditions = " AND ".join(
            f'"{a.name}" = ?' for a in self.schema
        )
        self._delete_sql = (
            f'DELETE FROM "{self.table_name}" WHERE rowid IN '
            f'(SELECT rowid FROM "{self.table_name}" '
            f'WHERE {conditions} LIMIT ?)'
        )

    def apply(self, base_rows: list[tuple], sign: int) -> None:
        projected = list(map(self._project, base_rows))
        if not projected:
            return
        self._dirty()
        if sign > 0:
            self._conn.executemany(self._insert_sql, projected)
        else:
            for row, count in Counter(projected).items():
                cursor = self._conn.execute(
                    self._delete_sql, row + (count,)
                )
                if cursor.rowcount != count:
                    raise RelationError(
                        f"cannot delete absent rows [{row!r}]"
                    )
        if self._undo is not None:
            self._undo.record(_noop, rows=len(projected))


class SQLiteCompressedMaterialization(_SQLiteMaterialization):
    """A duplicate-compressed auxiliary view: grouped sums plus COUNT(*).

    A batch is pre-aggregated per group key in first-occurrence order,
    then folded with one SELECT + INSERT/UPDATE/DELETE per key — the
    observable semantics (including the error conditions) match the
    in-memory dictionary fold exactly.
    """

    def __init__(self, backend, aux, use_indexes=True, namespace=""):
        super().__init__(backend, aux, use_indexes, namespace)
        plan = aux.plan
        base = aux.base_schema
        self._pin_indexes = [base.index_of(name) for name in plan.pinned]
        self._sum_indexes = [base.index_of(name) for name in plan.folded_sums]
        self._min_indexes = [base.index_of(name) for name in plan.folded_mins]
        self._max_indexes = [base.index_of(name) for name in plan.folded_maxs]
        width = len(plan.pinned)
        pins = [a.name for a in self.schema[:width]]
        totals = [a.name for a in self.schema[width:]]
        key_match = " AND ".join(f'"{name}" = ?' for name in pins)
        totals_list = ", ".join(f'"{name}"' for name in totals)
        self._select_totals_sql = (
            f'SELECT {totals_list} FROM "{self.table_name}" '
            f'WHERE {key_match}'
        )
        self._delete_key_sql = (
            f'DELETE FROM "{self.table_name}" WHERE {key_match}'
        )
        assignments = ", ".join(f'"{name}" = ?' for name in totals)
        self._update_sql = (
            f'UPDATE "{self.table_name}" SET {assignments} '
            f'WHERE {key_match}'
        )
        self._totals_decode = _row_decoder(Schema(self.schema[width:]))

    def apply(self, base_rows: list[tuple], sign: int) -> None:
        if not base_rows:
            return
        if sign < 0 and (self._min_indexes or self._max_indexes):
            raise SelfMaintenanceError(
                f"{self.aux.name} holds folded MIN/MAX (append-only mode) "
                "and cannot absorb deletions"
            )
        self._dirty()
        n_sums = len(self._sum_indexes)
        n_extrema = len(self._min_indexes) + len(self._max_indexes)
        count_slot = n_sums + n_extrema
        order: list[tuple] = []
        batched: dict[tuple, list] = {}
        for row in base_rows:
            key = tuple(row[i] for i in self._pin_indexes)
            entry = batched.get(key)
            if entry is None:
                order.append(key)
                entry = batched[key] = (
                    [0] * n_sums
                    + [row[i] for i in self._min_indexes]
                    + [row[i] for i in self._max_indexes]
                    + [0]
                )
            for slot, index in enumerate(self._sum_indexes):
                entry[slot] += row[index]
            slot = n_sums
            for index in self._min_indexes:
                entry[slot] = min(entry[slot], row[index])
                slot += 1
            for index in self._max_indexes:
                entry[slot] = max(entry[slot], row[index])
                slot += 1
            entry[count_slot] += 1
        for key in order:
            delta = batched[key]
            if self._undo is not None:
                self._undo.record(_noop, rows=1)
            found = self._conn.execute(
                self._select_totals_sql, key
            ).fetchone()
            if found is None:
                if sign < 0:
                    raise SelfMaintenanceError(
                        f"{self.aux.name}: deletion from absent group {key!r}"
                    )
                self._conn.execute(
                    self._insert_sql, key + tuple(delta)
                )
                continue
            totals = list(
                found if self._totals_decode is None
                else self._totals_decode(found)
            )
            count = totals[count_slot] + sign * delta[count_slot]
            if count == 0:
                self._conn.execute(self._delete_key_sql, key)
                continue
            if count < 0:
                raise SelfMaintenanceError(
                    f"{self.aux.name}: negative count in group {key!r}"
                )
            for slot in range(n_sums):
                totals[slot] += sign * delta[slot]
            slot = n_sums
            for _ in self._min_indexes:
                totals[slot] = min(totals[slot], delta[slot])
                slot += 1
            for _ in self._max_indexes:
                totals[slot] = max(totals[slot], delta[slot])
                slot += 1
            totals[count_slot] = count
            self._conn.execute(self._update_sql, tuple(totals) + key)


class _CtxResolver(NameResolver):
    """Resolves plan sources against one execution context's bindings."""

    def __init__(self, backend: "SQLiteBackend", ctx: ExecutionContext):
        self._backend = backend
        self._ctx = ctx

    def physical(self, source: str) -> str:
        provider = self._ctx.provider(source)
        name = getattr(provider, "table_name", None)
        if name is None:
            raise BackendError(
                f"materialization for {source!r} is not SQLite-backed"
            )
        return name

    def schema(self, source: str) -> Schema:
        return self._ctx.provider(source).schema

    def delta_physical(self, table: str, sign: int) -> str:
        return self._backend._delta_table(
            table, sign, self._ctx.delta(table, sign).schema
        )

    def delta_schema(self, table: str, sign: int) -> Schema:
        return self._ctx.delta(table, sign).schema


class _BaseResolver(NameResolver):
    """Resolves logical scans against freshly loaded base-table copies
    (view recomputation does read sources — it is the one-time load)."""

    def __init__(self, backend: "SQLiteBackend", database):
        self._backend = backend
        self._database = database

    def physical(self, source: str) -> str:
        return self._backend._load_base_table(
            source, self._database.relation(source)
        )

    def schema(self, source: str) -> Schema:
        return self._database.relation(source).schema

    def delta_physical(self, table: str, sign: int) -> str:
        raise BackendError("view recomputation has no delta bindings")

    def delta_schema(self, table: str, sign: int) -> Schema:
        raise BackendError("view recomputation has no delta bindings")


class SQLiteBackend(Backend):
    """Run plans as generated SQL on a stdlib :mod:`sqlite3` database."""

    name = "sqlite"

    def __init__(self, path: str = ":memory:"):
        self.path = path
        # check_same_thread=False: the serving layer hands the backend
        # from the thread that built the warehouse to the apply queue's
        # single worker.  Access stays serialized — one writer at any
        # time — which is the contract that flag requires.
        self._conn = sqlite3.connect(
            path, isolation_level=None, check_same_thread=False
        )
        self._open_savepoints: list[str] = []
        self._savepoint_seq = 0
        # Keyed by id(node); the node reference keeps ids from being
        # recycled while an entry is live.
        self._compiled: dict[int, tuple[object, CompiledQuery]] = {}
        self._delta_tables: dict[tuple[str, int], str] = {}
        # Scratch tables known to exist outside any rolled-back scope,
        # plus their prepared INSERT statements: staging a delta is then
        # DELETE + executemany with no per-transaction DDL.
        self._delta_ready: set[tuple[str, int]] = set()
        self._delta_insert: dict[tuple[str, int], str] = {}
        #: Index names known to exist outside any rolled-back scope.
        self._ready_indexes: set[str] = set()
        #: id(node) -> (node, grouped-accumulate spec | None): the
        #: pushed-down GROUP BY form of each AccumulateNode's join, or
        #: None for shapes that must keep the Python fold.
        self._accumulate_group: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Materializations.
    # ------------------------------------------------------------------

    def make_materialization(self, aux, use_indexes=True, namespace=""):
        if aux.is_compressed:
            return SQLiteCompressedMaterialization(
                self, aux, use_indexes, namespace
            )
        return SQLiteProjectionMaterialization(
            self, aux, use_indexes, namespace
        )

    # ------------------------------------------------------------------
    # Plan execution.
    # ------------------------------------------------------------------

    def run_plan(self, node, ctx: ExecutionContext):
        """Execute one stage root: same memo/shared-cache/trace/perf
        contract as :meth:`PhysicalNode.run`, one SQL statement inside."""
        memo = ctx.memo
        key = id(node)
        if key in memo:
            if ctx.trace is not None:
                ctx.trace.instant(
                    node.label, kind="plan", cache_hit=True, cache="memo"
                )
            return memo[key]
        shared = ctx.shared
        share_key = node.share_key
        if shared is not None and share_key is not None:
            if share_key in shared:
                cached = shared[share_key]
                ctx.count("plan_shared_hits")
                node.stats.record_reuse()
                if ctx.trace is not None:
                    span = ctx.trace.instant(
                        node.label, kind="plan", cache_hit=True,
                        cache="shared",
                    )
                    span.rows_out = _result_size(cached)
                memo[key] = cached
                return cached
        self._bind_deltas(node, ctx)
        if ctx.trace is None:
            result = self._run_timed(node, ctx)
        else:
            with ctx.trace.span(node.label, kind="plan") as span:
                result = self._run_timed(node, ctx)
                span.rows_out = _result_size(result)
        memo[key] = result
        if shared is not None and share_key is not None:
            shared[share_key] = result
        return result

    def _run_timed(self, node, ctx: ExecutionContext):
        started = perf_counter()
        result = self._execute_stage(node, ctx)
        elapsed = perf_counter() - started
        if ctx.perf is not None:
            ctx.perf.seconds[node._timer_key] += elapsed
        node.stats.record(_result_size(result), elapsed)
        return result

    def _execute_stage(self, node, ctx: ExecutionContext):
        resolver = _CtxResolver(self, ctx)
        if isinstance(node, AccumulateNode):
            compiled = self._compile(node.children[0], node, resolver)
            spec = self._accumulate_spec(node, compiled)
            if spec is not None:
                return self._run_grouped_accumulate(spec)
            joined = self._fetch(compiled)
            if not joined:
                return {}
            reconstructor = node.reconstructor
            program = reconstructor.compile_program(joined.schema)
            contributions: dict = {}
            reconstructor.run_program(program, joined.rows, contributions)
            return contributions
        return self._fetch(self._compile(node, node, resolver))

    def _accumulate_spec(self, node, compiled: CompiledQuery):
        """The pushed-down ``GROUP BY`` form of one AccumulateNode, or
        None when the shape must keep the Python fold.

        Eligibility mirrors the columnar backend's compiled fold — only
        COUNT/SUM/AVG items (extrema and DISTINCT need raw values) —
        plus an exactness guard: every referenced column must carry
        integer affinity (INT or BOOL keys; INT sums and multiplicity),
        so SQLite's fold order cannot perturb float sums and the result
        stays bit-identical to the interpreter's row-order fold.
        """
        key = id(node)
        entry = self._accumulate_group.get(key)
        if entry is not None and entry[0] is node:
            return entry[1]
        spec = self._compile_grouped_accumulate(node, compiled)
        self._accumulate_group[key] = (node, spec)
        return spec

    def _compile_grouped_accumulate(self, node, compiled: CompiledQuery):
        program = node.reconstructor.resolve_program(compiled.schema)
        if program.raw_items:
            return None
        statement = compiled.statement
        if statement.group_by or statement.having is not None \
                or statement.distinct:
            return None
        items = statement.items
        schema = compiled.schema
        if len(items) != len(schema):
            return None
        count_position = program.count_position
        referenced = list(program.key_positions)
        if count_position is not None:
            referenced.append(count_position)
        referenced.extend(p for __, p, __ in program.sum_items)
        if any(not isinstance(items[p], GroupByItem) for p in referenced):
            return None
        for position in program.key_positions:
            if schema[position].atype is AttributeType.FLOAT:
                return None
        int_positions = list(p for __, p, __ in program.sum_items)
        if count_position is not None:
            int_positions.append(count_position)
        if any(
            schema[p].atype is not AttributeType.INT for p in int_positions
        ):
            return None
        key_sql = [items[p].column.to_sql() for p in program.key_positions]
        if count_position is None:
            mult_sql = "COUNT(*)"
            scale_sql = None
        else:
            mult_column = items[count_position].column.to_sql()
            mult_sql = f"SUM({mult_column})"
            scale_sql = mult_column
        select = list(key_sql)
        select.append(mult_sql)
        sum_slots = []
        for slot, position, scaled in program.sum_items:
            value_sql = items[position].column.to_sql()
            if scaled and scale_sql is not None:
                select.append(f"SUM({value_sql} * {scale_sql})")
            else:
                select.append(f"SUM({value_sql})")
            sum_slots.append(slot)
        sql = (
            f"SELECT {', '.join(select)} FROM "
            f"{', '.join(table.to_sql() for table in statement.tables)}"
        )
        if statement.where:
            conditions = " AND ".join(
                render_expression(c) for c in statement.where
            )
            sql += f" WHERE {conditions}"
        if key_sql:
            sql += f" GROUP BY {', '.join(key_sql)}"
        else:
            # A keyless aggregate yields one row even over empty input;
            # the fold yields no group at all (same adaptation as the
            # view-evaluation SQL — see engine/aggregates.py).
            sql += " HAVING COUNT(*) > 0"
        bool_keys = tuple(
            i
            for i, p in enumerate(program.key_positions)
            if schema[p].atype is AttributeType.BOOL
        )
        return (sql, len(program.key_positions), tuple(sum_slots), bool_keys)

    def _run_grouped_accumulate(self, spec) -> dict:
        sql, n_keys, sum_slots, bool_keys = spec
        contributions: dict = {}
        for row in self._conn.execute(sql):
            key = row[:n_keys]
            if bool_keys:
                decoded = list(key)
                for i in bool_keys:
                    decoded[i] = bool(decoded[i])
                key = tuple(decoded)
            acc = GroupAccumulator(row[n_keys])
            sums = acc.sums
            for offset, slot in enumerate(sum_slots, start=n_keys + 1):
                sums[slot] = row[offset]
            contributions[key] = acc
        return contributions

    def _compile(self, node, cache_node, resolver) -> CompiledQuery:
        """Compile ``node``, caching per plan identity (plans are static
        per (view, delta shape), so the generated SQL is too)."""
        key = id(cache_node)
        entry = self._compiled.get(key)
        if entry is not None and entry[0] is cache_node:
            return entry[1]
        compiled = compile_physical(node, resolver)
        self._compiled[key] = (cache_node, compiled)
        return compiled

    def _fetch(self, compiled: CompiledQuery) -> Relation:
        rows = self._conn.execute(
            render_select(compiled.statement)
        ).fetchall()
        decode = _row_decoder(compiled.schema)
        if decode is not None:
            rows = [decode(row) for row in rows]
        return Relation(compiled.schema, rows, validate=False)

    def execute_view_plan(self, plan, database) -> Relation:
        resolver = _BaseResolver(self, database)
        compiled = compile_logical(plan.optimized, resolver)
        return self._fetch(compiled)

    # ------------------------------------------------------------------
    # Delta and base-table staging.
    # ------------------------------------------------------------------

    def _delta_table(self, table: str, sign: int, schema: Schema) -> str:
        mark = "ins" if sign > 0 else "del"
        name = f"delta_{mark}_{_ident(table)}"
        key = (table, sign)
        if key not in self._delta_ready:
            columns = ", ".join(
                f'"{a.name}" {_SQL_TYPES[a.atype]}' for a in schema
            )
            # IF NOT EXISTS: a rollback may have undone the CREATE of a
            # scratch table first staged inside that savepoint (see
            # _rollback_to, which conservatively forgets readiness).
            self._conn.execute(
                f'CREATE TABLE IF NOT EXISTS "{name}" ({columns})'
            )
            self._delta_ready.add(key)
        self._delta_tables[key] = name
        return name

    def _bind_deltas(self, node, ctx: ExecutionContext) -> None:
        """Stage every delta the subtree scans into its scratch table,
        once per execution context (stages of one transaction share the
        loaded deltas through the context memo)."""
        for leaf in node.walk():
            if not isinstance(leaf, DeltaScanNode):
                continue
            marker = ("sqlite-delta", leaf.table, leaf.sign)
            if marker in ctx.memo:
                continue
            delta = ctx.delta(leaf.table, leaf.sign)
            name = self._delta_table(leaf.table, leaf.sign, delta.schema)
            self._conn.execute(f'DELETE FROM "{name}"')
            if delta.rows:
                key = (leaf.table, leaf.sign)
                insert = self._delta_insert.get(key)
                if insert is None:
                    marks = ", ".join("?" * len(delta.schema))
                    insert = self._delta_insert[key] = (
                        f'INSERT INTO "{name}" VALUES ({marks})'
                    )
                self._conn.executemany(insert, delta.rows)
            ctx.memo[marker] = True

    def _load_base_table(self, table: str, relation: Relation) -> str:
        name = f"base_{_ident(table)}"
        columns = ", ".join(
            f'"{a.name}" {_SQL_TYPES[a.atype]}' for a in relation.schema
        )
        self._conn.execute(f'DROP TABLE IF EXISTS "{name}"')
        self._conn.execute(f'CREATE TABLE "{name}" ({columns})')
        if relation.rows:
            marks = ", ".join("?" * len(relation.schema))
            self._conn.executemany(
                f'INSERT INTO "{name}" VALUES ({marks})', relation.rows
            )
        return name

    # ------------------------------------------------------------------
    # Transactions (savepoint per warehouse transaction).
    # ------------------------------------------------------------------

    def begin_transaction(self, log) -> None:
        self._savepoint_seq += 1
        name = f"sp_{self._savepoint_seq}"
        self._conn.execute(f"SAVEPOINT {name}")
        self._open_savepoints.append(name)
        log.record(lambda name=name: self._rollback_to(name))

    def _rollback_to(self, name: str) -> None:
        # The savepoint may already be gone: a warehouse coordinator
        # rolling back several maintainers releases nested savepoints
        # with the first (outermost) restore it runs.
        if name not in self._open_savepoints:
            return
        self._conn.execute(f"ROLLBACK TO {name}")
        self._conn.execute(f"RELEASE {name}")
        del self._open_savepoints[self._open_savepoints.index(name):]
        # The rollback may have undone the CREATE TABLE / CREATE INDEX
        # of any scratch table or probe index first issued inside the
        # savepoint; re-create on next use.
        self._delta_ready.clear()
        self._ready_indexes.clear()

    def commit(self) -> None:
        if not self._open_savepoints:
            return
        # Releasing the outermost savepoint commits it and every nested
        # one in a single step.
        self._conn.execute(f"RELEASE {self._open_savepoints[0]}")
        self._open_savepoints.clear()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def physical_detail_size_bytes(self, materializations) -> int | None:
        """On-disk bytes of the auxiliary tables via the ``dbstat``
        virtual table, or None when dbstat is unavailable in this
        SQLite build."""
        names = [
            m.table_name
            for m in materializations
            if getattr(m, "table_name", None) is not None
        ]
        if not names:
            return 0
        marks = ", ".join("?" * len(names))
        try:
            row = self._conn.execute(
                f"SELECT COALESCE(SUM(pgsize), 0) FROM dbstat "
                f"WHERE name IN ({marks})",
                names,
            ).fetchone()
        except sqlite3.Error:
            return None
        return int(row[0])

    def close(self) -> None:
        self._conn.close()
