"""Compile plan-layer trees to generic SQL (:mod:`repro.sql.ast`).

Two entry points mirror the two plan families:

:func:`compile_logical`
    the optimized logical tree of a :class:`~repro.plan.planner.ViewPlan`
    (``Scan/DeltaScan/Select/Project/GeneralizedProject/EquiJoin/
    SemiJoin/AntiJoin``) — view recomputation, including the
    duplicate-compression ``GROUP BY`` with distributive-aggregate
    folding; semijoins and antijoins become correlated ``EXISTS`` /
    ``NOT EXISTS`` probes.

:func:`compile_physical`
    the static per-(table, sign) maintenance stage trees of a
    :class:`~repro.plan.maintenance.DeltaPlans` pipeline.  Key-probe
    semijoin reductions become ``EXISTS`` probes against the auxiliary
    tables; the propagation join tree flattens to one ``SELECT`` whose
    column order matches the interpreter's left-deep concatenation, so
    the reconstructor's compiled row program runs unchanged on the
    fetched rows.  ``NeighborRestrictNode`` (the index-backed semijoin
    restriction of the hot path) maps to a plain scan of the auxiliary
    table: every restriction it encodes reappears as an equijoin
    condition of the flattened join, so the SQL engine's own planner
    takes over that optimization.

Everything produced here unparses with ``SelectStatement.to_sql()`` and
re-parses through :func:`repro.sql.parser.parse_select` to an equal
tree.  Execution uses :func:`render_select`, which differs from the
canonical unparsing only where SQLite semantics diverge from the
interpreter (true division).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expressions import (
    And,
    Arithmetic,
    Column,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
    Or,
    conjuncts,
)
from repro.engine.operators import (
    AggregateItem,
    GroupByItem,
    ProjectionItem,
    projection_schema,
)
from repro.engine.schema import Schema
from repro.plan import logical as L
from repro.plan import physical as P
from repro.sql.ast import CountStar, Exists, SelectStatement, TableRef


class SqlGenError(Exception):
    """Raised for plan shapes outside the GPSJ-generated SQL surface."""


@dataclass(frozen=True)
class CompiledQuery:
    """A generated statement plus the schema of its result rows."""

    statement: SelectStatement
    schema: Schema


class NameResolver:
    """Maps logical plan sources to physical store names and schemas."""

    def physical(self, source: str) -> str:
        raise NotImplementedError

    def schema(self, source: str) -> Schema:
        raise NotImplementedError

    def delta_physical(self, table: str, sign: int) -> str:
        raise NotImplementedError

    def delta_schema(self, table: str, sign: int) -> Schema:
        raise NotImplementedError


class _Query:
    """Mutable builder for one flat (or finally grouped) SELECT."""

    __slots__ = (
        "tables", "where", "schema", "items", "group_by", "having",
        "distinct", "qualifier",
    )

    def __init__(self, tables, where, schema):
        self.tables: list[TableRef] = tables
        self.where: list[Expression] = where
        self.schema: Schema = schema
        self.items: tuple[ProjectionItem, ...] | None = None
        self.group_by: tuple[Expression, ...] = ()
        self.having: Expression | None = None
        self.distinct = False
        self.qualifier: str | None = None

    @property
    def grouped(self) -> bool:
        return self.items is not None

    def sole_binding(self) -> str:
        if len(self.tables) != 1:
            raise SqlGenError("expected a single-table query at this point")
        return self.tables[0].binding

    def statement(self) -> SelectStatement:
        items = self.items
        if items is None:
            items = tuple(
                GroupByItem(Column(attr.name, attr.qualifier))
                for attr in self.schema
            )
        return SelectStatement(
            items=items,
            tables=tuple(self.tables),
            where=tuple(self.where),
            group_by=self.group_by,
            having=self.having,
            distinct=self.distinct,
        )


def _source_query(name: str, resolver: NameResolver) -> _Query:
    schema = resolver.schema(name)
    return _Query([TableRef(resolver.physical(name), name)], [], schema)


def _delta_query(table: str, sign: int, resolver: NameResolver) -> _Query:
    schema = resolver.delta_schema(table, sign)
    return _Query(
        [TableRef(resolver.delta_physical(table, sign), table)], [], schema
    )


def _merge_flat(left: _Query, right: _Query, pairs) -> _Query:
    if left.grouped or right.grouped or left.distinct or right.distinct:
        raise SqlGenError("cannot join an already-grouped subquery")
    merged = _Query(
        left.tables + right.tables,
        left.where + right.where,
        left.schema.concat(right.schema),
    )
    merged.where.extend(
        Comparison("=", Column.parse(l), Column.parse(r)) for l, r in pairs
    )
    return merged


def _exists_probe(outer: _Query, inner: _Query, pairs, negated: bool) -> None:
    if inner.grouped or inner.distinct:
        raise SqlGenError("EXISTS subqueries must be flat")
    correlation = [
        Comparison("=", Column.parse(l), Column.parse(r)) for l, r in pairs
    ]
    probe = SelectStatement(
        items=(),
        tables=tuple(inner.tables),
        where=tuple(inner.where + correlation),
    )
    outer.where.append(Exists(probe, negated))


def _normalize_item(item: ProjectionItem) -> ProjectionItem:
    """Drop aliases the unparser would drop, so the generated statement
    equals its own re-parse (``x AS x`` never renders)."""
    if isinstance(item, GroupByItem) and item.alias == item.column.name:
        return GroupByItem(item.column, None)
    return item


def _strip_qualifier(expression: Expression, qualifier: str) -> Expression:
    """Rewrite ``view.alias`` references to bare ``alias`` — HAVING
    conditions name the select list's output columns."""
    mapping = {
        column: Column(column.name)
        for column in expression.columns()
        if column.qualifier == qualifier
    }
    return expression.substitute(mapping) if mapping else expression


def _add_having(query: _Query, condition: Expression) -> None:
    if query.qualifier is not None:
        condition = _strip_qualifier(condition, query.qualifier)
    if query.having is None:
        query.having = condition
    else:
        query.having = And(*conjuncts(query.having), *conjuncts(condition))


def _apply_generalized_project(
    query: _Query, items, qualifier: str | None
) -> None:
    if query.grouped or query.distinct:
        raise SqlGenError("nested generalized projections are not supported")
    normalized = tuple(_normalize_item(item) for item in items)
    group_columns = tuple(
        item.column for item in normalized if isinstance(item, GroupByItem)
    )
    has_aggregates = any(
        isinstance(item, AggregateItem) for item in normalized
    )
    schema = projection_schema(items, query.schema, qualifier)
    query.items = normalized
    query.qualifier = qualifier
    query.schema = schema
    if has_aggregates:
        query.group_by = group_columns
        if not group_columns:
            # SQL aggregates an empty input to one NULL row where the
            # generalized projection yields no row at all; filtering on
            # COUNT(*) restores the algebra's semantics (see
            # engine/aggregates.py's empty-input contract).
            _add_having(query, Comparison(">", CountStar(), Literal(0)))
    else:
        # No aggregates: Π degenerates to duplicate elimination.
        query.distinct = True


def _logical_query(node: L.LogicalNode, resolver: NameResolver) -> _Query:
    if isinstance(node, L.Scan):
        return _source_query(node.source, resolver)
    if isinstance(node, L.DeltaScan):
        return _delta_query(node.table, node.sign, resolver)
    if isinstance(node, L.Select):
        query = _logical_query(node.child, resolver)
        if query.grouped:
            _add_having(query, node.condition)
        else:
            query.where.extend(conjuncts(node.condition))
        return query
    if isinstance(node, L.Project):
        query = _logical_query(node.child, resolver)
        if query.grouped:
            raise SqlGenError("projection above a grouped query")
        query.schema = query.schema.project(node.references)
        if node.distinct:
            query.items = tuple(
                GroupByItem(Column(attr.name, attr.qualifier))
                for attr in query.schema
            )
            query.distinct = True
        return query
    if isinstance(node, L.GeneralizedProject):
        query = _logical_query(node.child, resolver)
        _apply_generalized_project(query, node.items, node.qualifier)
        return query
    if isinstance(node, L.EquiJoin):
        return _merge_flat(
            _logical_query(node.left, resolver),
            _logical_query(node.right, resolver),
            node.pairs,
        )
    if isinstance(node, (L.SemiJoin, L.AntiJoin)):
        query = _logical_query(node.left, resolver)
        if query.grouped:
            raise SqlGenError("semijoin above a grouped query")
        _exists_probe(
            query,
            _logical_query(node.right, resolver),
            node.pairs,
            negated=isinstance(node, L.AntiJoin),
        )
        return query
    raise SqlGenError(f"no SQL lowering for logical node {node!r}")


def compile_logical(
    node: L.LogicalNode, resolver: NameResolver
) -> CompiledQuery:
    """Compile an optimized logical plan tree to one SELECT."""
    query = _logical_query(node, resolver)
    return CompiledQuery(query.statement(), query.schema)


# ----------------------------------------------------------------------
# Maintenance stage trees (physical nodes).
# ----------------------------------------------------------------------


def _physical_query(node: P.PhysicalNode, resolver: NameResolver) -> _Query:
    if isinstance(node, P.DeltaScanNode):
        return _delta_query(node.table, node.sign, resolver)
    if isinstance(node, P.FilterNode):
        query = _physical_query(node.children[0], resolver)
        query.where.extend(conjuncts(node.condition))
        return query
    if isinstance(node, P.KeyProbeSemiJoinNode):
        query = _physical_query(node.children[0], resolver)
        attr = query.schema[node.fk_index]
        fk = Column(attr.name, attr.qualifier or query.sole_binding())
        dep = _source_query(node.dep_table, resolver)
        _exists_probe(query, dep, [(fk.qualified_name, node.dep_key)], False)
        return query
    if isinstance(node, P.AuxScanNode):
        return _source_query(node.table, resolver)
    if isinstance(node, P.NeighborRestrictNode):
        # The semijoin restriction is subsumed by the equijoin
        # conditions of the flattened propagation join (every restricted
        # edge is also a join edge), so SQL sees the plain auxiliary
        # table and the engine's planner picks its own access path.
        return _source_query(node.table, resolver)
    if isinstance(node, P.HashJoinNode):
        return _merge_flat(
            _physical_query(node.children[0], resolver),
            _physical_query(node.children[1], resolver),
            node.pairs,
        )
    if isinstance(node, P.IndexJoinNode):
        return _merge_flat(
            _physical_query(node.children[0], resolver),
            _source_query(node.table, resolver),
            node.pairs,
        )
    raise SqlGenError(f"no SQL lowering for physical node {node!r}")


def compile_physical(
    node: P.PhysicalNode, resolver: NameResolver
) -> CompiledQuery:
    """Compile one maintenance stage tree (``local``/``reduce``, or the
    join under an ``AccumulateNode``) to one flat SELECT."""
    query = _physical_query(node, resolver)
    return CompiledQuery(query.statement(), query.schema)


# ----------------------------------------------------------------------
# Dialect rendering (execution-time SQL).
# ----------------------------------------------------------------------


def render_expression(expression: Expression) -> str:
    """SQLite-dialect rendering; canonical except where SQLite semantics
    diverge from the interpreter (``/`` is integer division on INTEGER
    operands, the interpreter's is true division)."""
    if isinstance(expression, Arithmetic):
        left = render_expression(expression.left)
        right = render_expression(expression.right)
        if expression.op == "/":
            return f"(CAST({left} AS REAL) / {right})"
        return f"({left} {expression.op} {right})"
    if isinstance(expression, Comparison):
        return (
            f"{render_expression(expression.left)} {expression.op} "
            f"{render_expression(expression.right)}"
        )
    if isinstance(expression, And):
        if not expression.conditions:
            return "TRUE"
        return " AND ".join(
            render_expression(c) for c in expression.conditions
        )
    if isinstance(expression, Or):
        if not expression.conditions:
            return "FALSE"
        rendered = " OR ".join(
            render_expression(c) for c in expression.conditions
        )
        return f"({rendered})"
    if isinstance(expression, Not):
        return f"NOT ({render_expression(expression.condition)})"
    if isinstance(expression, InList):
        values = ", ".join(Literal(v).to_sql() for v in expression.values)
        return f"{render_expression(expression.expr)} IN ({values})"
    if isinstance(expression, Exists):
        prefix = "NOT EXISTS" if expression.negated else "EXISTS"
        return f"{prefix} ({render_select(expression.query)})"
    return expression.to_sql()


def render_select(statement: SelectStatement) -> str:
    """Execution-dialect counterpart of ``SelectStatement.to_sql()``."""
    parts = ["SELECT"]
    if statement.distinct:
        parts.append("DISTINCT")
    if statement.items:
        parts.append(", ".join(item.to_sql() for item in statement.items))
    else:
        parts.append("1")
    parts.append("FROM")
    parts.append(", ".join(table.to_sql() for table in statement.tables))
    if statement.where:
        parts.append("WHERE")
        parts.append(
            " AND ".join(render_expression(c) for c in statement.where)
        )
    if statement.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(c.to_sql() for c in statement.group_by))
    if statement.having is not None:
        parts.append("HAVING")
        parts.append(render_expression(statement.having))
    return " ".join(parts)
