"""Columnar execution backend: typed column stores + fused batch kernels.

Where :class:`~repro.backends.base.MemoryBackend` interprets physical
plans node by node over row-tuple relations, this backend stores every
auxiliary materialization as a set of typed columns (see
:class:`~repro.backends.kernels.ColumnStore`) with two kinds of hash
indexes mapping values to *row-id vectors*:

* a row-multiplicity index (``row tuple -> [rids]``) on projection
  stores, so bag deletes pick a victim rid in O(1);
* per-column value indexes (``value -> {rids}``) built lazily on first
  probe and maintained incrementally from then on — they serve join
  probes, ``key_values`` (the join-reduction key sets), *and* the stats
  catalog's distinct counts for free.

Delta plans compile to *fused batch kernels* executed once per delta
batch instead of once per row per node:

* the **local** stage runs the delta scan plus selection vectors;
* the **reduce** stage runs the key-probe semijoin chain as successive
  key-vector filters;
* the **propagate** stage walks the left-deep join tree once at compile
  time, then per batch probes the stores' rid indexes (no per-
  transaction hash builds — the classic win over build-and-probe on a
  3000-row dimension for a 16-row delta) and folds matches straight
  into group accumulators via the reconstructor's
  :class:`~repro.core.rewrite.SymbolicProgram`.

``NeighborRestrictNode``\\ s are deliberately skipped when fusing: every
restriction they encode reappears as an equijoin condition on the same
pair (the same equivalence :mod:`repro.backends.sqlgen` documents for
the generated-SQL lowering), and probing the maintained rid index is
the restriction.

Rollback integrates with the shared :class:`~repro.engine.undolog.UndoLog`
at batch granularity: each ``apply`` records *one* closure that
restores the touched rows/groups (row- and key-identity, not rid
identity — state equality is the row multiset, and freed rids are
recycled by the free list anyway), so the undo cost of a transaction
follows the delta, never the stored detail.
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.backends.kernels import ColumnStore, gather, selection_vector
from repro.core.maintenance import AuxMaterialization, SelfMaintenanceError
from repro.core.rewrite import AggregateCategory, GroupAccumulator
from repro.engine.compilecache import compiled_predicate
from repro.engine.relation import Relation
from repro.engine.rowindex import make_tuple_extractor
from repro.engine.schema import Schema
from repro.engine.undolog import UndoLog
from repro.plan.executor import ExecutionContext
from repro.plan.physical import (
    AccumulateNode,
    AuxScanNode,
    DeltaScanNode,
    FilterNode,
    HashJoinNode,
    KeyProbeSemiJoinNode,
    NeighborRestrictNode,
    run_stage_root,
)


#: Distinct sentinel for decode-map cache misses and probe misses
#: (``None`` is a legitimate stored value).
_MISS = object()


class _ColumnarStore(AuxMaterialization):
    """Shared column-store machinery of both materialization kinds."""

    def __init__(self, aux, use_indexes: bool = True):
        super().__init__(aux, use_indexes)
        self.store = ColumnStore(self.schema)
        #: column position -> {value -> set(rids)}; built on first probe,
        #: maintained incrementally afterwards.
        self._rid_indexes: dict[int, dict] = {}
        #: (key position, value position) -> {key -> value} | None — the
        #: dictionary-encoded join columns the fused propagate kernel
        #: probes (None caches "key column is not unique").  Dropped on
        #: any mutation, rebuilt lazily; dimension stores mutate rarely,
        #: so the maps persist across whole delta streams.
        self._decode_maps: dict[tuple[int, int], dict | None] = {}
        self._cache: Relation | None = None
        self._undo: UndoLog | None = None

    def decode_map(self, key_position: int, value_position: int):
        """``{key value -> value-column value}`` over live rows, or
        ``None`` when the key column is not unique (then a key may match
        several rows and a plain dict would drop multiplicity)."""
        cache_key = (key_position, value_position)
        cached = self._decode_maps.get(cache_key, _MISS)
        if cached is not _MISS:
            return cached
        store = self.store
        key_column = store.columns[key_position]
        value_column = store.columns[value_position]
        mapping: dict | None = {}
        for rid, bit in enumerate(store.live):
            if bit:
                key = key_column[rid]
                if key in mapping:
                    mapping = None
                    break
                mapping[key] = value_column[rid]
        self._decode_maps[cache_key] = mapping
        return mapping

    # -- probing -------------------------------------------------------

    def rid_index(self, position: int) -> dict:
        """The maintained ``value -> {rids}`` index on one column."""
        index = self._rid_indexes.get(position)
        if index is None:
            index = self._rid_indexes[position] = {}
            column = self.store.columns[position]
            for rid, bit in enumerate(self.store.live):
                if bit:
                    value = column[rid]
                    bucket = index.get(value)
                    if bucket is None:
                        index[value] = {rid}
                    else:
                        bucket.add(rid)
        return index

    def _index_rid(self, row: tuple, rid: int) -> None:
        for position, index in self._rid_indexes.items():
            value = row[position]
            bucket = index.get(value)
            if bucket is None:
                index[value] = {rid}
            else:
                bucket.add(rid)

    def _unindex_rid(self, row: tuple, rid: int) -> None:
        for position, index in self._rid_indexes.items():
            value = row[position]
            bucket = index.get(value)
            if bucket is not None:
                bucket.discard(rid)
                if not bucket:
                    del index[value]

    def _live_key_view(self, column: str):
        return self.rid_index(self.schema.index_of(column)).keys()

    def rows_matching(self, column: str, values: set) -> list[tuple]:
        index = self.rid_index(self.schema.index_of(column))
        store = self.store
        rows: list[tuple] = []
        for value in values:
            rids = index.get(value)
            if rids:
                rows.extend(store.rows(rids))
        return rows

    # -- shared state management --------------------------------------

    def relation(self) -> Relation:
        if self._cache is None:
            self._cache = Relation(
                self.schema, self.store.all_rows(), validate=False
            )
        return self._cache

    def _touch(self) -> None:
        """Invalidate row-level derived state before a mutation."""
        self._cache = None
        if self._decode_maps:
            self._decode_maps.clear()
        self._invalidate_keys()

    def _drop_derived_state(self) -> None:
        self._cache = None
        self._rid_indexes.clear()
        if self._decode_maps:
            self._decode_maps.clear()
        self._invalidate_keys()

    def end_undo(self) -> None:
        self._undo = None

    def __len__(self) -> int:
        return len(self.store)


class ColumnarProjectionStore(_ColumnarStore):
    """A PSJ auxiliary view as typed columns with bag semantics.

    Every physical rid holds one row *occurrence* — duplicates occupy
    separate rids — so rid enumeration carries multiplicity naturally
    and the value indexes return one rid per occurrence, exactly like
    the row engine's :class:`~repro.engine.rowindex.RowIndex`.
    """

    def __init__(self, aux, use_indexes: bool = True):
        super().__init__(aux, use_indexes)
        self._project = make_tuple_extractor(
            tuple(aux.base_schema.index_of(name) for name in aux.plan.pinned)
        )
        #: row tuple -> [rids] — the multiplicity index deletes pop from.
        self._row_rids: dict[tuple, list[int]] = {}

    def load(self, relation: Relation) -> None:
        if relation.schema != self.schema:
            raise SelfMaintenanceError(
                f"loaded relation does not match {self.aux.name} schema"
            )
        self.store = ColumnStore(self.schema)
        self._row_rids = {}
        self._drop_derived_state()
        for row in relation.rows:
            self._insert_row(row)

    def _insert_row(self, row: tuple) -> None:
        rid = self.store.append(row)
        rids = self._row_rids.get(row)
        if rids is None:
            self._row_rids[row] = [rid]
        else:
            rids.append(rid)
        if self._rid_indexes:
            self._index_rid(row, rid)

    def _delete_row(self, row: tuple) -> None:
        rids = self._row_rids[row]
        rid = rids.pop()
        if not rids:
            del self._row_rids[row]
        self.store.release(rid)
        if self._rid_indexes:
            self._unindex_rid(row, rid)

    def apply(self, base_rows: list[tuple], sign: int) -> None:
        projected = list(map(self._project, base_rows))
        if not projected:
            return
        if sign > 0:
            self._touch()
            store = self.store
            n_free = len(store.free)
            if n_free:
                # Recycle every parked slot first, then bulk-append.
                bulk = projected[n_free:]
                for row in projected[:n_free]:
                    self._insert_row(row)
            else:
                bulk = projected
            if bulk:
                # Appending past the high-water mark assigns contiguous
                # rids, so the columns grow by one C-level extend each
                # and the per-row work is only the multiplicity index.
                for position, column in enumerate(store.columns):
                    column.extend([row[position] for row in bulk])
                rid = len(store.live)
                store.live.extend(b"\x01" * len(bulk))
                row_rids = self._row_rids
                for row in bulk:
                    bucket = row_rids.get(row)
                    if bucket is None:
                        row_rids[row] = [rid]
                    else:
                        bucket.append(rid)
                    rid += 1
                rid_indexes = self._rid_indexes
                if rid_indexes:
                    base_rid = rid - len(bulk)
                    for position, index in rid_indexes.items():
                        rid = base_rid
                        bucket_of = index.get
                        for row in bulk:
                            value = row[position]
                            bucket = bucket_of(value)
                            if bucket is None:
                                index[value] = {rid}
                            else:
                                bucket.add(rid)
                            rid += 1
            if self._undo is not None:
                self._undo.record(
                    lambda rows=projected: self._unapply_insert(rows),
                    rows=len(projected),
                )
        else:
            # All-or-nothing per batch, like Relation.delete_all: verify
            # every occurrence exists before mutating anything.
            needed: dict[tuple, int] = {}
            for row in projected:
                needed[row] = needed.get(row, 0) + 1
            missing = {
                row: n - len(self._row_rids.get(row, ()))
                for row, n in needed.items()
                if len(self._row_rids.get(row, ())) < n
            }
            if missing:
                raise SelfMaintenanceError(
                    f"{self.aux.name}: cannot delete absent rows {missing!r}"
                )
            self._touch()
            for row in projected:
                self._delete_row(row)
            if self._undo is not None:
                self._undo.record(
                    lambda rows=projected: self._unapply_delete(rows),
                    rows=len(projected),
                )

    def _unapply_insert(self, rows: list[tuple]) -> None:
        self._touch()
        for row in reversed(rows):
            self._delete_row(row)

    def _unapply_delete(self, rows: list[tuple]) -> None:
        self._touch()
        for row in reversed(rows):
            self._insert_row(row)

    def begin_undo(self, log: UndoLog) -> None:
        self._undo = log
        # Legacy-mode key caches are derived state; rollback drops them.
        log.record(self._invalidate_keys)


class ColumnarCompressedStore(_ColumnarStore):
    """A duplicate-compressed auxiliary view over typed columns.

    One rid per live group; pinned key columns plus running totals
    (folded sums, folded extrema, COUNT(*)) updated *in place*.  The
    semantics — group creation/vanishing, negative-count detection,
    append-only folded MIN/MAX — mirror
    :class:`~repro.core.maintenance.CompressedMaterialization` exactly;
    undo snapshots totals per first-touched key and restores by key
    identity (a vanished group re-appears at a fresh, recycled rid).
    """

    def __init__(self, aux, use_indexes: bool = True):
        super().__init__(aux, use_indexes)
        plan = aux.plan
        base = aux.base_schema
        self._pin_indexes = [base.index_of(name) for name in plan.pinned]
        self._sum_indexes = [base.index_of(name) for name in plan.folded_sums]
        self._min_indexes = [base.index_of(name) for name in plan.folded_mins]
        self._max_indexes = [base.index_of(name) for name in plan.folded_maxs]
        self._n_pins = len(plan.pinned)
        n_totals = (
            len(self._sum_indexes)
            + len(self._min_indexes)
            + len(self._max_indexes)
            + 1
        )
        #: schema positions of the totals columns (count last).
        self._total_positions = tuple(
            range(self._n_pins, self._n_pins + n_totals)
        )
        self._count_position = self._n_pins + n_totals - 1
        self._key_rids: dict[tuple, int] = {}
        self._undo_saved: set[tuple] = set()
        self._pin_extract = make_tuple_extractor(tuple(self._pin_indexes))
        self._min_extract = make_tuple_extractor(tuple(self._min_indexes))
        self._max_extract = make_tuple_extractor(tuple(self._max_indexes))
        self._sum_zeros = (0,) * len(self._sum_indexes)
        self._bind_columns()
        self._fast_apply = self._compile_apply()

    def _bind_columns(self) -> None:
        """Resolve the totals columns of the *current* store to column
        objects once; ``apply`` then updates them with no per-row column
        lookups.  Must be re-run whenever :attr:`store` is replaced
        (only :meth:`load` does that — append/release mutate in place)."""
        columns = self.store.columns
        n_pins = self._n_pins
        self._sum_columns = tuple(
            (columns[n_pins + slot], index)
            for slot, index in enumerate(self._sum_indexes)
        )
        position = n_pins + len(self._sum_indexes)
        self._min_columns = tuple(
            (columns[position + slot], index)
            for slot, index in enumerate(self._min_indexes)
        )
        position += len(self._min_indexes)
        self._max_columns = tuple(
            (columns[position + slot], index)
            for slot, index in enumerate(self._max_indexes)
        )
        self._count_column = columns[self._count_position]
        self._totals_columns = tuple(
            columns[p] for p in self._total_positions
        )

    def load(self, relation: Relation) -> None:
        if relation.schema != self.schema:
            raise SelfMaintenanceError(
                f"loaded relation does not match {self.aux.name} schema"
            )
        self.store = ColumnStore(self.schema)
        self._bind_columns()
        self._key_rids = {}
        self._drop_derived_state()
        width = self._n_pins
        for row in relation:
            self._key_rids[row[:width]] = self.store.append(row)

    def _compile_apply(self):
        """Compile the apply loop for this summary's exact shape.

        Folded MIN/MAX shapes keep the generic loop (their append-only
        extremum merge is branchy); everything else — the dominant
        SUM/COUNT summaries — gets straight-line code with the key
        tuple, undo snapshot, fresh-group append, recycled-slot reuse,
        totals update, and group-release inlined per column, so a row
        costs a dict probe plus a few subscripts.  Mutable state (the
        store, the key->rid map, the undo log) is fetched from ``self``
        at call time, so :meth:`load` never recompiles.
        """
        if self._min_indexes or self._max_indexes:
            return None
        columns = self.store.columns
        pins = self._pin_indexes
        n_pins = self._n_pins
        totals = self._total_positions
        count_position = self._count_position
        sum_positions = list(
            zip(range(n_pins, n_pins + len(self._sum_indexes)),
                self._sum_indexes)
        )
        used = list(range(len(columns)))
        key_expr = "(" + "".join(f"row[{i}], " for i in pins) + ")"
        snap_expr = "(" + "".join(f"c{p}[rid], " for p in totals) + ")"
        fresh_expr = (
            "(" + "".join(f"row[{i}], " for i in pins)
            + "0, " * len(totals) + ")"
        )
        row_expr = "(" + "".join(f"c{p}[rid], " for p in used) + ")"
        body = [
            "            if rid is None:",
            "                if sign < 0:",
            "                    raise SelfMaintenanceError(_ABSENT + repr(key))",
            "                if free:",
            "                    rid = free_pop()",
        ]
        body += [
            f"                    c{slot}[rid] = row[{i}]"
            for slot, i in enumerate(pins)
        ] + [f"                    c{p}[rid] = 0" for p in totals]
        body += [
            "                    live[rid] = 1",
            "                else:",
            "                    rid = len(live)",
        ]
        body += [
            f"                    a{slot}(row[{i}])"
            for slot, i in enumerate(pins)
        ] + [f"                    a{p}(0)" for p in totals]
        body += [
            "                    live_append(1)",
            "                key_rids[key] = rid",
            "                if rid_indexes:",
            f"                    index_rid({fresh_expr}, rid)",
        ]
        body += [
            f"            c{p}[rid] += sign * row[{i}]"
            for p, i in sum_positions
        ]
        body += [
            f"            count = c{count_position}[rid] + sign",
            "            if count == 0:",
            "                del key_rids[key]",
            "                if rid_indexes:",
            f"                    unindex_rid({row_expr}, rid)",
            "                live[rid] = 0",
            "                free_append(rid)",
        ]
        body += [
            f"                c{p}[rid] = None"
            for p in used
            if type(columns[p]) is list
        ]
        body += [
            "            elif count < 0:",
            "                raise SelfMaintenanceError(_NEGATIVE + repr(key))",
            "            else:",
            f"                c{count_position}[rid] = count",
        ]
        lines = [
            "def _apply(self, base_rows, sign):",
            "    store = self.store",
            "    columns = store.columns",
        ]
        lines += [f"    c{p} = columns[{p}]" for p in used]
        lines += [f"    a{p} = c{p}.append" for p in used]
        lines += [
            "    live = store.live",
            "    live_append = live.append",
            "    free = store.free",
            "    free_pop = free.pop",
            "    free_append = free.append",
            "    key_rids = self._key_rids",
            "    get = key_rids.get",
            "    rid_indexes = self._rid_indexes",
            "    index_rid = self._index_rid",
            "    unindex_rid = self._unindex_rid",
            "    undo = self._undo",
            "    if undo is not None:",
            "        touched = []",
            "        undo.record(",
            "            lambda entries=touched: self._restore_groups(entries),",
            "            rows=len(base_rows),",
            "        )",
            "        touched_append = touched.append",
            "        undo_saved = self._undo_saved",
            "        saved_add = undo_saved.add",
            "        for row in base_rows:",
            f"            key = {key_expr}",
            "            rid = get(key)",
            "            if key not in undo_saved:",
            "                saved_add(key)",
            "                touched_append(",
            f"                    (key, None if rid is None else {snap_expr})",
            "                )",
        ]
        lines += body
        lines += [
            "    else:",
            "        for row in base_rows:",
            f"            key = {key_expr}",
            "            rid = get(key)",
        ]
        lines += body
        namespace = {
            "SelfMaintenanceError": SelfMaintenanceError,
            "_ABSENT": f"{self.aux.name}: deletion from absent group ",
            "_NEGATIVE": f"{self.aux.name}: negative count in group ",
        }
        exec(compile("\n".join(lines), "<columnar-apply>", "exec"), namespace)
        return namespace["_apply"]

    def apply(self, base_rows: list[tuple], sign: int) -> None:
        if not base_rows:
            return
        if sign < 0 and (self._min_indexes or self._max_indexes):
            raise SelfMaintenanceError(
                f"{self.aux.name} holds folded MIN/MAX (append-only mode) "
                "and cannot absorb deletions"
            )
        self._touch()
        fast_apply = self._fast_apply
        if fast_apply is not None:
            fast_apply(self, base_rows, sign)
            return
        store = self.store
        key_rids = self._key_rids
        pin_extract = self._pin_extract
        sum_columns = self._sum_columns
        min_columns = self._min_columns
        max_columns = self._max_columns
        count_column = self._count_column
        totals_columns = self._totals_columns
        rid_indexes = self._rid_indexes
        undo = self._undo
        touched: list[tuple] | None = None
        undo_saved = self._undo_saved
        if undo is not None:
            touched = []
            undo.record(
                lambda entries=touched: self._restore_groups(entries),
                rows=len(base_rows),
            )
        for row in base_rows:
            key = pin_extract(row)
            rid = key_rids.get(key)
            if touched is not None and key not in undo_saved:
                undo_saved.add(key)
                snapshot = (
                    None
                    if rid is None
                    else tuple([c[rid] for c in totals_columns])
                )
                touched.append((key, snapshot))
            if rid is None:
                if sign < 0:
                    raise SelfMaintenanceError(
                        f"{self.aux.name}: deletion from absent group {key!r}"
                    )
                fresh = (
                    key
                    + self._sum_zeros
                    + self._min_extract(row)
                    + self._max_extract(row)
                    + (0,)
                )
                rid = key_rids[key] = store.append(fresh)
                if rid_indexes:
                    self._index_rid(fresh, rid)
            for column, index in sum_columns:
                column[rid] += sign * row[index]
            for column, index in min_columns:
                value = row[index]
                if value < column[rid]:
                    column[rid] = value
            for column, index in max_columns:
                value = row[index]
                if value > column[rid]:
                    column[rid] = value
            count = count_column[rid] + sign
            if count == 0:
                del key_rids[key]
                if rid_indexes:
                    self._unindex_rid(store.row(rid), rid)
                store.release(rid)
            elif count < 0:
                raise SelfMaintenanceError(
                    f"{self.aux.name}: negative count in group {key!r}"
                )
            else:
                count_column[rid] = count

    def begin_undo(self, log: UndoLog) -> None:
        self._undo = log
        self._undo_saved = set()
        # Recorded first, so LIFO runs it after every group restore.
        log.record(self._drop_derived_state)

    def end_undo(self) -> None:
        self._undo = None
        self._undo_saved = set()

    def _restore_groups(self, entries: list[tuple]) -> None:
        """Inverse of one apply batch: per first-touched key, re-install
        the pre-transaction totals (or remove a group that did not
        exist).  Rid indexes are derived state — dropped wholesale and
        rebuilt lazily, exactly like the row engine's rollback."""
        self._drop_derived_state()
        store = self.store
        key_rids = self._key_rids
        for key, snapshot in reversed(entries):
            rid = key_rids.get(key)
            if snapshot is None:
                if rid is not None:
                    del key_rids[key]
                    store.release(rid)
            elif rid is not None:
                columns = store.columns
                for position, value in zip(self._total_positions, snapshot):
                    columns[position][rid] = value
            else:
                key_rids[key] = store.append(key + snapshot)


# ----------------------------------------------------------------------
# Fused stage kernels.
# ----------------------------------------------------------------------


class _PropagateStep:
    """One resolved join step of a fused propagate kernel."""

    __slots__ = ("table", "probe_src", "probe_col", "right_col", "extras")

    def __init__(self, table, probe_src, probe_col, right_col, extras):
        self.table = table
        self.probe_src = probe_src
        self.probe_col = probe_col
        self.right_col = right_col
        #: extra equijoin pairs: ((left_src, left_col, right_col), ...)
        self.extras = extras


class _PropagatePlan:
    """Join-step schedule + fold accessors for one input schema.

    The fold reads *accessors* — ``(source, column)`` pairs where source
    0 is the delta-side row and source ``k`` is the k-th joined column
    store — so contributions stream straight out of the columns into
    the group accumulators without ever materializing joined tuples.
    """

    __slots__ = (
        "steps", "key_accessors", "count_accessor", "sum_accessors",
        "raw_accessors", "fast_specs", "fast_fold",
    )

    def __init__(self, steps, key_accessors, count_accessor,
                 sum_accessors, raw_accessors, fast_specs, fast_fold):
        self.steps = steps
        self.key_accessors = key_accessors
        self.count_accessor = count_accessor
        #: ``(slot, src, col, scale_by_multiplicity)`` per SUM/AVG item.
        self.sum_accessors = sum_accessors
        #: ``(slot, is_extremum, src, col, combine)`` per raw-value item.
        self.raw_accessors = raw_accessors
        #: ``(src, value_col)`` decode maps the compiled fold probes, in
        #: join order (None fast_fold means the shape is not eligible).
        self.fast_specs = fast_specs
        #: ``fold(rows, groups, maps) -> folded`` compiled for this exact
        #: shape, or None to use the generic accessor fold.
        self.fast_fold = fast_fold


def _compile_fast_fold(steps, key_accessors, count_accessor, sum_accessors,
                       raw_accessors):
    """Compile the propagate fold for one plan shape into straight-line
    code over dictionary-encoded join columns.

    Eligible shapes: every join step is a single-pair equijoin probed
    from the delta row, and the program holds only COUNT/SUM/AVG items
    (extrema and distincts keep the generic accessor fold).  Each joined
    source becomes a ``{join key -> needed column value}`` decode map
    (unique-key proof included: a non-unique key disables the map, and
    the kernel falls back at run time), so the per-row work is a few
    dict probes with zero interpretive dispatch — the same move
    :mod:`repro.engine.compilecache` makes for predicates.

    Returns ``(specs, fold)`` where ``specs`` lists the ``(src,
    value_col)`` decode maps to fetch per batch and ``fold(rows, groups,
    maps)`` folds a batch, or ``(None, None)`` when ineligible.
    """
    if raw_accessors:
        return None, None
    for step in steps:
        if step.right_col is None or step.extras or step.probe_src != 0:
            return None, None
    spec_index: dict[tuple[int, int], int] = {}

    def value_expr(src, col):
        if src == 0:
            return f"row[{col}]"
        i = spec_index.setdefault((src, col), len(spec_index))
        return f"v{i}"

    key_exprs = [value_expr(src, col) for src, col in key_accessors]
    mult_expr = (
        None if count_accessor is None else value_expr(*count_accessor)
    )
    sum_exprs = [
        (slot, value_expr(src, col), scaled)
        for slot, src, col, scaled in sum_accessors
    ]
    # Sources no accessor reads still gate the join: their identity map
    # proves key uniqueness (multiplicity one) and filters non-matches.
    read_srcs = {src for src, __ in spec_index}
    for src in range(1, len(steps) + 1):
        if src not in read_srcs:
            spec = (src, steps[src - 1].right_col)
            spec_index.setdefault(spec, len(spec_index))
    specs = sorted(spec_index, key=spec_index.get)
    sum_slots = [slot for slot, __, __ in sum_exprs]

    lines = ["def _fold(rows, groups, maps):"]
    for i in range(len(specs)):
        lines.append(f"    g{i} = maps[{i}].get")
    lines.append("    counts = {}")
    lines.append("    counts_get = counts.get")
    for slot in sum_slots:
        lines.append(f"    s{slot} = {{}}")
        lines.append(f"    s{slot}_get = s{slot}.get")
    lines.append("    folded = 0")
    lines.append("    for row in rows:")
    # Probe in join order so a non-matching row exits as early as the
    # generic binding loop would.
    for i, (src, __) in sorted(enumerate(specs), key=lambda e: e[1][0]):
        probe_col = steps[src - 1].probe_col
        lines.append(f"        v{i} = g{i}(row[{probe_col}], _MISS)")
        lines.append(f"        if v{i} is _MISS:")
        lines.append("            continue")
    if len(key_exprs) == 1:
        lines.append(f"        key = ({key_exprs[0]},)")
    else:
        lines.append(f"        key = ({', '.join(key_exprs)})")
    lines.append("        folded += 1")
    if mult_expr is None:
        lines.append("        counts[key] = counts_get(key, 0) + 1")
    else:
        lines.append(f"        m = {mult_expr}")
        lines.append("        counts[key] = counts_get(key, 0) + m")
    for slot, expr, scaled in sum_exprs:
        term = f"({expr}) * m" if scaled and mult_expr is not None else expr
        lines.append(f"        s{slot}[key] = s{slot}_get(key, 0) + {term}")
    lines.append("    for key, count in counts.items():")
    lines.append("        acc = GroupAccumulator(count)")
    for slot in sum_slots:
        lines.append(f"        acc.sums[{slot}] = s{slot}[key]")
    lines.append("        groups[key] = acc")
    lines.append("    return folded")
    namespace = {"_MISS": _MISS, "GroupAccumulator": GroupAccumulator}
    exec(compile("\n".join(lines), "<columnar-fold>", "exec"), namespace)
    return tuple(specs), namespace["_fold"]


class ColumnarBackend(Backend):
    """Column-store materializations and fused per-batch plan kernels."""

    name = "columnar"

    def __init__(self):
        #: id(node) -> (node, kernel | None); the node reference keeps
        #: the id stable, None caches an unfusable shape.
        self._kernels: dict[int, tuple] = {}

    def make_materialization(self, aux, use_indexes=True, namespace=""):
        if aux.is_compressed:
            return ColumnarCompressedStore(aux, use_indexes)
        return ColumnarProjectionStore(aux, use_indexes)

    def execute_view_plan(self, plan, database):
        # One-time loads and recomputation carry no delta batch to fuse
        # over; the interpreter is the right tool.
        return plan.physical.run(ExecutionContext(resolver=database.relation))

    def describe(self, namespace: str = "") -> str | None:
        return (
            "columnar column stores (typed columns, liveness mask, free-list "
            "rid recycling) with value->rid hash indexes; delta stages run "
            "as fused batch kernels (selection vectors, rid-index probe "
            "joins, symbolic-program aggregate fold)"
        )

    # -- plan dispatch -------------------------------------------------

    def run_plan(self, node, ctx: ExecutionContext):
        kind = type(node)
        if kind is AccumulateNode:
            kernel = self._kernel(node, self._compile_propagate)
        elif kind is KeyProbeSemiJoinNode:
            kernel = self._kernel(node, self._compile_reduce)
        elif kind is DeltaScanNode or kind is FilterNode:
            kernel = self._kernel(node, self._compile_local)
        else:
            kernel = None
        if kernel is None:
            return node.run(ctx)
        return run_stage_root(node, ctx, kernel)

    def _kernel(self, node, compile_fn):
        entry = self._kernels.get(id(node))
        if entry is None or entry[0] is not node:
            if len(self._kernels) > 1024:  # replan hygiene, rarely hit
                self._kernels.clear()
            entry = self._kernels[id(node)] = (node, compile_fn(node))
        return entry[1]

    # -- local stage: delta scan + selection vectors -------------------

    def _compile_local(self, node):
        conditions = []
        current = node
        while type(current) is FilterNode:
            conditions.append(current.condition)
            current = current.children[0]
        if type(current) is not DeltaScanNode:
            return None
        table, sign = current.table, current.sign
        conditions.reverse()  # apply innermost (scan-adjacent) first

        def kernel(_node, ctx, _table=table, _sign=sign,
                   _conditions=tuple(conditions)):
            delta = ctx.delta(_table, _sign)
            rows = delta.rows
            ctx.count("kernel_batches")
            ctx.count("kernel_rows", len(rows))
            schema = delta.schema
            for condition in _conditions:
                if not rows:
                    break
                predicate = compiled_predicate(condition, schema)
                selection = selection_vector(rows, predicate)
                if len(selection) != len(rows):
                    rows = gather(rows, selection)
            if rows is delta.rows:
                return delta
            return Relation(schema, rows, validate=False)

        return kernel

    # -- reduce stage: key-vector semijoin chain -----------------------

    def _compile_reduce(self, node):
        probes = []
        current = node
        while type(current) is KeyProbeSemiJoinNode:
            probes.append((current.fk_index, current.dep_table, current.dep_key))
            current = current.children[0]
        probes.reverse()  # innermost reduction first, as planned
        leaf = current

        positions: dict[str, int] = {}

        def kernel(_node, ctx, _probes=tuple(probes), _leaf=leaf):
            source = self.run_plan(_leaf, ctx)
            rows = source.rows
            ctx.count("kernel_batches")
            ctx.count("kernel_rows", len(rows))
            key_sets = []
            for fk, dep_table, dep_key in _probes:
                provider = ctx.provider(dep_table)
                if isinstance(provider, _ColumnarStore) and provider.use_indexes:
                    # Probe the value->rid index dict directly: its keys
                    # are exactly the live key values, and the schema
                    # position lookup is paid once per plan, not per txn.
                    position = positions.get(dep_table)
                    if position is None:
                        position = positions[dep_table] = (
                            provider.schema.index_of(dep_key)
                        )
                    keys = provider.rid_index(position)
                else:
                    keys = provider.key_values(dep_key)
                key_sets.append((fk, keys))
            if rows:
                if len(key_sets) == 1:
                    fk, keys = key_sets[0]
                    rows = [row for row in rows if row[fk] in keys]
                elif len(key_sets) == 2:
                    (fk_a, keys_a), (fk_b, keys_b) = key_sets
                    rows = [
                        row
                        for row in rows
                        if row[fk_a] in keys_a and row[fk_b] in keys_b
                    ]
                else:
                    for fk, keys in key_sets:
                        if not rows:
                            break
                        rows = [row for row in rows if row[fk] in keys]
            if len(rows) == len(source.rows):
                return source
            return Relation(source.schema, rows, validate=False)

        return kernel

    # -- propagate stage: rid-index probe join + aggregate fold --------

    def _compile_propagate(self, node):
        steps: list[tuple[str, tuple]] = []
        current = node.children[0]
        while type(current) is HashJoinNode:
            right = current.children[1]
            if type(right) is AuxScanNode or type(right) is NeighborRestrictNode:
                steps.append((right.table, tuple(current.pairs)))
            else:
                return None
            current = current.children[0]
        steps.reverse()  # first join first
        leaf = current
        reconstructor = node.reconstructor
        plans: dict[Schema, _PropagatePlan] = {}

        def kernel(_node, ctx, _steps=tuple(steps), _leaf=leaf):
            source = self.run_plan(_leaf, ctx)
            providers = [ctx.provider(table) for table, __ in _steps]
            if any(not isinstance(p, _ColumnarStore) for p in providers):
                # Foreign materializations (shouldn't happen under this
                # backend): interpret the join tree instead of fusing.
                return node.execute(ctx, [node.children[0].run(ctx)])
            plan = plans.get(source.schema)
            if plan is None:
                plan = plans[source.schema] = self._resolve_propagate(
                    source.schema, _steps, providers, reconstructor
                )
            rows = source.rows
            ctx.count("kernel_batches")
            groups: dict = {}
            if not rows:
                ctx.count("kernel_rows", 0)
                return groups
            if plan.fast_fold is not None:
                maps = []
                plan_steps = plan.steps
                for src, value_col in plan.fast_specs:
                    decode = providers[src - 1].decode_map(
                        plan_steps[src - 1].right_col, value_col
                    )
                    if decode is None:
                        break  # non-unique join key: generic fold below
                    maps.append(decode)
                else:
                    folded = plan.fast_fold(rows, groups, maps)
                    ctx.count("index_probes", len(rows) * len(plan_steps))
                    ctx.count("kernel_rows", folded)
                    return groups
            stores = [provider.store for provider in providers]
            bindings = [(row,) for row in rows]
            probes = 0
            for src, (step, provider) in enumerate(
                zip(plan.steps, providers), start=1
            ):
                if not bindings:
                    break
                extras = step.extras
                next_bindings = []
                if step.right_col is None:
                    # Cross step: every live rid joins (degenerate and
                    # rare — kept for completeness).
                    rids = list(stores[src - 1].live_rids())
                    for binding in bindings:
                        for rid in rids:
                            next_bindings.append(binding + (rid,))
                    bindings = next_bindings
                    continue
                index = provider.rid_index(step.right_col)
                probe_src, probe_col = step.probe_src, step.probe_col
                probe_column = (
                    None
                    if probe_src == 0
                    else stores[probe_src - 1].columns[probe_col]
                )
                index_get = index.get
                append = next_bindings.append
                probes += len(bindings)
                if probe_column is None and not extras:
                    for binding in bindings:
                        rids = index_get(binding[0][probe_col])
                        if rids:
                            for rid in rids:
                                append(binding + (rid,))
                else:
                    for binding in bindings:
                        if probe_column is None:
                            value = binding[0][probe_col]
                        else:
                            value = probe_column[binding[probe_src]]
                        rids = index_get(value)
                        if not rids:
                            continue
                        if extras:
                            for rid in rids:
                                if self._extras_match(
                                    binding, rid, extras, stores, src - 1
                                ):
                                    append(binding + (rid,))
                        else:
                            for rid in rids:
                                append(binding + (rid,))
                bindings = next_bindings
            if probes:
                ctx.count("index_probes", probes)
            if not bindings:
                ctx.count("kernel_rows", 0)
                return groups
            # Accessor-based fold: aggregate contributions stream straight
            # out of the bound columns — joined tuples never materialize.
            columns_by_src = [None]
            for store in stores:
                columns_by_src.append(store.columns)
            key_accessors = plan.key_accessors
            count_accessor = plan.count_accessor
            sum_accessors = plan.sum_accessors
            raw_accessors = plan.raw_accessors
            groups_get = groups.get
            for binding in bindings:
                row0 = binding[0]
                key = tuple(
                    [
                        row0[col]
                        if src == 0
                        else columns_by_src[src][col][binding[src]]
                        for src, col in key_accessors
                    ]
                )
                acc = groups_get(key)
                if acc is None:
                    acc = groups[key] = GroupAccumulator()
                if count_accessor is None:
                    multiplicity = 1
                else:
                    src, col = count_accessor
                    multiplicity = (
                        row0[col]
                        if src == 0
                        else columns_by_src[src][col][binding[src]]
                    )
                acc.multiplicity += multiplicity
                if sum_accessors:
                    sums = acc.sums
                    for slot, src, col, scaled in sum_accessors:
                        value = (
                            row0[col]
                            if src == 0
                            else columns_by_src[src][col][binding[src]]
                        )
                        if scaled:
                            value = value * multiplicity
                        sums[slot] = sums.get(slot, 0) + value
                for slot, is_extremum, src, col, combine in raw_accessors:
                    value = (
                        row0[col]
                        if src == 0
                        else columns_by_src[src][col][binding[src]]
                    )
                    if is_extremum:
                        current = acc.extrema.get(slot)
                        acc.extrema[slot] = (
                            value
                            if current is None
                            else combine(current, value)
                        )
                    else:
                        acc.distincts.setdefault(slot, set()).add(value)
            ctx.count("kernel_rows", len(bindings))
            return groups

        return kernel

    @staticmethod
    def _extras_match(binding, rid, extras, stores, right_index) -> bool:
        right_columns = stores[right_index].columns
        for left_src, left_col, right_col in extras:
            if left_src == 0:
                left_value = binding[0][left_col]
            else:
                left_value = stores[left_src - 1].columns[left_col][
                    binding[left_src]
                ]
            if left_value != right_columns[right_col][rid]:
                return False
        return True

    @staticmethod
    def _resolve_propagate(source_schema, steps, providers, reconstructor):
        """Resolve join pairs and the fold program to (source, column)
        accessors against the cumulative joined schema."""
        offsets = [0]
        cumulative = source_schema
        resolved: list[_PropagateStep] = []
        for (table, pairs), provider in zip(steps, providers):
            right_schema = provider.schema
            offsets.append(len(cumulative))

            def locate(ref, _cumulative=cumulative):
                position = _cumulative.index_of(ref)
                src = 0
                for i in range(len(offsets) - 1, -1, -1):
                    if position >= offsets[i]:
                        src = i
                        break
                return src, position - offsets[src]

            if pairs:
                left_ref, right_ref = pairs[0]
                probe_src, probe_col = locate(left_ref)
                right_col = right_schema.index_of(right_ref)
                extras = tuple(
                    locate(lref) + (right_schema.index_of(rref),)
                    for lref, rref in pairs[1:]
                )
            else:
                probe_src = probe_col = 0
                right_col = None
                extras = ()
            resolved.append(
                _PropagateStep(table, probe_src, probe_col, right_col, extras)
            )
            cumulative = cumulative.concat(right_schema)
        program = reconstructor.resolve_program(cumulative)

        def to_accessor(position):
            src = 0
            for i in range(len(offsets) - 1, -1, -1):
                if position >= offsets[i]:
                    src = i
                    break
            return src, position - offsets[src]

        key_accessors = tuple(
            to_accessor(p) for p in program.key_positions
        )
        count_accessor = (
            None
            if program.count_position is None
            else to_accessor(program.count_position)
        )
        sum_accessors = tuple(
            (slot,) + to_accessor(position) + (scaled,)
            for slot, position, scaled in program.sum_items
        )
        raw_accessors = tuple(
            (slot, category is AggregateCategory.EXTREMUM)
            + to_accessor(position)
            + (
                reconstructor.combiner(slot)
                if category is AggregateCategory.EXTREMUM
                else None,
            )
            for slot, category, position in program.raw_items
        )
        fast_specs, fast_fold = _compile_fast_fold(
            resolved, key_accessors, count_accessor, sum_accessors,
            raw_accessors,
        )
        return _PropagatePlan(
            tuple(resolved),
            key_accessors,
            count_accessor,
            sum_accessors,
            raw_accessors,
            fast_specs,
            fast_fold,
        )
