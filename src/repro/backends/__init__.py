"""Pluggable execution backends behind the plan layer.

The paper's reductions are relational algebra, not Python; this package
proves that by running the same :class:`~repro.plan.planner.ViewPlan` /
:class:`~repro.plan.maintenance.DeltaPlans` against more than one
store.  :class:`~repro.backends.base.MemoryBackend` wraps the existing
in-memory interpreter; :class:`~repro.backends.sqlite.SQLiteBackend`
compiles plans to SQL (:mod:`repro.backends.sqlgen`) and executes them
on stdlib :mod:`sqlite3` with native transactional rollback.

:class:`~repro.backends.sharded.ShardedBackend` composes N per-shard
in-memory stores behind the same interface, partitioning the root
auxiliary view by its group key (``"sharded:<N>"`` runs the shards
serially in-process; ``"sharded:<N>:parallel"`` drives N persistent
worker processes).  :class:`~repro.backends.columnar.ColumnarBackend`
stores each auxiliary view as typed columns with value->rid hash
indexes and compiles delta plans to fused batch kernels
(:mod:`repro.backends.kernels`).

Select a backend with ``Warehouse(..., backend="sqlite")``, the CLI's
``--backend`` flag, or the ``REPRO_BACKEND`` environment variable (used
by CI to run the whole suite against SQLite and against serial
sharding).
"""

from repro.backends.base import (
    BACKEND_NAMES,
    BACKEND_SPECS,
    Backend,
    BackendError,
    MemoryBackend,
    make_backend,
    resolve_backend_name,
)

__all__ = [
    "BACKEND_NAMES",
    "BACKEND_SPECS",
    "Backend",
    "BackendError",
    "MemoryBackend",
    "make_backend",
    "resolve_backend_name",
]
