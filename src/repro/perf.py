"""Lightweight performance counters and phase timers for the hot path.

The maintenance runtime is instrumented with named counters (rows
reduced away, index probes, groups touched, rolled-back transactions,
...) and wall-clock timings for the phases of Section 3.2's maintenance
loop: ``coalesce``, ``validate`` (the upfront no-mutation pass),
``local-reduce``, ``join-reduce``, ``aggregate-fold``, ``aux-apply``,
``recompute``, and ``rollback`` (only on failed transactions).
Overhead is two ``perf_counter`` calls per phase per transaction, so
the instrumentation can stay on in production.

:class:`PerfStats` is a thin façade over a
:class:`~repro.obs.metrics.MetricsRegistry`: its ``counters`` and
``seconds`` stores *are* registry-owned counter groups (zero-copy —
hot paths keep doing plain ``Counter`` arithmetic), and per-transaction
distributions (latency, delta size, throughput) land in the registry's
fixed-bucket histograms via :meth:`observe`.  Everything is therefore
exportable as Prometheus text exposition or JSONL through the registry,
while the historical dict/render surfaces below stay intact — including
the ``timer`` hook the fault-injection harness overrides to define
transaction phase boundaries.

Snapshots are plain dictionaries, surfaced through
``Warehouse.storage_report``/``Warehouse.perf_report`` and recorded by
``benchmarks/bench_hotpath_maintenance.py`` so perf regressions show up
as numbers, not vibes.
"""

from __future__ import annotations

import time

from repro.obs.metrics import (
    DELTA_ROWS_BUCKETS,
    LATENCY_MS_BUCKETS,
    QERROR_BUCKETS,
    ROWS_PER_SEC_BUCKETS,
    MetricsRegistry,
)

#: Phase names in the order maintenance runs them (used for rendering).
PHASES = (
    "coalesce",
    "validate",
    "local-reduce",
    "join-reduce",
    "aggregate-fold",
    "aux-apply",
    "recompute",
    "rollback",
)

#: Registry histogram names and bucket bounds for the per-transaction
#: distributions the maintainer observes (see ``SelfMaintainer.apply``).
TXN_LATENCY_MS = "repro_txn_latency_ms"
TXN_DELTA_ROWS = "repro_txn_delta_rows"
TXN_ROWS_PER_SEC = "repro_txn_rows_per_sec"
REFRESH_PROPAGATED_ROWS = "repro_refresh_propagated_rows"
#: Cost-planner estimate quality: one q-error sample per checked stage
#: (see ``SelfMaintainer._check_estimates``); samples beyond the
#: re-plan threshold coincide with ``replans`` counter increments.
PLANNER_QERROR = "repro_planner_qerror"
HISTOGRAM_BUCKETS = {
    TXN_LATENCY_MS: LATENCY_MS_BUCKETS,
    TXN_DELTA_ROWS: DELTA_ROWS_BUCKETS,
    TXN_ROWS_PER_SEC: ROWS_PER_SEC_BUCKETS,
    REFRESH_PROPAGATED_ROWS: DELTA_ROWS_BUCKETS,
    PLANNER_QERROR: QERROR_BUCKETS,
}


class _PhaseTimer:
    """One phase timing: two ``perf_counter`` calls around the block.

    A plain class instead of ``@contextmanager`` — the generator
    machinery costs several times the measurement itself on the
    per-transaction hot path, and this runs for every phase of every
    transaction.
    """

    __slots__ = ("_seconds", "_phase", "_started")

    def __init__(self, seconds, phase: str):
        self._seconds = seconds
        self._phase = phase

    def __enter__(self) -> None:
        self._started = time.perf_counter()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._seconds[self._phase] += time.perf_counter() - self._started
        return False


class PerfStats:
    """Named counters plus per-phase cumulative wall-clock seconds."""

    __slots__ = ("registry", "counters", "seconds", "_histograms")

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        # Live registry stores, not copies: the exporter walks the same
        # Counter objects the hot path mutates.
        self.counters = self.registry.counter_group(
            "repro_maintenance_events_total", "event"
        )
        self.seconds = self.registry.counter_group(
            "repro_phase_seconds_total", "phase"
        )
        self._histograms: dict = {}

    def count(self, name: str, amount: int = 1) -> None:
        if amount:
            self.counters[name] += amount

    def timer(self, phase: str) -> _PhaseTimer:
        """A context manager timing one phase.  Stays overridable as an
        unbound call (``PerfStats.timer(self, phase)``) — the
        fault-injection harness subclasses this exact hook to define
        transaction phase boundaries."""
        return _PhaseTimer(self.seconds, phase)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the registry histogram ``name`` (bucket
        bounds from :data:`HISTOGRAM_BUCKETS`, latency bounds otherwise)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            buckets = HISTOGRAM_BUCKETS.get(name, LATENCY_MS_BUCKETS)
            histogram = self.registry.histogram(name, buckets)
            self._histograms[name] = histogram
        histogram.observe(value)

    def histogram_summary(self, name: str) -> dict:
        """count/sum/p50/p95/p99 of one observed distribution."""
        buckets = HISTOGRAM_BUCKETS.get(name, LATENCY_MS_BUCKETS)
        return self.registry.histogram(name, buckets).summary()

    def merge(self, other: "PerfStats") -> None:
        """Fold ``other`` in — counters, seconds, *and* the registry's
        histograms/gauges, so warehouse-level reports aggregate fully."""
        self.registry.merge(other.registry)

    def reset(self) -> None:
        self.registry.reset()
        # The reset registry keeps the group bindings alive; re-fetch in
        # case this PerfStats was constructed around a foreign registry.
        self.counters = self.registry.counter_group(
            "repro_maintenance_events_total", "event"
        )
        self.seconds = self.registry.counter_group(
            "repro_phase_seconds_total", "phase"
        )
        self._histograms.clear()

    def snapshot(self) -> dict:
        """A JSON-serializable copy: counters plus timings in milliseconds.

        Timings follow :data:`PHASES` execution order (then extras, e.g.
        ``plan:*`` node timers, sorted) — matching :meth:`render`, so
        benchmark JSON diffs stay stable and readable.
        """
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "timings_ms": {
                phase: round(self.seconds[phase] * 1000.0, 3)
                for phase in self._ordered_phases()
            },
        }

    def _ordered_phases(self) -> list[str]:
        ordered = [p for p in PHASES if p in self.seconds]
        ordered += [p for p in sorted(self.seconds) if p not in PHASES]
        return ordered

    def render(self) -> str:
        """An aligned text table (for CLI and example output)."""
        lines = ["phase timings (ms):"]
        ordered = self._ordered_phases()
        phase_width = max((len(p) for p in ordered), default=0) + 2
        for phase in ordered:
            lines.append(
                f"  {phase:<{phase_width}}{self.seconds[phase] * 1000.0:>10.3f}"
            )
        if self.counters:
            lines.append("counters:")
            name_width = max(len(n) for n in self.counters) + 2
            for name in sorted(self.counters):
                lines.append(f"  {name:<{name_width}}{self.counters[name]:>12}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"PerfStats({dict(self.counters)}, {dict(self.seconds)})"
