"""Lightweight performance counters and phase timers for the hot path.

The maintenance runtime is instrumented with named counters (rows
reduced away, index probes, groups touched, rolled-back transactions,
...) and wall-clock timings for the phases of Section 3.2's maintenance
loop: ``coalesce``, ``validate`` (the upfront no-mutation pass),
``local-reduce``, ``join-reduce``, ``aggregate-fold``, ``aux-apply``,
``recompute``, and ``rollback`` (only on failed transactions).
Overhead is two ``perf_counter`` calls per phase per transaction, so
the instrumentation can stay on in production.

Snapshots are plain dictionaries, surfaced through
``Warehouse.storage_report``/``Warehouse.perf_report`` and recorded by
``benchmarks/bench_hotpath_maintenance.py`` so perf regressions show up
as numbers, not vibes.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from typing import Iterator

#: Phase names in the order maintenance runs them (used for rendering).
PHASES = (
    "coalesce",
    "validate",
    "local-reduce",
    "join-reduce",
    "aggregate-fold",
    "aux-apply",
    "recompute",
    "rollback",
)


class PerfStats:
    """Named counters plus per-phase cumulative wall-clock seconds."""

    __slots__ = ("counters", "seconds")

    def __init__(self):
        self.counters: Counter = Counter()
        self.seconds: Counter = Counter()

    def count(self, name: str, amount: int = 1) -> None:
        if amount:
            self.counters[name] += amount

    @contextmanager
    def timer(self, phase: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[phase] += time.perf_counter() - started

    def merge(self, other: "PerfStats") -> None:
        self.counters.update(other.counters)
        self.seconds.update(other.seconds)

    def reset(self) -> None:
        self.counters.clear()
        self.seconds.clear()

    def snapshot(self) -> dict:
        """A JSON-serializable copy: counters plus timings in milliseconds."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "timings_ms": {
                phase: round(self.seconds[phase] * 1000.0, 3)
                for phase in sorted(self.seconds)
            },
        }

    def render(self) -> str:
        """An aligned text table (for CLI and example output)."""
        lines = ["phase timings (ms):"]
        ordered = [p for p in PHASES if p in self.seconds]
        ordered += [p for p in sorted(self.seconds) if p not in PHASES]
        for phase in ordered:
            lines.append(f"  {phase:<16}{self.seconds[phase] * 1000.0:>10.3f}")
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<28}{self.counters[name]:>12}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"PerfStats({dict(self.counters)}, {dict(self.seconds)})"
