"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` provides deterministic fault injection at
maintenance phase boundaries plus canonical state fingerprints — the
machinery the crash-consistency suite (and any downstream embedder)
uses to prove that failed transactions leave ``{V} ∪ X`` untouched.
"""

from repro.testing.faults import (
    FaultInjector,
    InjectedFault,
    state_fingerprint,
    verify_index_consistency,
)

__all__ = [
    "FaultInjector",
    "InjectedFault",
    "state_fingerprint",
    "verify_index_consistency",
]
