"""Deterministic fault injection at maintenance phase boundaries.

Every phase of :meth:`SelfMaintainer.apply` runs under
``PerfStats.timer`` — which makes the perf instrumentation a natural
seam for crash testing.  A :class:`FaultInjector` swaps a maintainer's
:class:`~repro.perf.PerfStats` for a subclass that raises
:class:`InjectedFault` at the *N*-th entry to (or exit from) a named
phase, so a test can fail a transaction at any operator boundary —
upfront validation, local reduction, join reduction, the aggregate
fold of any table, auxiliary application, summary recomputation — and
then assert the rollback restored the exact pre-transaction state.

The injector is deterministic (no randomness, no wall-clock
dependence): the same arm spec against the same transaction always
fires at the same operation.  Occurrences count per ``apply`` *call
sequence* since arming, so ``occurrence=2`` of ``aux-apply`` hits the
second table processed, and arming a maintainer registered second in a
warehouse exercises the cross-view (sibling) rollback path.

:func:`state_fingerprint` and :func:`verify_index_consistency` are the
matching assertion helpers: an order-insensitive snapshot of
``{V} ∪ X`` and a check that every maintained hash index still mirrors
its backing bag.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.perf import PHASES, PerfStats


class InjectedFault(RuntimeError):
    """The deliberate failure raised by an armed :class:`FaultInjector`."""


class _FaultingPerf(PerfStats):
    """A PerfStats that gives an injector a hook at every phase boundary."""

    __slots__ = ("_injector",)

    def __init__(self, injector: "FaultInjector"):
        super().__init__()
        self._injector = injector

    @contextmanager
    def timer(self, phase: str) -> Iterator[None]:
        self._injector._fire(phase, "before")
        with PerfStats.timer(self, phase):
            yield
        self._injector._fire(phase, "after")


class FaultInjector:
    """Arms deterministic failures inside one maintainer's apply loop.

    Installing the injector replaces ``maintainer.perf``; stats keep
    accumulating in the replacement and are merged back into the
    original on :meth:`uninstall`.  Arming is one-shot: once the fault
    fires, the injector disarms itself, so the rollback path (which
    also runs under a perf timer) can never re-trigger it.
    """

    def __init__(self, maintainer):
        self._maintainer = maintainer
        self._original = maintainer.perf
        self._perf = _FaultingPerf(self)
        maintainer.perf = self._perf
        self._armed: list | None = None
        self._on_fire: Callable[[], None] | None = None
        self.fired = 0

    def arm(
        self,
        phase: str,
        occurrence: int = 1,
        when: str = "before",
        on_fire: Callable[[], None] | None = None,
    ) -> "FaultInjector":
        """Raise at the ``occurrence``-th boundary of ``phase``.

        ``when`` picks the entry (``"before"``: the phase's work has not
        run) or the exit (``"after"``: it has) of the phase.  ``on_fire``
        runs just before the raise — e.g. to attempt a checkpoint from
        "inside the crash".  Arming the ``rollback`` phase is refused:
        a fault there would sabotage the recovery under test.
        """
        if phase == "rollback":
            raise ValueError("cannot inject a fault into the rollback phase")
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r} (choose from {PHASES})")
        if when not in ("before", "after"):
            raise ValueError(f"when must be 'before' or 'after', not {when!r}")
        if occurrence < 1:
            raise ValueError("occurrence counts from 1")
        self._armed = [phase, when, occurrence]
        self._on_fire = on_fire
        return self

    def disarm(self) -> None:
        self._armed = None
        self._on_fire = None

    def uninstall(self) -> None:
        """Restore the maintainer's original PerfStats (keeping the
        counters and timings gathered while installed)."""
        self._original.merge(self._perf)
        self._perf.reset()
        self._maintainer.perf = self._original

    def _fire(self, phase: str, when: str) -> None:
        armed = self._armed
        if armed is None or armed[0] != phase or armed[1] != when:
            return
        armed[2] -= 1
        if armed[2] > 0:
            return
        on_fire = self._on_fire
        self.disarm()  # one-shot: never re-fires during rollback
        self.fired += 1
        if on_fire is not None:
            on_fire()
        raise InjectedFault(f"injected fault {when} phase {phase!r}")


def state_fingerprint(maintainer) -> dict:
    """A canonical, order-insensitive snapshot of ``{V} ∪ X``.

    Two fingerprints are equal exactly when the maintained summary
    groups and every auxiliary view are identical as bags — the
    equality the rollback guarantee promises (row order inside a
    relation's backing list is not part of the state).
    """
    auxiliary = {
        table: sorted(Counter(relation.rows).items(), key=repr)
        for table, relation in maintainer.aux_relations().items()
    }
    groups = sorted(
        (
            (
                key,
                state.count,
                sorted(state.sums.items()),
                sorted(state.values.items(), key=repr),
            )
            for key, state in maintainer._groups.items()
        ),
        key=repr,
    )
    return {"auxiliary": auxiliary, "groups": groups}


def verify_index_consistency(maintainer) -> None:
    """Assert every registered :class:`RowIndex` of every auxiliary
    view still mirrors its backing bag exactly (multiplicities and
    all) — the invariant incremental index maintenance and the undo
    machinery must jointly preserve."""
    for table, materialization in maintainer._materializations.items():
        relation = materialization.relation()
        expected = Counter(relation.rows)
        for index in relation._indexes.values():
            actual = index.as_multiset()
            if actual != expected:
                raise AssertionError(
                    f"index {index!r} on {table!r} diverged from its bag: "
                    f"extra={actual - expected!r} missing={expected - actual!r}"
                )
