"""The paper's analytic storage model (Section 1.1).

The paper sizes relations as ``tuples x fields x 4 bytes`` and derives:

* fact table: ``730 days x 300 stores x 3000 products x 20 transactions
  = 13 140 000 000`` tuples, ``x 5 fields x 4 bytes ≈ 245 GB``;
* ``saledtl`` auxiliary view (1997 only, worst case: all 30 000 products
  sell every day): ``365 x 30000 = 10 950 000`` tuples, ``x 4 fields
  x 4 bytes ≈ 167 MB``.

Note the paper's own arithmetic: the auxiliary-view tuple count uses the
*chain-wide* product assortment (30 000 products selling chain-wide per
day), since ``saledtl`` groups by (timeid, productid) and is therefore
independent of the store dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.relation import Relation

FIELD_BYTES = 4
GIB = 1024 ** 3
MIB = 1024 ** 2


@dataclass(frozen=True)
class SizeEstimate:
    """Tuple count, field count, and resulting bytes for one relation."""

    name: str
    tuples: int
    fields: int
    field_bytes: int = FIELD_BYTES

    @property
    def total_bytes(self) -> int:
        return self.tuples * self.fields * self.field_bytes

    def ratio_to(self, other: "SizeEstimate") -> float:
        """How many times smaller this relation is than ``other``."""
        return other.total_bytes / self.total_bytes

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.name}: {self.tuples:,} tuples x {self.fields} fields "
            f"x {self.field_bytes} B = {format_bytes(self.total_bytes)}"
        )


def paper_fact_table_estimate(
    days: int = 730,
    stores: int = 300,
    products_sold_per_day: int = 3_000,
    transactions_per_product: int = 20,
    fields: int = 5,
) -> SizeEstimate:
    """The 13.14-billion-tuple / 245 GB fact table of Section 1.1."""
    tuples = days * stores * products_sold_per_day * transactions_per_product
    return SizeEstimate("sale (fact table)", tuples, fields)


def paper_auxiliary_view_estimate(
    days: int = 365,
    distinct_products_per_day: int = 30_000,
    fields: int = 4,
) -> SizeEstimate:
    """The 10.95-million-tuple / 167 MB ``saledtl`` of Section 1.1.

    ``saledtl`` groups on (timeid, productid), so its worst-case size is
    one tuple per selected day per distinct product sold chain-wide that
    day; the local condition ``year = 1997`` halves the time dimension.
    """
    tuples = days * distinct_products_per_day
    return SizeEstimate("saledtl (auxiliary view)", tuples, fields)


def auxiliary_view_upper_bound(
    group_cardinalities: dict[str, int], fields: int
) -> SizeEstimate:
    """Worst-case auxiliary-view size: the product of the distinct-value
    counts of its pinned (grouping) attributes."""
    tuples = 1
    for cardinality in group_cardinalities.values():
        tuples *= cardinality
    name = "x".join(group_cardinalities) or "const"
    return SizeEstimate(f"bound({name})", tuples, fields)


def relation_estimate(name: str, relation: Relation) -> SizeEstimate:
    """Measured size of a live relation under the same model."""
    return SizeEstimate(
        name,
        tuples=len(relation),
        fields=len(relation.schema),
        field_bytes=FIELD_BYTES,
    )


def format_bytes(count: int | float) -> str:
    """Human-readable bytes, matching the paper's GB/MB framing."""
    if count >= GIB:
        return f"{count / GIB:.1f} GB"
    if count >= MIB:
        return f"{count / MIB:.1f} MB"
    if count >= 1024:
        return f"{count / 1024:.1f} KB"
    return f"{count:.0f} B"
