"""Storage sizing under the paper's tuples x fields x 4-byte model."""

from repro.storage.model import (
    SizeEstimate,
    format_bytes,
    paper_auxiliary_view_estimate,
    paper_fact_table_estimate,
    relation_estimate,
)

__all__ = [
    "SizeEstimate",
    "format_bytes",
    "paper_fact_table_estimate",
    "paper_auxiliary_view_estimate",
    "relation_estimate",
]
