"""Physical plan nodes: the single compiled executor.

Each node owns precompiled row machinery (predicates and extractors from
:mod:`repro.engine.compilecache`, the reconstructor's row programs) and
implements one ``execute`` step over already-computed child results.
:meth:`PhysicalNode.run` adds the cross-cutting behavior every node
gets for free:

* **memoization** — a node referenced by several parents (a restricted
  delta feeding both a semijoin chain and the propagation join) computes
  once per :class:`~repro.plan.executor.ExecutionContext`;
* **cross-view sharing** — nodes carrying a ``share_key`` (a structural
  logical-plan key) publish their result to the context's shared cache,
  so the maintainers of one warehouse transaction reuse each other's
  delta subplan results;
* **per-node timing** — with a perf sink attached, each node's own
  execution time accumulates under ``plan:<label>``, rendered after the
  standard maintenance phases;
* **runtime statistics** — every real execution (not memo/shared hits)
  folds into the node's persistent :class:`~repro.obs.stats.ActualStats`
  (executions, output cardinality, wall time), the observed-cardinality
  record behind ``explain --analyze`` and ``Warehouse.runtime_stats()``;
* **tracing** — when the context carries an active
  :class:`~repro.obs.trace.Trace`, the node opens a nested span with
  input/output row counts, index-probe deltas, and cache-hit flags
  (memo and cross-view shared-cache hits become zero-duration spans).

Timing is two inline ``perf_counter`` calls, deliberately *not*
``PerfStats.timer``: the fault-injection harness hooks ``timer`` to
define transaction phase boundaries, and plan nodes run strictly inside
those phases.
"""

from __future__ import annotations

from time import perf_counter

from repro.engine.expressions import Expression
from repro.engine.operators import (
    ProjectionItem,
    antijoin,
    equijoin,
    generalized_project,
    project,
    select,
    semijoin,
)
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.obs.stats import ActualStats
from repro.plan.executor import ExecutionContext
from repro.plan.logical import LogicalNode, _render_pairs

_MISSING = object()


def _result_size(result) -> int | None:
    """Output cardinality of a node result (rows of a relation, groups
    of an accumulator dict); None for unsized results."""
    try:
        return len(result)
    except TypeError:
        return None


def run_stage_root(node, ctx: ExecutionContext, execute, prepare=None):
    """The memoize/share/trace/time/ActualStats contract of
    :meth:`PhysicalNode.run`, factored out for backends that execute a
    whole stage subtree as *one* unit — the SQLite backend's generated
    SQL and the columnar backend's fused batch kernels — instead of
    interpreting node by node.

    ``execute(node, ctx)`` computes the stage result; ``prepare(node,
    ctx)``, when given, runs after the cache checks but outside the
    traced/timed section (e.g. SQLite's delta staging, whose cost the
    historical counters attribute to the surrounding phase, not the
    plan node).  The stage root's ``plan:<label>`` timer and
    :class:`~repro.obs.stats.ActualStats` record the whole kernel;
    inner nodes of the fused subtree stay unrecorded, exactly like the
    generated-SQL path.
    """
    memo = ctx.memo
    key = id(node)
    if key in memo:
        if ctx.trace is not None:
            ctx.trace.instant(
                node.label, kind="plan", cache_hit=True, cache="memo"
            )
        return memo[key]
    shared = ctx.shared
    share_key = node.share_key
    if shared is not None and share_key is not None:
        cached = shared.get(share_key, _MISSING)
        if cached is not _MISSING:
            ctx.count("plan_shared_hits")
            node.stats.record_reuse()
            if ctx.trace is not None:
                span = ctx.trace.instant(
                    node.label, kind="plan", cache_hit=True, cache="shared"
                )
                span.rows_out = _result_size(cached)
            memo[key] = cached
            return cached
    if prepare is not None:
        prepare(node, ctx)
    perf = ctx.perf
    if ctx.trace is None:
        started = perf_counter()
        result = execute(node, ctx)
        elapsed = perf_counter() - started
    else:
        with ctx.trace.span(node.label, kind="plan") as span:
            probes_before = (
                perf.counters["index_probes"] if perf is not None else 0
            )
            started = perf_counter()
            result = execute(node, ctx)
            elapsed = perf_counter() - started
            if perf is not None:
                span.index_probes = (
                    perf.counters["index_probes"] - probes_before
                )
            span.rows_out = _result_size(result)
    if perf is not None:
        perf.seconds[node._timer_key] += elapsed
    node.stats.record(_result_size(result), elapsed)
    memo[key] = result
    if shared is not None and share_key is not None:
        shared[share_key] = result
    return result


class PhysicalNode:
    """Base physical operator: children plus one ``execute`` step."""

    __slots__ = (
        "children", "label", "logical", "annotations", "share_key",
        "stats", "estimated_rows", "_timer_key",
    )

    def __init__(
        self,
        children: tuple["PhysicalNode", ...] = (),
        label: str | None = None,
        logical: LogicalNode | None = None,
    ):
        self.children = children
        self.label = label if label is not None else self.describe()
        self.logical = logical
        self.annotations: list[str] = []
        self.share_key: LogicalNode | None = None
        self.stats = ActualStats()
        #: The cost planner's predicted output cardinality (None under
        #: the static planner); compared against :attr:`stats` after
        #: execution to drive adaptive re-planning.
        self.estimated_rows: float | None = None
        self._timer_key = "plan:" + self.label

    def describe(self) -> str:
        raise NotImplementedError

    def execute(self, ctx: ExecutionContext, inputs: list):
        raise NotImplementedError

    def run(self, ctx: ExecutionContext):
        """Evaluate this subtree under ``ctx`` (memoized, shared, timed,
        traced, and folded into the node's :class:`ActualStats`)."""
        memo = ctx.memo
        key = id(self)
        if key in memo:
            if ctx.trace is not None:
                ctx.trace.instant(
                    self.label, kind="plan", cache_hit=True, cache="memo"
                )
            return memo[key]
        shared = ctx.shared
        share_key = self.share_key
        if shared is not None and share_key is not None:
            cached = shared.get(share_key, _MISSING)
            if cached is not _MISSING:
                ctx.count("plan_shared_hits")
                self.stats.record_reuse()
                if ctx.trace is not None:
                    span = ctx.trace.instant(
                        self.label, kind="plan", cache_hit=True, cache="shared"
                    )
                    span.rows_out = _result_size(cached)
                memo[key] = cached
                return cached
        if ctx.trace is None:
            result = self._run_timed(ctx, None)
        else:
            with ctx.trace.span(self.label, kind="plan") as span:
                perf = ctx.perf
                probes_before = (
                    perf.counters["index_probes"] if perf is not None else 0
                )
                result = self._run_timed(ctx, span)
                if perf is not None:
                    span.index_probes = (
                        perf.counters["index_probes"] - probes_before
                    )
                span.rows_out = _result_size(result)
        memo[key] = result
        if shared is not None and share_key is not None:
            shared[share_key] = result
        return result

    def _run_timed(self, ctx: ExecutionContext, span):
        """Run children then execute, timing and recording this node."""
        inputs = [child.run(ctx) for child in self.children]
        if span is not None and inputs:
            sizes = [_result_size(value) for value in inputs]
            sized = [size for size in sizes if size is not None]
            if sized:
                span.rows_in = sum(sized)
        perf = ctx.perf
        started = perf_counter()
        result = self.execute(ctx, inputs)
        elapsed = perf_counter() - started
        if perf is not None:
            perf.seconds[self._timer_key] += elapsed
        self.stats.record(_result_size(result), elapsed)
        return result

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, annotator=None) -> str:
        """Indented tree with per-node annotations (``annotator`` may
        contribute extra notes, e.g. cross-view sharing marks)."""
        lines: list[str] = []

        def emit(node: "PhysicalNode", depth: int) -> None:
            notes = list(node.annotations)
            if annotator is not None:
                extra = annotator(node)
                if extra:
                    notes.append(extra)
            suffix = f"  [{'; '.join(notes)}]" if notes else ""
            lines.append("  " * depth + node.describe() + suffix)
            for child in node.children:
                emit(child, depth + 1)

        emit(self, 0)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.render()


class ScanNode(PhysicalNode):
    """A named relation from the context's bindings/resolver."""

    __slots__ = ("name",)

    def __init__(self, name: str, logical: LogicalNode | None = None):
        self.name = name
        super().__init__((), f"scan:{name}", logical)

    def describe(self) -> str:
        return f"scan[{self.name}]"

    def execute(self, ctx: ExecutionContext, inputs: list) -> Relation:
        return ctx.relation(self.name)


class AuxScanNode(PhysicalNode):
    """The full current contents of one auxiliary materialization."""

    __slots__ = ("table",)

    def __init__(self, table: str, logical: LogicalNode | None = None):
        self.table = table
        super().__init__((), f"aux-scan:{table}", logical)

    def describe(self) -> str:
        return f"aux-scan[{self.table}]"

    def execute(self, ctx: ExecutionContext, inputs: list) -> Relation:
        return ctx.provider(self.table).relation()


class DeltaScanNode(PhysicalNode):
    """One signed delta of the current transaction."""

    __slots__ = ("table", "sign")

    def __init__(self, table: str, sign: int, logical: LogicalNode | None = None):
        self.table = table
        self.sign = sign
        mark = "+" if sign > 0 else "-"
        super().__init__((), f"Δscan:{mark}{table}", logical)

    def describe(self) -> str:
        mark = "+" if self.sign > 0 else "-"
        return f"Δscan[{mark}{self.table}]"

    def execute(self, ctx: ExecutionContext, inputs: list) -> Relation:
        return ctx.delta(self.table, self.sign)


class FilterNode(PhysicalNode):
    """``σ`` via the shared compile cache."""

    __slots__ = ("condition",)

    def __init__(
        self,
        child: PhysicalNode,
        condition: Expression,
        logical: LogicalNode | None = None,
    ):
        self.condition = condition
        super().__init__((child,), "filter", logical)

    def describe(self) -> str:
        return f"σ[{self.condition.to_sql()}]"

    def execute(self, ctx: ExecutionContext, inputs: list) -> Relation:
        return select(inputs[0], self.condition)


class ProjectNode(PhysicalNode):
    """``π`` via the shared extractor cache."""

    __slots__ = ("references", "distinct")

    def __init__(
        self,
        child: PhysicalNode,
        references: tuple[str, ...],
        distinct: bool = False,
        logical: LogicalNode | None = None,
    ):
        self.references = references
        self.distinct = distinct
        super().__init__((child,), "project", logical)

    def describe(self) -> str:
        mark = " distinct" if self.distinct else ""
        return f"π[{', '.join(self.references)}]{mark}"

    def execute(self, ctx: ExecutionContext, inputs: list) -> Relation:
        return project(inputs[0], self.references, self.distinct)


class GeneralizedProjectNode(PhysicalNode):
    """``Π`` — group-by plus aggregates."""

    __slots__ = ("items", "qualifier")

    def __init__(
        self,
        child: PhysicalNode,
        items: tuple[ProjectionItem, ...],
        qualifier: str | None = None,
        logical: LogicalNode | None = None,
    ):
        self.items = items
        self.qualifier = qualifier
        super().__init__((child,), "gproject", logical)

    def describe(self) -> str:
        return f"Π[{', '.join(item.to_sql() for item in self.items)}]"

    def execute(self, ctx: ExecutionContext, inputs: list) -> Relation:
        return generalized_project(inputs[0], self.items, self.qualifier)


class HashJoinNode(PhysicalNode):
    """Build-and-probe equijoin (cross product when ``pairs`` is empty)."""

    __slots__ = ("pairs",)

    def __init__(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        pairs: tuple[tuple[str, str], ...],
        logical: LogicalNode | None = None,
    ):
        self.pairs = pairs
        super().__init__((left, right), "hash-join", logical)

    def describe(self) -> str:
        if not self.pairs:
            return "cross-join"
        return f"hash-join[{_render_pairs(self.pairs)}]"

    def execute(self, ctx: ExecutionContext, inputs: list) -> Relation:
        return equijoin(inputs[0], inputs[1], self.pairs)


class IndexJoinNode(PhysicalNode):
    """Equijoin probing a maintained :class:`RowIndex` on the right side
    (the build phase is skipped entirely)."""

    __slots__ = ("table", "pairs", "right_refs")

    def __init__(
        self,
        left: PhysicalNode,
        table: str,
        pairs: tuple[tuple[str, str], ...],
        right_refs: tuple[str, ...],
        logical: LogicalNode | None = None,
    ):
        self.table = table
        self.pairs = pairs
        self.right_refs = right_refs
        super().__init__((left,), f"index-join:{table}", logical)

    def describe(self) -> str:
        return f"index-join[{self.table}: {_render_pairs(self.pairs)}]"

    def execute(self, ctx: ExecutionContext, inputs: list) -> Relation:
        right = ctx.provider(self.table).relation()
        index = right.index_on(*self.right_refs)
        return equijoin(inputs[0], right, self.pairs, right_index=index)


class HashSemiJoinNode(PhysicalNode):
    """``⋉`` over two computed inputs."""

    __slots__ = ("pairs",)

    def __init__(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        pairs: tuple[tuple[str, str], ...],
        logical: LogicalNode | None = None,
    ):
        self.pairs = pairs
        super().__init__((left, right), "semijoin", logical)

    def describe(self) -> str:
        return f"semijoin[{_render_pairs(self.pairs)}]"

    def execute(self, ctx: ExecutionContext, inputs: list) -> Relation:
        return semijoin(inputs[0], inputs[1], self.pairs)


class HashAntiJoinNode(PhysicalNode):
    """``▷`` over two computed inputs."""

    __slots__ = ("pairs",)

    def __init__(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        pairs: tuple[tuple[str, str], ...],
        logical: LogicalNode | None = None,
    ):
        self.pairs = pairs
        super().__init__((left, right), "antijoin", logical)

    def describe(self) -> str:
        return f"antijoin[{_render_pairs(self.pairs)}]"

    def execute(self, ctx: ExecutionContext, inputs: list) -> Relation:
        return antijoin(inputs[0], inputs[1], self.pairs)


class KeyProbeSemiJoinNode(PhysicalNode):
    """The paper's join reduction: semijoin a delta against the key set
    of a dependency's auxiliary view.

    The key set comes from the materialization's ``key_values`` view —
    under the indexed policy a live, incrementally-maintained hash-index
    view (O(1) probes, no rebuild); under the naive policy a set rebuilt
    when the materialization changed.

    ``probe_direction`` is the cost planner's knob: ``"delta"`` (the
    default) probes the key set once per delta row; ``"keys"`` — chosen
    when the dependency's key population is estimated to be much smaller
    than the delta — first intersects the key set with the delta's
    distinct foreign-key values and then filters through the (smaller)
    intersection.  Both directions emit exactly the surviving delta rows
    in delta order, so the choice is invisible to results.
    """

    __slots__ = ("dep_table", "dep_key", "fk_index", "probe_direction")

    def __init__(
        self,
        child: PhysicalNode,
        dep_table: str,
        dep_key: str,
        fk_index: int,
        logical: LogicalNode | None = None,
    ):
        self.dep_table = dep_table
        self.dep_key = dep_key
        self.fk_index = fk_index
        self.probe_direction = "delta"
        super().__init__((child,), f"key-probe:{dep_table}", logical)

    def describe(self) -> str:
        return f"key-probe-semijoin[{self.dep_key} of X_{self.dep_table}]"

    def execute(self, ctx: ExecutionContext, inputs: list) -> Relation:
        relation = inputs[0]
        keys = ctx.provider(self.dep_table).key_values(self.dep_key)
        fk = self.fk_index
        if self.probe_direction == "keys":
            # Key-side probing: intersect the (small) key set with the
            # delta's fk values, then filter — identical output and
            # order, fewer hash probes when |keys| << |delta|.
            fk_values = {row[fk] for row in relation.rows}
            hits = {key for key in keys if key in fk_values}
            rows = [row for row in relation.rows if row[fk] in hits]
        else:
            rows = [row for row in relation.rows if row[fk] in keys]
        return Relation(relation.schema, rows, validate=False)


class NeighborRestrictNode(PhysicalNode):
    """Restrict one auxiliary view to the rows that can join the input.

    Collects the input's values of one join column and probes the
    target materialization's hash index (``rows_matching``) — the static
    form of the maintenance loop's join-tree restriction walk.  Probes
    are counted as ``index_probes`` only under the indexed policy, where
    the probe hits a maintained index (matching the historical counter
    semantics of the two loops).
    """

    __slots__ = ("table", "local_index", "far_ref", "schema", "count_probes")

    def __init__(
        self,
        child: PhysicalNode,
        table: str,
        local_index: int,
        far_ref: str,
        schema: Schema,
        count_probes: bool,
        logical: LogicalNode | None = None,
    ):
        self.table = table
        self.local_index = local_index
        self.far_ref = far_ref
        self.schema = schema
        self.count_probes = count_probes
        super().__init__((child,), f"restrict:{self.table}", logical)

    def describe(self) -> str:
        return f"restrict[{self.table} by {self.far_ref}]"

    def execute(self, ctx: ExecutionContext, inputs: list) -> Relation:
        local = self.local_index
        values = {row[local] for row in inputs[0].rows}
        matched = ctx.provider(self.table).rows_matching(self.far_ref, values)
        if self.count_probes:
            ctx.count("index_probes", len(values))
        return Relation(self.schema, matched, validate=False)


class AccumulateNode(PhysicalNode):
    """Fold joined rows into per-group :class:`GroupAccumulator`\\ s via
    the reconstructor's compiled row program (returns a dict, not a
    relation — the maintainer merges it into ``V``'s group states)."""

    __slots__ = ("reconstructor",)

    def __init__(
        self,
        child: PhysicalNode,
        reconstructor,  # repro.core.rewrite.Reconstructor (annotation-only cycle)
        logical: LogicalNode | None = None,
    ):
        self.reconstructor = reconstructor
        super().__init__((child,), "accumulate", logical)

    def describe(self) -> str:
        return "accumulate[group contributions]"

    def execute(self, ctx: ExecutionContext, inputs: list) -> dict:
        joined = inputs[0]
        if not joined:
            return {}
        program = self.reconstructor.compile_program(joined.schema)
        contributions: dict = {}
        self.reconstructor.run_program(program, joined.rows, contributions)
        return contributions
