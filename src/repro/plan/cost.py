"""The cost layer: cardinality estimation over the maintained state.

The paper's maintenance pipeline runs entirely against the auxiliary
views, and those are exactly the relations we have perfect bookkeeping
for: every materialization knows its live row count, and every probe
column is backed by a :class:`~repro.engine.rowindex.RowIndex` whose
bucket count *is* the column's distinct-value count — a free histogram,
maintained incrementally.  :class:`StatsCatalog` snapshots those numbers
per planning pass (and is invalidated on rollback, so an aborted
transaction can never leave estimates describing state that no longer
exists).

On top of the catalog sit the textbook estimation formulas the
maintenance planner uses (documented in DESIGN.md):

* semijoin (join reduction) selectivity —
  ``sel = live_distinct(dep key) / domain(dep key)``, where the domain
  is the catalog's high-water mark of the live distinct count (the
  largest key population ever observed, i.e. an upper bound on the
  foreign-key domain that needs no access to the sealed base tables);
* equijoin output — ``|L ⋈ R| = |L|·|R| / max(V(R, join col), 1)``,
  the standard uniform-distribution estimate with the distinct count
  taken on the side we have an index for;
* per-delta input — a feedback hint: the observed mean delta
  cardinality of the same ``(table, sign)`` shape from the plan's
  previous life (``DEFAULT_DELTA_ROWS`` before any observation).

``PlannerMode`` selects between ``cost`` (the default: join order,
probe direction, and per-node restriction chosen by these estimates,
with adaptive re-planning when observations diverge) and ``static``
(the historical deterministic policy), mirroring how ``REPRO_BACKEND``
selects execution backends.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field

#: Environment variable selecting the planner mode (parallel to
#: ``REPRO_BACKEND``); also settable per CLI invocation via --planner.
PLANNER_ENV = "REPRO_PLANNER"

#: Planner modes selectable by name.
PLANNER_NAMES = ("cost", "static")

#: Environment variable holding the adaptive re-plan threshold: a delta
#: plan is invalidated and recompiled when the q-error between a stage's
#: estimated and observed cardinality exceeds this ratio.
REPLAN_RATIO_ENV = "REPRO_REPLAN_RATIO"
DEFAULT_REPLAN_RATIO = 4.0

#: Shared-subplan selection rule: a canonical subtree appearing in k
#: views' delta plans is selected for sharing when the recomputation it
#: saves — estimated rows times the (k - 1) extra computations — is at
#: least this many rows.  At 1.0 every genuinely multi-view subplan
#: with a nonzero estimate qualifies; raising it prunes sharing to the
#: subplans worth a cross-view cache entry.
MIN_SHARED_BENEFIT_ROWS = 1.0

#: Assumed rows per delta before any observation exists for the shape.
#: (The estimate-vs-actual q-error histogram lives in ``repro.perf`` as
#: ``PLANNER_QERROR``, bucketed by ``obs.metrics.QERROR_BUCKETS`` —
#: this module stays import-light so the perf layer can sit below it.)
DEFAULT_DELTA_ROWS = 32.0


class PlannerError(Exception):
    """Raised for unknown planner specs."""


class PlannerMode(enum.Enum):
    """How physical maintenance plans are chosen.

    ``COST`` (the default) picks join order, probe direction, and
    per-node index-vs-scan choices from :class:`StatsCatalog` estimates
    and re-plans when observations diverge; ``STATIC`` keeps the
    deterministic historical policy (the fixed-point join order and the
    policy-wide INDEXED/NAIVE switch).  Results are identical either
    way — the cost layer only reorders work that is provably
    order-insensitive at the bag level.
    """

    COST = "cost"
    STATIC = "static"


def resolve_planner_name(spec: str | None = None) -> str:
    """The planner name ``spec`` selects, honoring ``REPRO_PLANNER``."""
    if spec is None:
        spec = os.environ.get(PLANNER_ENV) or "cost"
    if spec not in PLANNER_NAMES:
        raise PlannerError(
            f"unknown planner {spec!r} (expected one of {PLANNER_NAMES})"
        )
    return spec


def make_planner_mode(spec: "str | PlannerMode | None" = None) -> PlannerMode:
    """Build a :class:`PlannerMode` from a spec or the environment."""
    if isinstance(spec, PlannerMode):
        return spec
    return PlannerMode(resolve_planner_name(spec))


def replan_ratio_from_env() -> float:
    """The configured re-plan q-error threshold (``REPRO_REPLAN_RATIO``)."""
    raw = os.environ.get(REPLAN_RATIO_ENV)
    if not raw:
        return DEFAULT_REPLAN_RATIO
    try:
        ratio = float(raw)
    except ValueError:
        raise PlannerError(
            f"{REPLAN_RATIO_ENV}={raw!r} is not a number"
        ) from None
    if ratio < 1.0:
        raise PlannerError(f"{REPLAN_RATIO_ENV} must be >= 1.0, got {ratio}")
    return ratio


def q_error(estimated: float, actual: float) -> float:
    """The symmetric estimate-vs-actual ratio ``max(e/a, a/e)``.

    Zero-safe: both sides are floored at one row, so a perfect
    zero-rows prediction scores 1.0 instead of dividing by zero.
    """
    estimated = max(float(estimated), 1.0)
    actual = max(float(actual), 1.0)
    return max(estimated / actual, actual / estimated)


@dataclass
class TableStats:
    """One relation's snapshot: live cardinality plus per-column
    distinct-value counts (filled lazily, column by column)."""

    rows: int
    distinct: dict[str, int] = field(default_factory=dict)


class StatsCatalog:
    """Cardinalities and distinct-value counts over live materializations.

    Reads are snapshot-cached per planning pass: ``len(provider)`` for
    cardinality and ``len(provider.key_values(column))`` for distinct
    counts — the latter is O(1) on the indexed path because
    ``key_values`` is a live :meth:`RowIndex.keys` view.  The snapshot
    must be dropped whenever the underlying state moves in a way the
    planner didn't drive:

    * :meth:`invalidate` on every transaction boundary (cheap — the next
      plan build re-reads live state);
    * on **rollback**, via the undo record the maintainer registers:
      both the snapshot and the domain high-water marks are restored,
      so an aborted transaction leaves zero estimate drift.
    """

    def __init__(self, providers):
        self._providers = providers
        self._snapshot: dict[str, TableStats] = {}
        #: High-water marks of observed distinct counts, the planner's
        #: foreign-key domain estimate (never reads sealed base tables).
        self._domains: dict[tuple[str, str], int] = {}

    # -- snapshot lifecycle ------------------------------------------------

    def invalidate(self) -> None:
        """Drop cached snapshots (state changed under the planner)."""
        self._snapshot.clear()

    def domain_snapshot(self) -> dict:
        """A copy of the domain high-water marks (for undo records)."""
        return dict(self._domains)

    def restore_domains(self, snapshot: dict) -> None:
        """Rollback support: put the domain marks back exactly as they
        were before the aborted transaction raised them."""
        self._domains = dict(snapshot)
        self._snapshot.clear()

    # -- reads -------------------------------------------------------------

    def table_rows(self, table: str) -> int:
        """Live cardinality of one materialized auxiliary view."""
        stats = self._snapshot.get(table)
        if stats is None:
            provider = self._providers.get(table)
            stats = TableStats(rows=len(provider) if provider is not None else 0)
            self._snapshot[table] = stats
        return stats.rows

    def distinct_count(self, table: str, column: str) -> int:
        """Distinct values of ``column`` in the materialization (from
        the maintained index; also raises the domain high-water mark)."""
        stats = self._snapshot.get(table)
        if stats is None:
            provider = self._providers.get(table)
            stats = TableStats(rows=len(provider) if provider is not None else 0)
            self._snapshot[table] = stats
        count = stats.distinct.get(column)
        if count is None:
            provider = self._providers.get(table)
            count = len(provider.key_values(column)) if provider is not None else 0
            stats.distinct[column] = count
            key = (table, column)
            if count > self._domains.get(key, 0):
                self._domains[key] = count
        return count

    def domain(self, table: str, column: str) -> int:
        """The foreign-key domain estimate for ``column``: the largest
        distinct count ever observed live (>= the current one)."""
        live = self.distinct_count(table, column)
        return max(self._domains.get((table, column), live), live, 1)

    # -- health checks -----------------------------------------------------

    def drift_report(self) -> list[dict]:
        """Doctor check: cached snapshot entries vs live state.  The
        snapshot must be dropped at every transaction boundary, so any
        cached row count that disagrees with the live materialization
        means an invalidation was missed and the planner is costing
        against stale cardinalities.  Returns one finding per stale
        entry (empty = healthy)."""
        findings: list[dict] = []
        for table, stats in sorted(self._snapshot.items()):
            provider = self._providers.get(table)
            live = len(provider) if provider is not None else 0
            if stats.rows != live:
                findings.append(
                    {
                        "kind": "stale_snapshot",
                        "table": table,
                        "cached_rows": stats.rows,
                        "live_rows": live,
                    }
                )
        return findings

    # -- estimation formulas ----------------------------------------------

    def semijoin_selectivity(self, table: str, column: str) -> float:
        """Fraction of probing rows expected to survive a key-probe
        semijoin against ``table``'s ``column`` key set."""
        return self.distinct_count(table, column) / self.domain(table, column)

    def join_rows(self, left_rows: float, table: str, column: str) -> float:
        """Estimated output of equijoining ``left_rows`` rows against
        the materialization of ``table`` on ``column``."""
        return (
            left_rows
            * self.table_rows(table)
            / max(self.distinct_count(table, column), 1)
        )


class SharedPlanCache:
    """Explicit shared-subplan selection for one warehouse transaction.

    The opportunistic predecessor cached *every* shareable subplan
    result and hoped a sibling view would ask for it.  This cache admits
    only the ``share_key``\\ s the warehouse *selected* — canonical
    logical subtrees appearing in two or more views' delta plans whose
    estimated cost clears the benefit rule (see
    ``Warehouse.shared_subplan_selection``) — which is multi-query
    optimization in the Mistry et al. sense: sharing is a planned
    decision, not a cache accident.  Non-selected results are dropped on
    write, so sibling maintainers recompute them privately.

    The mapping surface matches what the executors use (``get`` /
    ``in`` / ``[]``), so :meth:`PhysicalNode.run` and the backends need
    no special-casing.
    """

    __slots__ = ("selected", "_store", "admitted", "rejected")

    def __init__(self, selected: frozenset):
        self.selected = selected
        self._store: dict = {}
        self.admitted = 0
        self.rejected = 0

    def get(self, key, default=None):
        return self._store.get(key, default)

    def __contains__(self, key) -> bool:
        return key in self._store

    def __getitem__(self, key):
        return self._store[key]

    def __setitem__(self, key, value) -> None:
        if key in self.selected:
            self._store[key] = value
            self.admitted += 1
        else:
            self.rejected += 1

    def __len__(self) -> int:
        return len(self._store)
