"""The physical planner: canonical plans, rewrites, and lowering.

``canonical_view_plan`` expresses a GPSJ view exactly as Section 2.1
writes it — ``Π_A σ_S (R1 ⋈ R2 ⋈ ... ⋈ Rn)`` — as a logical tree.
``push_selections`` then moves each local conjunct of ``S`` onto its
base-table scan and ``prune_projections`` inserts duplicate-preserving
projections above each scan chain, keeping only join attributes and
attributes preserved in ``V``: the paper's local reduction, applied as
plan rewrites instead of hand-inlined loops.  ``lower`` turns the
rewritten logical tree into physical nodes for the shared executor.

Everything here is deterministic and order-preserving: the join tree
replicates the historical fixed-point join order (one shared
implementation now serves evaluation, reconstruction, and delta
propagation), filters commute, and bag projection keeps row order —
which is how plan-based evaluation stays bit-identical to the eager
operator loops it replaces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

# NOTE: no imports from repro.catalog or repro.core here — those layers
# import this planner, and annotations are lazy (PEP 563), so the
# ViewDefinition/Database hints below stay strings.
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.obs.stats import collect_node_stats
from repro.plan.executor import ExecutionContext
from repro.plan.logical import (
    AntiJoin,
    DeltaScan,
    EquiJoin,
    GeneralizedProject,
    LogicalNode,
    PlanError,
    Project,
    Scan,
    Select,
    SemiJoin,
)
from repro.plan.physical import (
    DeltaScanNode,
    FilterNode,
    GeneralizedProjectNode,
    HashAntiJoinNode,
    HashJoinNode,
    HashSemiJoinNode,
    PhysicalNode,
    ProjectNode,
    ScanNode,
)


class PlanPolicy(enum.Enum):
    """How plans are physically realized.

    ``INDEXED`` is the former hot path: delta coalescing, maintained
    hash indexes behind every probe, restriction of the full join tree,
    and cross-view subplan sharing.  ``NAIVE`` is the former legacy
    loop: no indexes, ancestor-path restriction only, no sharing.  Both
    produce identical results; the split exists so the benchmark can
    measure the gap.
    """

    INDEXED = "indexed"
    NAIVE = "naive"


class JoinGraphDisconnected(PlanError):
    """The join fixed-point got stuck; ``remaining`` holds the
    unplaceable tables (callers translate to their domain error)."""

    def __init__(self, remaining: list[str]):
        super().__init__(f"join graph is disconnected at {remaining!r}")
        self.remaining = remaining


def join_pairs(
    joins: Sequence[JoinCondition], table: str, placed: set[str]
) -> list[tuple[str, str]] | None:
    """Join pairs (placed-side ref, new-side ref) connecting ``table``
    to the already-placed tables — the one shared implementation of the
    pairing rule that view evaluation, reconstruction, and delta
    propagation previously each hand-rolled."""
    pairs = []
    for join in joins:
        if join.left_table == table and join.right_table in placed:
            pairs.append(
                (
                    f"{join.right_table}.{join.right_attribute}",
                    f"{join.left_table}.{join.left_attribute}",
                )
            )
        elif join.right_table == table and join.left_table in placed:
            pairs.append(
                (
                    f"{join.left_table}.{join.left_attribute}",
                    f"{join.right_table}.{join.right_attribute}",
                )
            )
    return pairs or None


def join_order(
    tables: Sequence[str],
    joins: Sequence[JoinCondition],
    start: str | None = None,
    on_stuck: str = "raise",
) -> list[tuple[str, tuple[tuple[str, str], ...] | None]]:
    """The deterministic join fixed-point as a list of steps.

    The first step is ``(first_table, None)``; each later step is
    ``(table, pairs)`` with ``pairs == ()`` for a cross-product
    fallback (``on_stuck="cross"``, view-evaluation semantics).  With
    ``on_stuck="raise"`` a stuck fixed-point raises
    :class:`JoinGraphDisconnected` (reconstruction semantics).
    """
    remaining = list(tables)
    first = start if start is not None else remaining[0]
    remaining.remove(first)
    placed = {first}
    steps: list[tuple[str, tuple[tuple[str, str], ...] | None]] = [(first, None)]
    while remaining:
        progressed = False
        for table in list(remaining):
            pairs = join_pairs(joins, table, placed)
            if pairs is None:
                continue
            steps.append((table, tuple(pairs)))
            placed.add(table)
            remaining.remove(table)
            progressed = True
        if not progressed:
            if on_stuck == "cross":
                table = remaining.pop(0)
                steps.append((table, ()))
                placed.add(table)
            else:
                raise JoinGraphDisconnected(remaining)
    return steps


def cost_join_order(
    tables: Sequence[str],
    joins: Sequence[JoinCondition],
    start: str,
    size_of: Callable[[str], float],
    join_rows: Callable[[float, str, tuple[tuple[str, str], ...]], float],
) -> list[tuple[str, tuple[tuple[str, str], ...] | None]]:
    """A cost-greedy join order: same step shape as :func:`join_order`,
    but each step picks the *connectable* table minimizing the estimated
    intermediate cardinality instead of following declaration order.

    ``size_of(table)`` estimates one relation's cardinality and
    ``join_rows(current_estimate, table, pairs)`` the result of joining
    it in.  The start table is fixed (delta propagation anchors on the
    changed table), ties break on declaration order, and a disconnected
    graph raises — propagation joins never cross-product.
    """
    remaining = list(tables)
    remaining.remove(start)
    placed = {start}
    steps: list[tuple[str, tuple[tuple[str, str], ...] | None]] = [(start, None)]
    estimate = max(size_of(start), 1.0)
    while remaining:
        best = None
        for table in remaining:  # declaration order: deterministic ties
            pairs = join_pairs(joins, table, placed)
            if pairs is None:
                continue
            cost = join_rows(estimate, table, tuple(pairs))
            if best is None or cost < best[0]:
                best = (cost, table, tuple(pairs))
        if best is None:
            raise JoinGraphDisconnected(remaining)
        estimate, table, pairs = best
        steps.append((table, pairs))
        placed.add(table)
        remaining.remove(table)
    return steps


def join_physical(
    nodes: Mapping[str, PhysicalNode],
    steps: Sequence[tuple[str, tuple[tuple[str, str], ...] | None]],
    make_join: Callable[[PhysicalNode, str, tuple], PhysicalNode] | None = None,
) -> PhysicalNode:
    """Fold precomputed join steps over per-table physical nodes."""
    current = nodes[steps[0][0]]
    for table, pairs in steps[1:]:
        if make_join is not None:
            current = make_join(current, table, pairs or ())
        else:
            current = HashJoinNode(current, nodes[table], pairs or ())
    return current


# ----------------------------------------------------------------------
# Canonical logical plans and rewrites.
# ----------------------------------------------------------------------


def canonical_view_plan(view: ViewDefinition) -> LogicalNode:
    """``V = Π_A σ_S (R1 ⋈ ... ⋈ Rn)`` as an (unoptimized) logical tree."""
    steps = join_order(view.tables, view.joins, on_stuck="cross")
    node: LogicalNode = Scan(steps[0][0])
    for table, pairs in steps[1:]:
        node = EquiJoin(node, Scan(table), pairs or ())
    for condition in view.selection:
        node = Select(node, condition)
    node = GeneralizedProject(node, view.projection, view.name)
    if view.having is not None:
        node = Select(node, view.having)
    return node


def _pushable(node: LogicalNode, target: str) -> bool:
    """Whether a selection on ``target`` can sink into this subtree
    (reaches the target's scan without crossing a projection barrier)."""
    if isinstance(node, Scan):
        return node.source == target
    if isinstance(node, DeltaScan):
        return node.table == target
    if isinstance(node, Select):
        return _pushable(node.child, target)
    if isinstance(node, EquiJoin):
        return _pushable(node.left, target) or _pushable(node.right, target)
    if isinstance(node, (SemiJoin, AntiJoin)):
        return _pushable(node.left, target)  # the right side is consumed
    return False  # Project / GeneralizedProject change the namespace


def push_selections(
    node: LogicalNode,
) -> tuple[LogicalNode, list[tuple[object, str]]]:
    """Sink single-table selections onto their scans.

    Returns the rewritten plan plus the ``(condition, table)`` pairs
    that landed on a scan (for explain annotations).  Filters commute
    and preserve row order, so the rewrite is result-identical; the
    sunk conjuncts keep their original relative order per table, which
    matches the eager evaluator's sequential ``_reduced_table`` exactly.
    """
    pushed: list[tuple[object, str]] = []

    def wrap(n: LogicalNode, pending: list) -> LogicalNode:
        for condition, __ in pending:
            n = Select(n, condition)
        return n

    def rec(n: LogicalNode, pending: list) -> LogicalNode:
        if isinstance(n, Select):
            qualifiers = n.condition.qualifiers()
            if len(qualifiers) == 1:
                target = next(iter(qualifiers))
                if _pushable(n.child, target):
                    return rec(n.child, [(n.condition, target)] + pending)
            return Select(rec(n.child, pending), n.condition)
        if isinstance(n, EquiJoin):
            left_p, right_p, rest = [], [], []
            for entry in pending:
                if _pushable(n.left, entry[1]):
                    left_p.append(entry)
                elif _pushable(n.right, entry[1]):
                    right_p.append(entry)
                else:
                    rest.append(entry)
            rebuilt = EquiJoin(rec(n.left, left_p), rec(n.right, right_p), n.pairs)
            return wrap(rebuilt, rest)
        if isinstance(n, (SemiJoin, AntiJoin)):
            left_p = [e for e in pending if _pushable(n.left, e[1])]
            rest = [e for e in pending if not _pushable(n.left, e[1])]
            rebuilt = type(n)(rec(n.left, left_p), rec(n.right, []), n.pairs)
            return wrap(rebuilt, rest)
        if isinstance(n, (Scan, DeltaScan)):
            source = n.source if isinstance(n, Scan) else n.table
            matched = [e for e in pending if e[1] == source]
            rest = [e for e in pending if e[1] != source]
            out: LogicalNode = n
            for condition, target in matched:
                out = Select(out, condition)
                pushed.append((condition, target))
            return wrap(out, rest)
        if isinstance(n, GeneralizedProject):
            rebuilt = GeneralizedProject(rec(n.child, []), n.items, n.qualifier)
            return wrap(rebuilt, pending)
        if isinstance(n, Project):
            rebuilt = Project(rec(n.child, []), n.references, n.distinct)
            return wrap(rebuilt, pending)
        return wrap(n, pending)

    return rec(node, []), pushed


def _is_scan_chain(node: LogicalNode) -> bool:
    """A ``Select*(Scan)`` chain — one base table plus local filters."""
    while isinstance(node, Select):
        node = node.child
    return isinstance(node, Scan)


def _chain_source(node: LogicalNode) -> str:
    while isinstance(node, Select):
        node = node.child
    return node.source


def prune_projections(
    node: LogicalNode, schemas: Mapping[str, Schema]
) -> tuple[LogicalNode, list[tuple[str, tuple[str, ...]]]]:
    """Insert bag projections above each scan chain, keeping only
    attributes the rest of the plan references — join attributes plus
    attributes preserved in ``V`` (the projection half of the paper's
    local reduction).  Local filter columns run *below* the inserted
    projection, so they need not survive it.

    Returns the rewritten plan plus ``(table, kept refs)`` pairs.
    """
    needed: set[str] = set()

    def collect(n: LogicalNode) -> None:
        if isinstance(n, (EquiJoin, SemiJoin, AntiJoin)):
            for left, right in n.pairs:
                needed.add(left)
                needed.add(right)
        elif isinstance(n, Select) and not _is_scan_chain(n):
            for column in n.condition.columns():
                needed.add(column.qualified_name)
        elif isinstance(n, GeneralizedProject):
            for item in n.items:
                column = getattr(item, "column", None)
                if column is not None:
                    needed.add(column.qualified_name)
        elif isinstance(n, Project):
            needed.update(n.references)
        for child in n.children():
            collect(child)

    collect(node)
    pruned: list[tuple[str, tuple[str, ...]]] = []

    def rewrite(n: LogicalNode) -> LogicalNode:
        if _is_scan_chain(n):
            schema = schemas.get(_chain_source(n))
            if schema is not None:
                kept = tuple(
                    a.qualified_name for a in schema if a.qualified_name in needed
                )
                if kept and len(kept) < len(schema):
                    pruned.append((_chain_source(n), kept))
                    return Project(n, kept, distinct=False)
            return n
        if isinstance(n, Select):
            return Select(rewrite(n.child), n.condition)
        if isinstance(n, EquiJoin):
            return EquiJoin(rewrite(n.left), rewrite(n.right), n.pairs)
        if isinstance(n, (SemiJoin, AntiJoin)):
            return type(n)(rewrite(n.left), rewrite(n.right), n.pairs)
        if isinstance(n, GeneralizedProject):
            return GeneralizedProject(rewrite(n.child), n.items, n.qualifier)
        if isinstance(n, Project):
            return Project(rewrite(n.child), n.references, n.distinct)
        return n

    return rewrite(node), pruned


# ----------------------------------------------------------------------
# Lowering.
# ----------------------------------------------------------------------


def lower(node: LogicalNode) -> PhysicalNode:
    """Structural logical-to-physical lowering (hash implementations).

    Policy-specific physical choices — key-probe semijoins, restriction
    chains, index joins — are made by the maintenance planner
    (:mod:`repro.plan.maintenance`), which builds physical trees
    directly from its richer static knowledge.
    """
    if isinstance(node, Scan):
        return ScanNode(node.source, node)
    if isinstance(node, DeltaScan):
        return DeltaScanNode(node.table, node.sign, node)
    if isinstance(node, Select):
        return FilterNode(lower(node.child), node.condition, node)
    if isinstance(node, Project):
        return ProjectNode(lower(node.child), node.references, node.distinct, node)
    if isinstance(node, GeneralizedProject):
        return GeneralizedProjectNode(lower(node.child), node.items, node.qualifier, node)
    if isinstance(node, EquiJoin):
        return HashJoinNode(lower(node.left), lower(node.right), node.pairs, node)
    if isinstance(node, SemiJoin):
        return HashSemiJoinNode(lower(node.left), lower(node.right), node.pairs, node)
    if isinstance(node, AntiJoin):
        return HashAntiJoinNode(lower(node.left), lower(node.right), node.pairs, node)
    raise PlanError(f"cannot lower {type(node).__name__}")


# ----------------------------------------------------------------------
# View evaluation plans.
# ----------------------------------------------------------------------


@dataclass
class ViewPlan:
    """A fully planned view evaluation: logical, optimized, physical."""

    view: ViewDefinition
    logical: LogicalNode
    optimized: LogicalNode
    physical: PhysicalNode
    pushed: list = field(default_factory=list)
    pruned: list = field(default_factory=list)

    def runtime_stats(self) -> list[dict]:
        """Observed per-node cardinalities/timings accumulated across
        every execution of this (cached) plan — evaluation plans persist
        in the view-plan cache, so stats survive across calls."""
        return collect_node_stats(self.physical)


_VIEW_PLAN_CACHE: dict = {}
_VIEW_PLAN_CACHE_MAX = 128


def view_plan(view: ViewDefinition, database: Database) -> ViewPlan:
    """The (cached) evaluation plan for ``view`` over ``database``'s
    table schemas: canonical plan, selection pushdown, projection
    pruning, hash-join lowering."""
    schemas = {table: database.table(table).schema for table in view.tables}
    key = (view, tuple(sorted(schemas.items())))
    cached = _VIEW_PLAN_CACHE.get(key)
    if cached is not None:
        return cached
    logical = canonical_view_plan(view)
    optimized, pushed = push_selections(logical)
    optimized, pruned = prune_projections(optimized, schemas)
    physical = lower(optimized)
    _annotate_view_plan(physical, pushed, pruned)
    plan = ViewPlan(view, logical, optimized, physical, pushed, pruned)
    if len(_VIEW_PLAN_CACHE) >= _VIEW_PLAN_CACHE_MAX:
        _VIEW_PLAN_CACHE.clear()
    _VIEW_PLAN_CACHE[key] = plan
    return plan


def _annotate_view_plan(physical: PhysicalNode, pushed, pruned) -> None:
    pruned_tables = dict(pruned)
    for node in physical.walk():
        if isinstance(node, FilterNode):
            if any(condition == node.condition for condition, __ in pushed):
                node.annotations.append("selection pushed to base-table scan")
        elif isinstance(node, ProjectNode):
            if node.logical is not None and isinstance(node.logical, Project):
                source = (
                    _chain_source(node.logical.child)
                    if _is_scan_chain(node.logical.child)
                    else None
                )
                if source in pruned_tables:
                    node.annotations.append(
                        "projection pruned to join + preserved attributes"
                    )


def execute_view_plan(plan: ViewPlan, database: Database) -> Relation:
    """Run a view plan against the live base tables."""
    ctx = ExecutionContext(resolver=database.relation)
    return plan.physical.run(ctx)


def evaluate_view(view: ViewDefinition, database: Database) -> Relation:
    """Plan-based view evaluation (replaces the eager operator loop)."""
    return execute_view_plan(view_plan(view, database), database)


def clear_plan_cache() -> None:
    _VIEW_PLAN_CACHE.clear()
