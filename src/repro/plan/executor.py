"""Execution contexts for physical plans.

A physical plan is static — built once per (view, delta shape) — and
executed against a fresh :class:`ExecutionContext` per evaluation or
per transaction.  The context supplies the leaf bindings (named
relations, live auxiliary materializations, the transaction's signed
deltas), the per-run memo that guarantees each node computes once even
when several parents share it, and two optional cross-cutting services:
a :class:`~repro.perf.PerfStats` sink for per-node timings/counters and
a *shared* result cache that one warehouse transaction passes to every
maintainer so structurally identical delta subplans across views are
computed once (multi-query optimization à la Mistry et al., VLDB 2001).
A third optional service is an active :class:`~repro.obs.trace.Trace`:
when present, every plan node executed under this context opens a
nested span (see :meth:`PhysicalNode.run`).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.engine.relation import Relation
from repro.perf import PerfStats


class PlanExecutionError(Exception):
    """Raised when a plan's leaf bindings are missing at run time."""


class ExecutionContext:
    """Per-run bindings and caches for one plan execution."""

    __slots__ = (
        "relations", "resolver", "providers", "perf", "memo", "shared",
        "deltas", "trace",
    )

    def __init__(
        self,
        relations: Mapping[str, Relation] | None = None,
        resolver: Callable[[str], Relation] | None = None,
        providers: Mapping[str, object] | None = None,
        perf: PerfStats | None = None,
        shared: dict | None = None,
        deltas: Mapping[tuple[str, int], Relation] | None = None,
        trace=None,
    ):
        self.relations = relations
        self.resolver = resolver
        self.providers = providers
        self.perf = perf
        self.memo: dict[int, object] = {}
        self.shared = shared
        self.deltas = deltas
        self.trace = trace

    def relation(self, name: str) -> Relation:
        """The relation bound to ``name`` (explicit binding first, then
        the resolver — e.g. ``database.relation``)."""
        if self.relations is not None:
            bound = self.relations.get(name)
            if bound is not None:
                return bound
        if self.resolver is not None:
            return self.resolver(name)
        raise PlanExecutionError(f"no relation bound for scan {name!r}")

    def provider(self, table: str):
        """The live auxiliary materialization backing ``table``."""
        if self.providers is None:
            raise PlanExecutionError(
                f"no materialization providers in this context ({table!r})"
            )
        provider = self.providers.get(table)
        if provider is None:
            raise PlanExecutionError(f"no materialization for table {table!r}")
        return provider

    def delta(self, table: str, sign: int) -> Relation:
        """The signed delta relation of the current transaction."""
        if self.deltas is None:
            raise PlanExecutionError("no deltas bound in this context")
        bound = self.deltas.get((table, sign))
        if bound is None:
            raise PlanExecutionError(
                f"no {'+' if sign > 0 else '-'}delta bound for {table!r}"
            )
        return bound

    def count(self, name: str, amount: int = 1) -> None:
        if self.perf is not None:
            self.perf.count(name, amount)
