"""Render the chosen physical plans, with optimizer annotations.

Three layers of annotation end up in one report:

* per-node rewrite marks attached by the planners themselves (pushed
  selections, pruned projections, index-backed reductions and
  restrictions);
* the evaluation plan for each registered view (canonical plan after
  pushdown/pruning, hash-join lowering);
* cross-view sharing marks: subplans whose structural ``share_key``
  appears in the maintenance plans of two or more registered views are
  flagged, because one warehouse transaction computes them once.

This module sits *above* the rest of :mod:`repro.plan` — it reads
warehouses and maintainers — so it is imported lazily (by
``Warehouse.explain_plans`` and the CLI), never from the plan package
itself.
"""

from __future__ import annotations

from textwrap import indent

from repro.plan.logical import LogicalNode
from repro.plan.planner import view_plan


def collect_share_keys(maintainer) -> set[LogicalNode]:
    """Structural keys of every shareable subplan in one maintainer's
    delta plans (both signs; building them is cheap and cached)."""
    keys: set[LogicalNode] = set()
    for table in maintainer.view.tables:
        for sign in (+1, -1):
            plans = maintainer.delta_plans(table, sign)
            roots = [plans.reduce]
            if plans.propagate is not None:
                roots.append(plans.propagate)
            for root in roots:
                for node in root.walk():
                    if node.share_key is not None:
                        keys.add(node.share_key)
    return keys


def shared_key_owners(warehouse) -> dict[LogicalNode, list[str]]:
    """``share_key -> registered views whose plans contain it``."""
    owners: dict[LogicalNode, list[str]] = {}
    for name in warehouse.view_names:
        for key in collect_share_keys(warehouse.maintainer(name)):
            owners.setdefault(key, []).append(name)
    return owners


def make_shared_annotator(
    owners: dict[LogicalNode, list[str]],
    selected: frozenset | None = None,
):
    """An annotator for :meth:`PhysicalNode.render` that marks subplans
    two or more views compute through the shared per-transaction cache.

    With ``selected`` (the warehouse's explicit shared-subplan
    selection, cost mode) the mark distinguishes subtrees the cost
    model *chose* to materialize once from shareable candidates it
    declined (their results are recomputed per view)."""

    def annotator(node) -> str | None:
        if node.share_key is None:
            return None
        views = owners.get(node.share_key)
        if not views or len(views) < 2:
            return None
        names = ", ".join(views)
        if selected is None:
            return "shared across views: " + names
        if node.share_key in selected:
            return f"shared across views: {names} [cost-selected]"
        return f"shareable across views: {names} [not selected by cost model]"

    return annotator


def stats_annotator(node) -> str | None:
    """Annotate a node with its observed runtime statistics (the
    ``explain --analyze`` rendering); silent for never-executed nodes."""
    return node.stats.describe()


def _describe_record(record: dict) -> str | None:
    """Render one backend-merged runtime-stats record the way
    :meth:`ActualStats.describe` renders a live accumulator."""
    if not record["executions"] and not record["reuses"]:
        return None
    parts = [
        f"actual: execs={record['executions']}",
        f"rows={record['rows_out']}",
        f"mean={record['mean_rows_out']:.1f}",
        f"time={record['total_ms']:.2f}ms",
    ]
    if record["reuses"]:
        parts.append(f"reuses={record['reuses']}")
    return " ".join(parts)


def merged_stats_annotator(maintainer):
    """A stats annotator backed by :meth:`SelfMaintainer.runtime_stats`
    — the *backend-merged* observations — instead of the parent
    process's live accumulators.

    Under a parallel sharded backend the parent only observes stage
    roots (each worker executes the inner plan nodes on its own
    partition), so ``explain --analyze`` must fold every shard's
    per-node statistics together rather than report shard 0's numbers.
    Nodes without a merged record (the evaluation plan, never-run
    shapes) fall back to their live accumulators."""
    merged = maintainer.runtime_stats()
    by_node: dict[int, dict] = {}
    for table in maintainer.view.tables:
        for sign in (+1, -1):
            records = merged.get(("+" if sign > 0 else "-") + table)
            if not records:
                continue
            index: dict[str, list[dict]] = {}
            for record in records:
                index.setdefault(record["label"], []).append(record)
            used: dict[str, int] = {}
            for node in maintainer.delta_plans(table, sign).walk():
                position = used.get(node.label, 0)
                used[node.label] = position + 1
                matches = index.get(node.label, [])
                if position < len(matches):
                    by_node[id(node)] = matches[position]

    def annotator(node) -> str | None:
        record = by_node.get(id(node))
        if record is None:
            return stats_annotator(node)
        return _describe_record(record)

    return annotator


def combine_annotators(*annotators):
    """One annotator joining the non-empty notes of several."""

    def annotator(node) -> str | None:
        notes = [a(node) for a in annotators]
        notes = [note for note in notes if note]
        return "; ".join(notes) if notes else None

    return annotator


def maintainer_plan_report(maintainer, database, annotator=None) -> str:
    """One view's plans: evaluation plus one maintenance plan per table.

    Insertion plans are shown; deletion plans are mirror images (the
    delta scan's sign flips, the pipeline is identical).
    """
    lines = [f"view {maintainer.view.name}"]
    physical = maintainer.backend.describe(maintainer.view.name)
    if physical is not None:
        lines.append(f"  {physical}")
    lines.append("  evaluation plan:")
    plan = view_plan(maintainer.view, database)
    lines.append(indent(plan.physical.render(annotator), "    "))
    lines.append("  maintenance plans (per inserted-delta table):")
    for table in maintainer.view.tables:
        plans = maintainer.delta_plans(table, +1)
        root = plans.propagate if plans.propagate is not None else plans.reduce
        lines.append(f"    Δ+{table}:")
        lines.append(indent(root.render(annotator), "      "))
    return "\n".join(lines)


def warehouse_plan_report(warehouse) -> str:
    """Every registered view's plans, with cross-view shared subplans
    marked (the report behind ``Warehouse.explain_plans``).  Under the
    cost planner the marks reflect the warehouse's explicit
    shared-subplan selection."""
    from repro.plan.cost import PlannerMode  # lazy: explain sits above

    selected = None
    if getattr(warehouse, "planner_mode", None) is PlannerMode.COST:
        selected = warehouse.shared_subplan_selection()
    annotator = make_shared_annotator(shared_key_owners(warehouse), selected)
    sections = [
        maintainer_plan_report(
            warehouse.maintainer(name), warehouse.database, annotator
        )
        for name in warehouse.view_names
    ]
    return "\n\n".join(sections)


def explain_view_plans(view, database, backend=None, planner=None) -> str:
    """Plans for one standalone view (``python -m repro explain --plan``).

    Builds an uninitialized maintainer — plans depend only on schemas
    and the derivation, so no base data is loaded or read.  ``backend``
    (a spec string or instance) adds that backend's physical line, e.g.
    the sharded backend's derived routing; ``planner`` selects the
    maintenance planner mode (cost or static).
    """
    from repro.core.maintenance import SelfMaintainer  # upward, lazy

    maintainer = SelfMaintainer(
        view, database, initialize=False, backend=backend, planner=planner
    )
    return maintainer_plan_report(maintainer, database)
