"""The logical query-plan IR: relational algebra over named sources.

Every evaluation path in the repository — view recomputation, auxiliary
reconstruction, and delta maintenance — is expressed as a tree of these
nodes before execution.  Nodes are frozen dataclasses, so structural
equality and hashing come for free; that is what makes selection
pushdown a genuine rewrite (compare trees before/after) and what lets a
:class:`~repro.warehouse.warehouse.Warehouse` detect structurally
identical delta subplans across views and share their results within
one transaction (in the spirit of Mistry et al., VLDB 2001).

Leaves name their inputs rather than holding relations: ``Scan`` binds
to a relation by source name at execution time and ``DeltaScan`` binds
to one signed delta of the current transaction, so a plan is compiled
once and executed against fresh bindings on every transaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expressions import Expression
from repro.engine.operators import ProjectionItem


class PlanError(Exception):
    """Raised for malformed plans or impossible lowerings."""


class LogicalNode:
    """Base of the IR.  Subclasses are frozen dataclasses: equality and
    hashing are structural, which identifies common subplans."""

    def children(self) -> tuple["LogicalNode", ...]:
        return ()

    def describe(self) -> str:
        """One line of algebra for this node (no children)."""
        raise NotImplementedError

    @property
    def delta_only(self) -> bool:
        """Whether every leaf under this node is a :class:`DeltaScan`.

        Delta-only subplans depend solely on the transaction (not on
        any view's auxiliary state), so their results are safe to share
        across the maintainers of one warehouse transaction.
        """
        kids = self.children()
        return bool(kids) and all(child.delta_only for child in kids)

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()

    def render(self) -> str:
        """The indented-tree unparsing of this plan."""
        lines: list[str] = []

        def emit(node: "LogicalNode", depth: int) -> None:
            lines.append("  " * depth + node.describe())
            for child in node.children():
                emit(child, depth + 1)

        emit(self, 0)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.render()


def _render_pairs(pairs: tuple[tuple[str, str], ...]) -> str:
    return ", ".join(f"{left} = {right}" for left, right in pairs)


@dataclass(frozen=True)
class Scan(LogicalNode):
    """A named base relation (or materialized auxiliary view)."""

    source: str

    def describe(self) -> str:
        return f"Scan[{self.source}]"

    @property
    def delta_only(self) -> bool:
        return False


@dataclass(frozen=True)
class DeltaScan(LogicalNode):
    """One signed delta of the current transaction (+1 insert, -1 delete)."""

    table: str
    sign: int = 1

    def describe(self) -> str:
        return f"ΔScan[{'+' if self.sign > 0 else '-'}{self.table}]"

    @property
    def delta_only(self) -> bool:
        return True


@dataclass(frozen=True)
class Select(LogicalNode):
    """``σ_condition(child)``."""

    child: LogicalNode
    condition: Expression

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"σ[{self.condition.to_sql()}]"


@dataclass(frozen=True)
class Project(LogicalNode):
    """``π_references(child)``; bag-preserving unless ``distinct``."""

    child: LogicalNode
    references: tuple[str, ...]
    distinct: bool = False

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        mark = " distinct" if self.distinct else ""
        return f"π[{', '.join(self.references)}]{mark}"


@dataclass(frozen=True)
class GeneralizedProject(LogicalNode):
    """``Π_items(child)`` — group-by plus aggregates (GHQ, VLDB 1995)."""

    child: LogicalNode
    items: tuple[ProjectionItem, ...]
    qualifier: str | None = None

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        rendered = ", ".join(item.to_sql() for item in self.items)
        suffix = f" → {self.qualifier}" if self.qualifier else ""
        return f"Π[{rendered}]{suffix}"


@dataclass(frozen=True)
class EquiJoin(LogicalNode):
    """``left ⋈_pairs right``; empty ``pairs`` is a cross product."""

    left: LogicalNode
    right: LogicalNode
    pairs: tuple[tuple[str, str], ...]

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        if not self.pairs:
            return "×"
        return f"⋈[{_render_pairs(self.pairs)}]"


@dataclass(frozen=True)
class SemiJoin(LogicalNode):
    """``left ⋉_pairs right`` — the paper's join reduction."""

    left: LogicalNode
    right: LogicalNode
    pairs: tuple[tuple[str, str], ...]

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"⋉[{_render_pairs(self.pairs)}]"


@dataclass(frozen=True)
class AntiJoin(LogicalNode):
    """``left ▷_pairs right``."""

    left: LogicalNode
    right: LogicalNode
    pairs: tuple[tuple[str, str], ...]

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"▷[{_render_pairs(self.pairs)}]"


def scan_sources(node: LogicalNode) -> frozenset[str]:
    """Names of every :class:`Scan`/:class:`DeltaScan` leaf under ``node``."""
    sources = set()
    for n in node.walk():
        if isinstance(n, Scan):
            sources.add(n.source)
        elif isinstance(n, DeltaScan):
            sources.add(n.table)
    return frozenset(sources)
