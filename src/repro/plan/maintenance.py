"""Static delta-maintenance plans (one per table, sign, and policy).

The :class:`MaintenancePlanner` compiles Section 3.2's maintenance
pipeline for one changed table into three physical plans executed per
transaction by :class:`~repro.core.maintenance.SelfMaintainer`:

``local``
    ``σ_local(Δ)`` — the table's local selection pushed onto the delta
    scan (the paper's local reduction).

``reduce``
    a chain of key-probe semijoins against the auxiliary views of the
    tables the changed table depends on (the paper's join reduction),
    ordered by the extended join graph's processing order.

``propagate``
    the restricted join of the reduced delta with the other auxiliary
    views, folded into per-group contributions by the reconstructor's
    compiled row program.  Under the ``INDEXED`` policy the whole join
    tree is semijoin-restricted outward from the delta through the
    maintained hash indexes; under ``NAIVE`` only the ancestor path is
    restricted (the seed's legacy behavior).  ``None`` when the root
    auxiliary view was eliminated and the delta is on a dimension
    (group rewrites handle those, Section 3.3).

Under the ``STATIC`` planner mode all structural decisions — traversal
order, which tables get restricted, join order — depend only on static
schema information, so each plan is built once and reused; the only
per-transaction inputs are the delta bindings and the live
materializations in the execution context.  Under ``COST`` (the
default) the same decisions are taken per compile from a
:class:`~repro.plan.cost.StatsCatalog` snapshot: semijoin reductions
are ordered most-selective-first, probe direction flips when the
dependency's key population is much smaller than the expected delta,
per-neighbor restriction is skipped when the delta's estimated reach
already covers the auxiliary view, and the propagation join order is
cost-greedy.  Every choice is provably bag-identical to the static
plan; estimates are stamped on the stage roots (``estimated_rows``) so
the maintainer's feedback loop can compare them with observations and
trigger a re-plan.  Delta-only subplans (the delta scan and its local
filter) carry share keys, letting one warehouse transaction share
their results across the maintainers of all registered views.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expressions import conjoin
from repro.engine.schema import Schema
from repro.obs.stats import collect_node_stats
from repro.plan.cost import DEFAULT_DELTA_ROWS, PlannerMode, StatsCatalog
from repro.plan.logical import DeltaScan, PlanError, Select
from repro.plan.physical import (
    AccumulateNode,
    AuxScanNode,
    DeltaScanNode,
    FilterNode,
    HashJoinNode,
    KeyProbeSemiJoinNode,
    NeighborRestrictNode,
    PhysicalNode,
)
from repro.plan.planner import (
    PlanPolicy,
    cost_join_order,
    join_order,
    join_physical,
)


@dataclass
class DeltaPlans:
    """The compiled pipeline for one (table, sign) delta shape."""

    table: str
    sign: int
    local: PhysicalNode
    reduce: PhysicalNode
    propagate: PhysicalNode | None
    n_reductions: int

    def roots(self) -> tuple[PhysicalNode, ...]:
        """The pipeline's stage roots, outermost first.  ``reduce``
        contains ``local`` as a subtree and ``propagate`` (when present)
        contains ``reduce``, so the *first* root covers every node."""
        if self.propagate is not None:
            return (self.propagate, self.reduce, self.local)
        return (self.reduce, self.local)

    def walk(self):
        """Every unique physical node of the pipeline, pre-order from
        the outermost root."""
        seen: set[int] = set()
        for root in self.roots():
            for node in root.walk():
                if id(node) not in seen:
                    seen.add(id(node))
                    yield node

    def runtime_stats(self) -> list[dict]:
        """Observed per-node cardinality/timing records accumulated over
        every transaction this compiled pipeline has maintained (the
        ``explain --analyze`` payload)."""
        return collect_node_stats(self.roots()[0])

    def stage_estimates(self) -> dict:
        """The cost planner's per-stage cardinality estimates (``None``
        under the static planner, which stamps no estimates)."""
        return {
            "local": self.local.estimated_rows,
            "reduce": self.reduce.estimated_rows,
            "propagate": (
                self.propagate.estimated_rows
                if self.propagate is not None
                else None
            ),
        }

    def reset_runtime_stats(self) -> None:
        for node in self.walk():
            node.stats.reset()


def transfer_runtime_stats(old: DeltaPlans, new: DeltaPlans) -> None:
    """Carry observed :class:`~repro.obs.stats.ActualStats` from a
    retired pipeline onto its replacement, so an adaptive re-plan does
    not zero the ``explain --analyze`` history.  Nodes match by operator
    label with occurrence counters — a re-plan may reorder or drop
    operators, in which case the unmatched observations are simply the
    retired plan's and stay retired."""
    index: dict[str, list[PhysicalNode]] = {}
    for node in old.walk():
        index.setdefault(node.label, []).append(node)
    used: dict[str, int] = {}
    for node in new.walk():
        position = used.get(node.label, 0)
        used[node.label] = position + 1
        matches = index.get(node.label, [])
        if position < len(matches):
            node.stats.merge(matches[position].stats)


class MaintenancePlanner:
    """Builds :class:`DeltaPlans` from static view/derivation structure.

    ``restrict`` can be switched off (see
    ``SelfMaintainer.set_restriction``) to plan propagation joins over
    the *full* auxiliary views — the ablation baseline that used to be
    reached by monkeypatching the restriction helpers away.
    """

    def __init__(
        self,
        view,
        database,
        graph,
        aux_set,
        reconstructor,
        policy: PlanPolicy,
        order: tuple[str, ...],
        mode: PlannerMode = PlannerMode.STATIC,
        catalog: StatsCatalog | None = None,
    ):
        self.view = view
        self.graph = graph
        self.policy = policy
        self.reconstructor = reconstructor
        self.restrict = True
        self.mode = mode
        self.catalog = catalog
        #: Observed per-shape cardinalities fed back by the maintainer's
        #: estimate checks: ``{(table, sign): {"local_rows", "reduce_rows"}}``.
        #: The next compile of that shape calibrates on them.
        self.feedback: dict[tuple[str, int], dict[str, float]] = {}
        self._order = order
        self._eliminated = frozenset(aux_set.eliminated)
        self._root = graph.root
        self._schemas: dict[str, Schema] = {
            table: database.table(table).schema for table in view.tables
        }
        self._keys = {
            table: (database.table(table).key, database.table(table).key_index())
            for table in view.tables
        }
        self._aux_schemas: dict[str, Schema] = {
            aux.table: aux.output_schema() for aux in aux_set
        }
        self._local_conditions = {
            table: view.local_conditions(table) for table in view.tables
        }
        self._reductions = {
            table: self._table_reductions(aux_set, table) for table in view.tables
        }
        self._neighbor_edges = self._build_neighbor_edges()

    def _table_reductions(
        self, aux_set, table: str
    ) -> tuple[tuple[int, str, str], ...]:
        """(fk index, dependency table, dependency key ref) triples,
        ordered by the extended join graph's processing order — the
        semijoin ordering the paper's reduction arguments assume."""
        schema = self._schemas[table]
        if table not in self._eliminated:
            joins = aux_set.for_table(table).reduced_by
        else:
            joins = self.view.joins_from(table)
        reductions = [
            (
                schema.index_of(join.left_attribute),
                join.right_table,
                f"{join.right_table}.{join.right_attribute}",
            )
            for join in joins
        ]
        position = {name: i for i, name in enumerate(self._order)}
        reductions.sort(key=lambda entry: position.get(entry[1], len(position)))
        return tuple(reductions)

    def _build_neighbor_edges(
        self,
    ) -> dict[str, tuple[tuple[str, str, str], ...]]:
        """For each view table, its join-tree neighbors as
        ``(neighbor, local column, neighbor column)`` — both directions
        of every join edge, one entry per neighbor pair.

        Restriction by one attribute pair of a multi-condition edge is
        conservative (a superset of the joinable rows survives), which
        is all soundness needs.
        """
        edges: dict[str, list[tuple[str, str, str]]] = {
            table: [] for table in self.view.tables
        }
        seen: set[tuple[str, str]] = set()
        for join in self.view.joins:
            pair = (join.left_table, join.right_table)
            if pair in seen:
                continue
            seen.add(pair)
            left = f"{join.left_table}.{join.left_attribute}"
            right = f"{join.right_table}.{join.right_attribute}"
            edges[join.left_table].append((join.right_table, left, right))
            edges[join.right_table].append((join.left_table, right, left))
        return {table: tuple(pairs) for table, pairs in edges.items()}

    @property
    def cost_based(self) -> bool:
        """True when this planner takes decisions from the stats catalog.

        Requires both ``COST`` mode and a catalog; the ``NAIVE`` policy
        (no maintained indexes, so no free histograms) always plans
        statically regardless of the requested mode.
        """
        return (
            self.mode is PlannerMode.COST
            and self.catalog is not None
            and self.policy is PlanPolicy.INDEXED
        )

    # ------------------------------------------------------------------
    # Plan construction.
    # ------------------------------------------------------------------

    def build(self, table: str, sign: int) -> DeltaPlans:
        est_local = None
        est_reduce_hint = None
        if self.cost_based:
            hints = self.feedback.get((table, sign), {})
            est_local = max(hints.get("local_rows", DEFAULT_DELTA_ROWS), 1.0)
            est_reduce_hint = hints.get("reduce_rows")
        local = self._build_local(table, sign)
        if est_local is not None:
            local.estimated_rows = est_local
        reduce_node, n_reductions = self._build_reduce(
            table, local, est_local, est_reduce_hint
        )
        skip_view = self._root in self._eliminated and table != self._root
        propagate = None
        if not skip_view:
            propagate = self._build_propagate(table, reduce_node)
        return DeltaPlans(table, sign, local, reduce_node, propagate, n_reductions)

    def _build_local(self, table: str, sign: int) -> PhysicalNode:
        delta_logical = DeltaScan(table, sign)
        node: PhysicalNode = DeltaScanNode(table, sign, delta_logical)
        node.share_key = delta_logical
        conditions = self._local_conditions[table]
        if conditions:
            condition = conjoin(conditions)
            logical = Select(delta_logical, condition)
            filtered = FilterNode(node, condition, logical)
            filtered.share_key = logical
            filtered.annotations.append(
                "selection pushed to the delta (local reduction)"
            )
            node = filtered
        return node

    def _build_reduce(
        self,
        table: str,
        local: PhysicalNode,
        est_local: float | None = None,
        est_reduce_hint: float | None = None,
    ) -> tuple[PhysicalNode, int]:
        node = local
        reductions = self._reductions[table]
        selectivity: dict[tuple, float] = {}
        if self.cost_based and reductions:
            selectivity = {
                entry: self.catalog.semijoin_selectivity(entry[1], entry[2])
                for entry in reductions
            }
            # Most selective first; the sort is stable, so equal
            # selectivities (e.g. a fresh catalog, where every
            # selectivity is 1.0) keep the static processing order.
            reductions = tuple(
                sorted(reductions, key=lambda entry: selectivity[entry])
            )
        estimate = est_local
        for fk_index, dep_table, dep_key in reductions:
            probe = KeyProbeSemiJoinNode(node, dep_table, dep_key, fk_index)
            if self.policy is PlanPolicy.INDEXED:
                probe.annotations.append(
                    f"index-backed join reduction: probes the maintained "
                    f"key index of X_{dep_table}"
                )
            else:
                probe.annotations.append(
                    f"join reduction via the rebuilt key cache of X_{dep_table}"
                )
            if estimate is not None:
                entry = (fk_index, dep_table, dep_key)
                sel = selectivity.get(entry, 1.0)
                key_count = self.catalog.distinct_count(dep_table, dep_key)
                if key_count and key_count * 4 < estimate:
                    # Far fewer live keys than delta rows: iterate the
                    # key set against a hash of the delta instead of
                    # probing the index per delta row.  Output order is
                    # delta order either way (bit-identical).
                    probe.probe_direction = "keys"
                    probe.annotations.append(
                        "probe direction: index keys -> delta "
                        "(cost: key set much smaller than delta)"
                    )
                estimate = max(estimate * sel, 0.0)
                probe.estimated_rows = max(estimate, 1.0)
                probe.annotations.append(
                    f"cost: selectivity {sel:.2f}, est~{max(estimate, 1.0):.1f} rows"
                )
            node = probe
        if est_reduce_hint is not None and node is not local:
            # Observed feedback for the whole chain beats the formula.
            node.estimated_rows = max(est_reduce_hint, 1.0)
        return node, len(reductions)

    def _build_propagate(self, table: str, reduce_node: PhysicalNode) -> PhysicalNode:
        nodes: dict[str, PhysicalNode] = {table: reduce_node}
        est_sizes: dict[str, float] = {}
        skipped: set[str] = set()
        if self.cost_based:
            est_sizes[table] = max(reduce_node.estimated_rows or 1.0, 1.0)
        if self.restrict:
            if self.cost_based:
                skipped = self._restrict_by_cost(table, nodes, est_sizes)
            elif self.policy is PlanPolicy.INDEXED:
                self._restrict_join_neighbors(table, nodes)
            else:
                self._restrict_ancestor_path(table, nodes)
        for other in self.view.tables:
            if other not in nodes and other in self._aux_schemas:
                scan = AuxScanNode(other)
                if other in skipped:
                    scan.annotations.append(
                        "restriction skipped by cost model "
                        "(delta reach covers the auxiliary view)"
                    )
                nodes[other] = scan
                if self.cost_based:
                    est_sizes[other] = float(
                        max(self.catalog.table_rows(other), 1)
                    )
        missing = [t for t in self.view.tables if t not in nodes]
        if missing:
            raise PlanError(f"cannot join: no relation supplied for {missing!r}")
        if self.cost_based:
            steps = cost_join_order(
                self.view.tables,
                self.view.joins,
                start=table,
                size_of=lambda t: est_sizes.get(t, 1.0),
                join_rows=lambda est, t, pairs: self._join_estimate(
                    est, t, pairs, est_sizes
                ),
            )
            joined = self._join_with_estimates(table, nodes, steps, est_sizes)
        else:
            steps = join_order(
                self.view.tables, self.view.joins, start=table, on_stuck="raise"
            )
            joined = join_physical(nodes, steps)
        accumulate = AccumulateNode(joined, self.reconstructor)
        accumulate.estimated_rows = joined.estimated_rows
        return accumulate

    # ------------------------------------------------------------------
    # Cost-mode helpers (estimates from the stats catalog).
    # ------------------------------------------------------------------

    def _restrict_by_cost(
        self,
        table: str,
        nodes: dict[str, PhysicalNode],
        est_sizes: dict[str, float],
    ) -> set[str]:
        """The join-neighbor restriction walk with a per-neighbor cost
        decision: restrict only when the delta's estimated reach is
        smaller than the auxiliary view itself (otherwise the semijoin
        cannot shrink the input and its probes are pure overhead).
        Skipping is always sound — the neighbor just stays full.
        Returns the set of neighbors skipped by the decision."""
        skipped: set[str] = set()
        frontier: list[tuple[str, Schema, float]] = [
            (table, self._schemas[table], est_sizes[table])
        ]
        visited = {table}
        while frontier:
            current, schema, est_in = frontier.pop()
            for neighbor, local_col, far_col in self._neighbor_edges[current]:
                if neighbor in visited:
                    continue
                aux_schema = self._aux_schemas.get(neighbor)
                if aux_schema is None:
                    continue  # eliminated: nothing materialized to restrict
                if not schema.has(local_col) or not aux_schema.has(far_col):
                    continue  # join column not stored: leave neighbor full
                aux_rows = float(max(self.catalog.table_rows(neighbor), 1))
                distinct = max(
                    self.catalog.distinct_count(neighbor, far_col), 1
                )
                est_matched = min(aux_rows, est_in * aux_rows / distinct)
                if est_in >= aux_rows:
                    visited.add(neighbor)
                    skipped.add(neighbor)
                    continue  # reach covers the aux view: skip, stay full
                node = NeighborRestrictNode(
                    nodes[current],
                    neighbor,
                    schema.index_of(local_col),
                    far_col,
                    aux_schema,
                    count_probes=True,
                )
                node.estimated_rows = max(est_matched, 1.0)
                node.annotations.append(
                    "index-backed semijoin restriction via the maintained "
                    "hash index"
                )
                node.annotations.append(
                    f"cost: est~{max(est_matched, 1.0):.1f} of "
                    f"{aux_rows:.0f} rows"
                )
                nodes[neighbor] = node
                est_sizes[neighbor] = max(est_matched, 1.0)
                visited.add(neighbor)
                frontier.append((neighbor, aux_schema, max(est_matched, 1.0)))
        return skipped

    def _distinct_estimate(self, table: str, ref: str, size: float) -> float:
        """Distinct values of ``ref`` within ``table``'s (possibly
        restricted) relation, capped by its estimated cardinality."""
        aux_schema = self._aux_schemas.get(table)
        if aux_schema is None or not aux_schema.has(ref):
            return 1.0
        distinct = max(self.catalog.distinct_count(table, ref), 1)
        return min(float(distinct), max(size, 1.0))

    def _join_estimate(
        self,
        estimate: float,
        table: str,
        pairs: tuple[tuple[str, str], ...],
        est_sizes: dict[str, float],
    ) -> float:
        """Uniform-distribution equijoin estimate for joining ``table``
        into an intermediate of ``estimate`` rows."""
        size = est_sizes.get(table, 1.0)
        denominator = 1.0
        for _placed_ref, new_ref in pairs:
            denominator = max(
                denominator, self._distinct_estimate(table, new_ref, size)
            )
        return estimate * size / denominator

    def _join_with_estimates(
        self,
        table: str,
        nodes: dict[str, PhysicalNode],
        steps,
        est_sizes: dict[str, float],
    ) -> PhysicalNode:
        """Fold the cost-chosen join steps, stamping each join node with
        the running cardinality estimate for explain and feedback."""
        running = max(est_sizes.get(table, 1.0), 1.0)

        def make_join(current, other, pairs):
            nonlocal running
            node = HashJoinNode(current, nodes[other], pairs)
            running = self._join_estimate(running, other, pairs, est_sizes)
            node.estimated_rows = max(running, 1.0)
            node.annotations.append(
                f"cost-chosen join order: est~{max(running, 1.0):.1f} rows"
            )
            return node

        return join_physical(nodes, steps, make_join)

    def _restrict_join_neighbors(
        self, table: str, nodes: dict[str, PhysicalNode]
    ) -> None:
        """Plan the semijoin restriction of *every* reachable view table,
        walking the join tree outward from the changed table.  The walk
        is schema-determined, so it happens once at build time; per
        transaction only the index probes run.  When a hop's join column
        is not stored in a materialization the walk stops there and the
        remaining relations stay full (still sound)."""
        frontier: list[tuple[str, Schema]] = [(table, self._schemas[table])]
        visited = {table}
        while frontier:
            current, schema = frontier.pop()
            for neighbor, local_col, far_col in self._neighbor_edges[current]:
                if neighbor in visited:
                    continue
                aux_schema = self._aux_schemas.get(neighbor)
                if aux_schema is None:
                    continue  # eliminated: nothing materialized to restrict
                if not schema.has(local_col) or not aux_schema.has(far_col):
                    continue  # join column not stored: leave neighbor full
                node = NeighborRestrictNode(
                    nodes[current],
                    neighbor,
                    schema.index_of(local_col),
                    far_col,
                    aux_schema,
                    count_probes=True,
                )
                node.annotations.append(
                    "index-backed semijoin restriction via the maintained "
                    "hash index"
                )
                nodes[neighbor] = node
                visited.add(neighbor)
                frontier.append((neighbor, aux_schema))

    def _restrict_ancestor_path(
        self, table: str, nodes: dict[str, PhysicalNode]
    ) -> None:
        """Plan the seed's ancestor-only restriction: climb from the
        changed dimension toward the root, restricting each materialized
        parent by the child's keys, stopping when a parent's key is not
        stored (exactly the legacy loop's stopping rules)."""
        current = table
        source = nodes[table]
        local_index = self._keys[table][1]
        while True:
            parent = self.graph.parent(current)
            if parent is None or parent not in self._aux_schemas:
                return
            join = next(
                j for j in self.view.joins_from(parent)
                if j.right_table == current
            )
            aux_schema = self._aux_schemas[parent]
            node = NeighborRestrictNode(
                source,
                parent,
                local_index,
                f"{parent}.{join.left_attribute}",
                aux_schema,
                count_probes=False,
            )
            node.annotations.append("ancestor-path restriction (naive policy)")
            nodes[parent] = node
            parent_key_ref = f"{parent}.{self._keys[parent][0]}"
            if not aux_schema.has(parent_key_ref):
                return  # the parent's key is not stored: stop climbing
            local_index = aux_schema.index_of(parent_key_ref)
            source = node
            current = parent
