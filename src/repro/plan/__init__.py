"""The query-plan layer: logical IR, physical planner, shared executor.

All evaluation in the repository flows through this package: view
recomputation (:func:`~repro.plan.planner.evaluate_view`), auxiliary
reconstruction (:class:`~repro.core.rewrite.Reconstructor` builds its
join plans here), and incremental maintenance
(:class:`~repro.plan.maintenance.MaintenancePlanner` compiles one
static delta plan per (table, sign) and policy).

``repro.plan.explain`` renders chosen plans with their annotations
(pushed selections, pruned projections, index-backed reductions,
cross-view shared subplans); it is imported lazily by the CLI and the
warehouse to keep this package free of upward dependencies.
"""

from repro.plan.executor import ExecutionContext, PlanExecutionError
from repro.plan.logical import (
    AntiJoin,
    DeltaScan,
    EquiJoin,
    GeneralizedProject,
    LogicalNode,
    PlanError,
    Project,
    Scan,
    Select,
    SemiJoin,
    scan_sources,
)
from repro.plan.physical import (
    AccumulateNode,
    AuxScanNode,
    DeltaScanNode,
    FilterNode,
    GeneralizedProjectNode,
    HashAntiJoinNode,
    HashJoinNode,
    HashSemiJoinNode,
    IndexJoinNode,
    KeyProbeSemiJoinNode,
    NeighborRestrictNode,
    PhysicalNode,
    ProjectNode,
    ScanNode,
)
from repro.plan.planner import (
    JoinGraphDisconnected,
    PlanPolicy,
    ViewPlan,
    canonical_view_plan,
    evaluate_view,
    execute_view_plan,
    join_order,
    join_pairs,
    join_physical,
    lower,
    prune_projections,
    push_selections,
    view_plan,
)

__all__ = [
    "AccumulateNode",
    "AntiJoin",
    "AuxScanNode",
    "DeltaScan",
    "DeltaScanNode",
    "EquiJoin",
    "ExecutionContext",
    "FilterNode",
    "GeneralizedProject",
    "GeneralizedProjectNode",
    "HashAntiJoinNode",
    "HashJoinNode",
    "HashSemiJoinNode",
    "IndexJoinNode",
    "JoinGraphDisconnected",
    "KeyProbeSemiJoinNode",
    "LogicalNode",
    "NeighborRestrictNode",
    "PhysicalNode",
    "PlanError",
    "PlanExecutionError",
    "PlanPolicy",
    "Project",
    "ProjectNode",
    "Scan",
    "ScanNode",
    "Select",
    "SemiJoin",
    "ViewPlan",
    "canonical_view_plan",
    "evaluate_view",
    "execute_view_plan",
    "join_order",
    "join_pairs",
    "join_physical",
    "lower",
    "prune_projections",
    "push_selections",
    "scan_sources",
    "view_plan",
]
