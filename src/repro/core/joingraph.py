"""The extended join graph and Need functions (Definitions 2-4).

Vertices are the base tables of a GPSJ view; there is a directed edge
``Ri -> Rj`` for every join condition ``Ri.b = Rj.a`` where ``a`` is the
key of ``Rj``.  A vertex is annotated ``k`` when a group-by attribute is
its key, otherwise ``g`` when it contributes group-by attributes at all
(Definition 2).  The paper assumes the graph is a tree with no
self-joins, which covers star and snowflake schemas; the constructor
enforces this.

``Need(Ri)`` is the minimal set of base tables ``Ri`` must join with so
that the tuples of ``V`` affected by a change to ``Ri`` can be
identified (Definition 3); ``Need0`` finds the group-by attributes that
form a combined key of ``V`` by depth-first traversal from the root
(Definition 4).  *Dependence* (Section 2.2) is the separate relation
that drives join reductions: ``Ri`` depends on ``Rj`` when they join on
``Rj``'s key, referential integrity holds from ``Ri`` to ``Rj``, and
``Rj`` has no exposed updates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.catalog.database import Database
from repro.core.view import ViewDefinition


class JoinGraphError(Exception):
    """Raised when a view's join structure falls outside the paper's class."""


class Annotation(enum.Enum):
    """Vertex annotations of the extended join graph (Definition 2)."""

    NONE = ""
    GROUP = "g"
    KEY = "k"


@dataclass(frozen=True)
class Vertex:
    """One base table in the extended join graph."""

    table: str
    annotation: Annotation
    parent: str | None
    children: tuple[str, ...]

    @property
    def is_root(self) -> bool:
        return self.parent is None


class ExtendedJoinGraph:
    """The extended join graph ``G(V)`` of a GPSJ view over a catalog."""

    def __init__(self, view: ViewDefinition, database: Database):
        self.view = view
        self._database = database
        self._validate_joins()
        parents, children = self._build_edges()
        self._vertices = {
            table: Vertex(
                table,
                self._annotate(table),
                parents.get(table),
                tuple(children.get(table, ())),
            )
            for table in view.tables
        }
        self._root = self._find_root()
        self._dependencies = self._build_dependencies()

    # ------------------------------------------------------------------
    # Construction and validation.
    # ------------------------------------------------------------------

    def _validate_joins(self) -> None:
        for join in self.view.joins:
            right = self._database.table(join.right_table)
            if right.key != join.right_attribute:
                raise JoinGraphError(
                    f"join {join} does not target the key of {join.right_table!r} "
                    f"(key is {right.key!r}); GPSJ views join on keys"
                )

    def _build_edges(self) -> tuple[dict[str, str], dict[str, list[str]]]:
        parents: dict[str, str] = {}
        children: dict[str, list[str]] = {}
        for join in self.view.joins:
            if join.right_table in parents:
                raise JoinGraphError(
                    f"{join.right_table!r} has two incoming edges; the extended "
                    "join graph must be a tree"
                )
            parents[join.right_table] = join.left_table
            children.setdefault(join.left_table, []).append(join.right_table)
        return parents, children

    def _annotate(self, table: str) -> Annotation:
        group_attributes = self.view.group_by_attributes(table)
        if not group_attributes:
            return Annotation.NONE
        key = self._database.table(table).key
        if key in group_attributes:
            return Annotation.KEY
        return Annotation.GROUP

    def _find_root(self) -> str:
        roots = [v.table for v in self._vertices.values() if v.is_root]
        if len(roots) != 1:
            raise JoinGraphError(
                f"extended join graph must be a tree with a single root; "
                f"found roots {roots!r}"
            )
        root = roots[0]
        reached: set[str] = set()
        stack = [root]
        while stack:
            table = stack.pop()
            if table in reached:
                raise JoinGraphError("cycle in extended join graph")
            reached.add(table)
            stack.extend(self._vertices[table].children)
        if reached != set(self.view.tables):
            missing = set(self.view.tables) - reached
            raise JoinGraphError(
                f"extended join graph is disconnected; unreachable: {missing!r}"
            )
        return root

    def _build_dependencies(self) -> dict[str, tuple[str, ...]]:
        """``Ri -> tables Ri depends on`` (Section 2.2)."""
        dependencies: dict[str, list[str]] = {t: [] for t in self.view.tables}
        for join in self.view.joins:
            referencing = self._database.table(join.left_table)
            referenced = self._database.table(join.right_table)
            constraint = referencing.reference_for(join.left_attribute)
            has_integrity = (
                constraint is not None
                and constraint.referenced == join.right_table
            )
            if has_integrity and not referenced.exposed_updates:
                dependencies[join.left_table].append(join.right_table)
        return {table: tuple(deps) for table, deps in dependencies.items()}

    # ------------------------------------------------------------------
    # Accessors.
    # ------------------------------------------------------------------

    @property
    def root(self) -> str:
        """The root table ``R0`` (the fact table in a star schema)."""
        return self._root

    @property
    def tables(self) -> tuple[str, ...]:
        return self.view.tables

    def vertex(self, table: str) -> Vertex:
        return self._vertices[table]

    def annotation(self, table: str) -> Annotation:
        return self._vertices[table].annotation

    def children(self, table: str) -> tuple[str, ...]:
        return self._vertices[table].children

    def parent(self, table: str) -> str | None:
        return self._vertices[table].parent

    def subtree(self, table: str) -> tuple[str, ...]:
        """All tables in the subtree rooted at ``table`` (inclusive)."""
        collected: list[str] = []
        stack = [table]
        while stack:
            current = stack.pop()
            collected.append(current)
            stack.extend(self._vertices[current].children)
        return tuple(collected)

    def depends_on(self, table: str) -> tuple[str, ...]:
        """Tables ``table`` directly depends on (join reduction targets)."""
        return self._dependencies[table]

    def transitively_depends_on(self, table: str) -> frozenset[str]:
        """All tables reachable from ``table`` via dependence edges."""
        reached: set[str] = set()
        stack = list(self._dependencies[table])
        while stack:
            current = stack.pop()
            if current in reached:
                continue
            reached.add(current)
            stack.extend(self._dependencies[current])
        return frozenset(reached)

    def transitively_depends_on_all(self, table: str) -> bool:
        """Whether ``table`` transitively depends on every other base table."""
        others = set(self.view.tables) - {table}
        return others <= self.transitively_depends_on(table)

    # ------------------------------------------------------------------
    # Need functions (Definitions 3 and 4).
    # ------------------------------------------------------------------

    def need(self, table: str) -> frozenset[str]:
        """``Need(Ri, G(V))`` per Definition 3."""
        vertex = self._vertices[table]
        if vertex.annotation is Annotation.KEY:
            return frozenset()
        if vertex.parent is not None and table != self._root:
            return frozenset({vertex.parent}) | self.need(vertex.parent)
        return self.need_zero(self._root)

    def need_zero(self, table: str) -> frozenset[str]:
        """``Need0(Ri, G(V))`` per Definition 4.

        Collects, below ``table``, the minimal set of tables whose
        group-by attributes form a combined key to ``V``: recursion stops
        at (and below) vertices annotated ``k`` because grouping on a key
        already pins every tuple of that subtree.
        """
        vertex = self._vertices[table]
        if vertex.annotation is Annotation.KEY:
            return frozenset()
        needed: set[str] = set()
        for child in vertex.children:
            if self._subtree_has_annotation(child):
                needed.add(child)
                needed |= self.need_zero(child)
        return frozenset(needed)

    def _subtree_has_annotation(self, table: str) -> bool:
        return any(
            self._vertices[t].annotation is not Annotation.NONE
            for t in self.subtree(table)
        )

    def needed_by(self, table: str) -> frozenset[str]:
        """The other tables whose Need set contains ``table``."""
        return frozenset(
            other
            for other in self.view.tables
            if other != table and table in self.need(other)
        )

    # ------------------------------------------------------------------
    # Rendering (Figure 2).
    # ------------------------------------------------------------------

    def render(self) -> str:
        """ASCII rendering of the annotated graph, as in Figure 2."""
        lines: list[str] = []

        def label(table: str) -> str:
            annotation = self._vertices[table].annotation
            if annotation is Annotation.NONE:
                return table
            return f"{table} [{annotation.value}]"

        def walk(table: str, prefix: str, tail: bool, top: bool) -> None:
            if top:
                lines.append(label(table))
            else:
                connector = "└── " if tail else "├── "
                lines.append(prefix + connector + label(table))
            children = self._vertices[table].children
            for index, child in enumerate(children):
                extension = "" if top else ("    " if tail else "│   ")
                walk(child, prefix + extension, index == len(children) - 1, False)

        walk(self._root, "", True, True)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.render()
