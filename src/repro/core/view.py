"""GPSJ view definitions: ``V = Π_A σ_S (R1 ⋈C1 R2 ⋈C2 ... ⋈Cn-1 Rn)``.

A GPSJ view (Section 2.1 of the paper) is a generalized projection — a
projection enhanced with aggregation and grouping — over a conjunctive
selection over key/foreign-key equijoins of base tables.  Join conditions
``Ri.b = Rj.a`` must target the key ``a`` of ``Rj``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.catalog.database import Database
from repro.engine.expressions import Column, Expression
from repro.engine.operators import (
    AggregateItem,
    GroupByItem,
    ProjectionItem,
    equijoin,
    generalized_project,
    select,
)
from repro.engine.relation import Relation


class ViewError(Exception):
    """Raised for malformed GPSJ view definitions."""


@dataclass(frozen=True)
class JoinCondition:
    """``left_table.left_attribute = right_table.right_attribute``.

    The right side must be the key of ``right_table``; the derivation
    layer validates this against the catalog.
    """

    left_table: str
    left_attribute: str
    right_table: str
    right_attribute: str

    @property
    def left_column(self) -> Column:
        return Column(self.left_attribute, self.left_table)

    @property
    def right_column(self) -> Column:
        return Column(self.right_attribute, self.right_table)

    def to_sql(self) -> str:
        return (
            f"{self.left_table}.{self.left_attribute} = "
            f"{self.right_table}.{self.right_attribute}"
        )

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.to_sql()


@dataclass(frozen=True)
class ViewDefinition:
    """An immutable GPSJ view.

    ``projection`` holds :class:`GroupByItem` and :class:`AggregateItem`
    entries whose columns are qualified by table name.  ``selection``
    holds only *local* conjuncts (each referencing a single table); join
    conditions live in ``joins``.  ``having`` is the paper's sketched
    future-work extension and is applied after aggregation.
    """

    name: str
    tables: tuple[str, ...]
    projection: tuple[ProjectionItem, ...]
    selection: tuple[Expression, ...] = ()
    joins: tuple[JoinCondition, ...] = ()
    having: Expression | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tables", tuple(self.tables))
        object.__setattr__(self, "projection", tuple(self.projection))
        object.__setattr__(self, "selection", tuple(self.selection))
        object.__setattr__(self, "joins", tuple(self.joins))
        self._validate_structure()

    def _validate_structure(self) -> None:
        if not self.tables:
            raise ViewError(f"view {self.name!r} references no tables")
        if len(set(self.tables)) != len(self.tables):
            raise ViewError(
                f"view {self.name!r} references a table twice (no self-joins)"
            )
        if not self.projection:
            raise ViewError(f"view {self.name!r} projects nothing")
        known = set(self.tables)
        for item in self.projection:
            for column in self._item_columns(item):
                self._check_column(column, known)
        for condition in self.selection:
            qualifiers = condition.qualifiers()
            for column in condition.columns():
                self._check_column(column, known)
            if len(qualifiers) > 1:
                raise ViewError(
                    f"selection condition {condition.to_sql()!r} spans several "
                    "tables; join conditions belong in `joins`"
                )
        for join in self.joins:
            if join.left_table not in known or join.right_table not in known:
                raise ViewError(f"join {join} references an unknown table")
            if join.left_table == join.right_table:
                raise ViewError(f"self-join {join} is not supported")
        names = [item.output_name for item in self.projection]
        if len(set(names)) != len(names):
            raise ViewError(f"duplicate output names in view {self.name!r}: {names}")

    @staticmethod
    def _item_columns(item: ProjectionItem) -> tuple[Column, ...]:
        if isinstance(item, GroupByItem):
            return (item.column,)
        if item.column is None:
            return ()
        return (item.column,)

    @staticmethod
    def _check_column(column: Column, known: set[str]) -> None:
        if column.qualifier is None:
            raise ViewError(
                f"column {column.name!r} must be qualified with its table"
            )
        if column.qualifier not in known:
            raise ViewError(
                f"column {column.qualified_name!r} references an unknown table"
            )

    # ------------------------------------------------------------------
    # Structure accessors used throughout the derivation algorithm.
    # ------------------------------------------------------------------

    @property
    def group_by_items(self) -> tuple[GroupByItem, ...]:
        return tuple(
            item for item in self.projection if isinstance(item, GroupByItem)
        )

    @property
    def aggregate_items(self) -> tuple[AggregateItem, ...]:
        return tuple(
            item for item in self.projection if isinstance(item, AggregateItem)
        )

    def group_by_attributes(self, table: str) -> tuple[str, ...]:
        """Names of ``table``'s attributes used as group-by attributes."""
        return tuple(
            item.column.name
            for item in self.group_by_items
            if item.column.qualifier == table
        )

    def aggregated_attributes(self, table: str) -> tuple[AggregateItem, ...]:
        """Aggregates over attributes of ``table`` (excluding COUNT(*))."""
        return tuple(
            item
            for item in self.aggregate_items
            if item.column is not None and item.column.qualifier == table
        )

    def preserved_attributes(self, table: str) -> tuple[str, ...]:
        """Attributes of ``table`` appearing in A — as regular attributes
        or inside aggregates (Section 2.1: "preserved in V")."""
        seen: dict[str, None] = {}
        for item in self.projection:
            for column in self._item_columns(item):
                if column.qualifier == table:
                    seen.setdefault(column.name)
        return tuple(seen)

    def join_attributes(self, table: str) -> tuple[str, ...]:
        """Attributes of ``table`` involved in join conditions."""
        seen: dict[str, None] = {}
        for join in self.joins:
            if join.left_table == table:
                seen.setdefault(join.left_attribute)
            if join.right_table == table:
                seen.setdefault(join.right_attribute)
        return tuple(seen)

    def local_conditions(self, table: str) -> tuple[Expression, ...]:
        """Selection conjuncts that reference only ``table``."""
        return tuple(
            condition
            for condition in self.selection
            if condition.qualifiers() == {table}
        )

    def joins_from(self, table: str) -> tuple[JoinCondition, ...]:
        """Join conditions whose foreign-key side is ``table``."""
        return tuple(j for j in self.joins if j.left_table == table)

    def joins_to(self, table: str) -> tuple[JoinCondition, ...]:
        """Join conditions whose key side is ``table``."""
        return tuple(j for j in self.joins if j.right_table == table)

    def with_name(self, name: str) -> "ViewDefinition":
        return replace(self, name=name)

    # ------------------------------------------------------------------
    # Evaluation over the live database (ground truth for every test).
    # ------------------------------------------------------------------

    def evaluate(self, database: Database) -> Relation:
        """Compute V over the base tables (recomputation semantics).

        A group exists only when at least one tuple contributes to it, so
        a view with no group-by attributes over an empty join result is
        empty — the convention the maintenance runtime also follows.

        Evaluation goes through the query-plan layer (canonical plan,
        selection pushdown, projection pruning, hash-join lowering);
        the result is bit-identical to :meth:`evaluate_eager`, the
        plain operator loop kept as the differential-test reference.
        """
        from repro.plan.planner import evaluate_view

        return evaluate_view(self, database)

    def evaluate_eager(self, database: Database) -> Relation:
        """Reference evaluation via direct eager operator calls (no
        planner).  The property suite asserts plan-based evaluation
        matches this row for row."""
        joined = self._join_tables(database)
        result = generalized_project(joined, self.projection, qualifier=self.name)
        if self.having is not None:
            result = select(result, self.having)
        return result

    def _join_tables(self, database: Database) -> Relation:
        remaining = list(self.tables)
        first = remaining.pop(0)
        current = self._reduced_table(database, first)
        placed = {first}
        while remaining:
            progressed = False
            for table in list(remaining):
                pairs = self._join_pairs(table, placed)
                if pairs is None:
                    continue
                right = self._reduced_table(database, table)
                current = equijoin(current, right, pairs)
                placed.add(table)
                remaining.remove(table)
                progressed = True
            if not progressed:
                # Disconnected tables: fall back to cross product semantics.
                table = remaining.pop(0)
                current = equijoin(
                    current, self._reduced_table(database, table), []
                )
                placed.add(table)
        return current

    def _join_pairs(
        self, table: str, placed: set[str]
    ) -> list[tuple[str, str]] | None:
        pairs = []
        for join in self.joins:
            if join.left_table == table and join.right_table in placed:
                pairs.append(
                    (
                        f"{join.right_table}.{join.right_attribute}",
                        f"{join.left_table}.{join.left_attribute}",
                    )
                )
            elif join.right_table == table and join.left_table in placed:
                pairs.append(
                    (
                        f"{join.left_table}.{join.left_attribute}",
                        f"{join.right_table}.{join.right_attribute}",
                    )
                )
        return pairs or None

    def _reduced_table(self, database: Database, table: str) -> Relation:
        relation = database.relation(table)
        for condition in self.local_conditions(table):
            relation = select(relation, condition)
        return relation

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------

    def to_sql(self) -> str:
        """Render as the CREATE VIEW statement style used in the paper."""
        select_list = ",\n       ".join(item.to_sql() for item in self.projection)
        lines = [
            f"CREATE VIEW {self.name} AS",
            f"SELECT {select_list}",
            f"FROM {', '.join(self.tables)}",
        ]
        where = [c.to_sql() for c in self.selection]
        where += [j.to_sql() for j in self.joins]
        if where:
            lines.append("WHERE " + "\n  AND ".join(where))
        group_by = [item.column.to_sql() for item in self.group_by_items]
        if group_by:
            lines.append("GROUP BY " + ", ".join(group_by))
        if self.having is not None:
            lines.append(f"HAVING {self.having.to_sql()}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.to_sql()


def make_view(
    name: str,
    tables: Sequence[str],
    projection: Iterable[ProjectionItem],
    selection: Iterable[Expression] = (),
    joins: Iterable[JoinCondition] = (),
    having: Expression | None = None,
) -> ViewDefinition:
    """Convenience constructor with plain iterables."""
    return ViewDefinition(
        name,
        tuple(tables),
        tuple(projection),
        tuple(selection),
        tuple(joins),
        having,
    )
