"""Algorithm 3.2: derivation of the minimal auxiliary-view set.

For a GPSJ view ``V`` over base tables ``R``, each auxiliary view is

``X_Ri = (Π_{A_Ri} σ_S Ri) ⋉C1 X_Rj1 ⋉C2 ... ⋉Cn X_Rjn``

— a local reduction and smart duplicate compression of ``Ri`` followed by
semijoins with the auxiliary views of the tables ``Ri`` depends on.  An
auxiliary view is *omitted* when ``Ri`` transitively depends on every
other base table, is in no other table's Need set, and none of its
attributes feed non-CSMAS aggregates (Section 3.3); Theorem 1 states the
resulting set is the unique minimal one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.catalog.database import Database
from repro.core.aggregates import is_csmas
from repro.core.compression import CompressionPlan, plan_compression
from repro.core.joingraph import ExtendedJoinGraph
from repro.engine.aggregates import AggregateFunction
from repro.core.view import JoinCondition, ViewDefinition, ViewError
from repro.engine.expressions import Expression, conjoin
from repro.engine.operators import (
    generalized_project,
    projection_schema,
    select,
    semijoin,
)
from repro.engine.relation import Relation
from repro.engine.schema import Schema


@dataclass(frozen=True)
class AuxiliaryView:
    """The definition (not the data) of one auxiliary view ``X_Ri``."""

    table: str
    name: str
    plan: CompressionPlan
    local_conditions: tuple[Expression, ...]
    reduced_by: tuple[JoinCondition, ...]
    base_schema: Schema

    @property
    def is_compressed(self) -> bool:
        return self.plan.is_compressed

    @property
    def count_column(self) -> str | None:
        """Qualified name of the COUNT(*) column, if compression added one."""
        if not self.plan.include_count:
            return None
        return f"{self.table}.{self.plan.count_alias}"

    def sum_column(self, attribute: str) -> str | None:
        """Qualified name of the folded SUM column for ``attribute``."""
        if attribute not in self.plan.folded_sums:
            return None
        return f"{self.table}.{self.plan.sum_alias(attribute)}"

    def extremum_column(self, attribute: str, func: "AggregateFunction") -> str | None:
        """Qualified name of a folded MIN/MAX column (append-only mode)."""
        if func is AggregateFunction.MIN and attribute in self.plan.folded_mins:
            return f"{self.table}.{self.plan.min_alias(attribute)}"
        if func is AggregateFunction.MAX and attribute in self.plan.folded_maxs:
            return f"{self.table}.{self.plan.max_alias(attribute)}"
        return None

    def output_schema(self) -> Schema:
        """Schema of the materialized view, qualified by the base table."""
        return projection_schema(
            self.plan.projection_items(), self.base_schema, qualifier=self.table
        )

    def compute(
        self,
        database: Database,
        aux_relations: Mapping[str, "Relation | AuxiliaryView"] | None = None,
        aux_set: "AuxiliaryViewSet | None" = None,
    ) -> Relation:
        """Materialize the defining expression from the live base tables.

        ``aux_relations`` supplies already-materialized dependency views
        for the semijoins; dependencies not present there are computed
        recursively from ``aux_set`` (falling back to the raw base table
        only when the dependency's definition is unknown).
        """
        relation = database.relation(self.table)
        if self.local_conditions:
            relation = select(relation, conjoin(self.local_conditions))
        for join in self.reduced_by:
            if aux_relations is not None and join.right_table in aux_relations:
                other = aux_relations[join.right_table]
            elif aux_set is not None and aux_set.has_view(join.right_table):
                other = aux_set.for_table(join.right_table).compute(
                    database, aux_relations, aux_set
                )
            else:
                other = database.relation(join.right_table)
            relation = semijoin(
                relation,
                other,
                [
                    (
                        f"{self.table}.{join.left_attribute}",
                        f"{join.right_table}.{join.right_attribute}",
                    )
                ],
            )
        return generalized_project(
            relation, self.plan.projection_items(), qualifier=self.table
        )

    def to_sql(self, aux_names: Mapping[str, str] | None = None) -> str:
        """Render as a CREATE VIEW in the paper's style (with IN subqueries)."""
        aux_names = aux_names or {}
        select_list = ", ".join(
            item.to_sql() for item in self.plan.projection_items()
        )
        lines = [
            f"CREATE VIEW {self.name} AS",
            f"SELECT {select_list}",
            f"FROM {self.table}",
        ]
        where = [c.to_sql() for c in self.local_conditions]
        for join in self.reduced_by:
            dep = aux_names.get(join.right_table, f"{join.right_table}dtl")
            where.append(
                f"{join.left_attribute} IN "
                f"(SELECT {join.right_attribute} FROM {dep})"
            )
        if where:
            lines.append("WHERE " + "\n  AND ".join(where))
        group_by = list(self.plan.pinned)
        if self.is_compressed and group_by:
            lines.append("GROUP BY " + ", ".join(group_by))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.to_sql()


@dataclass(frozen=True)
class AuxiliaryViewSet:
    """The derived set ``X`` plus the record of eliminated views."""

    view: ViewDefinition
    auxiliary: tuple[AuxiliaryView, ...]
    eliminated: Mapping[str, str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "eliminated", dict(self.eliminated))

    @property
    def tables(self) -> tuple[str, ...]:
        return tuple(aux.table for aux in self.auxiliary)

    def for_table(self, table: str) -> AuxiliaryView:
        for aux in self.auxiliary:
            if aux.table == table:
                return aux
        raise KeyError(
            f"no auxiliary view for {table!r} "
            f"(eliminated: {self.eliminated.get(table, 'not a view table')})"
        )

    def has_view(self, table: str) -> bool:
        return any(aux.table == table for aux in self.auxiliary)

    def aux_names(self) -> dict[str, str]:
        return {aux.table: aux.name for aux in self.auxiliary}

    def materialize(self, database: Database) -> dict[str, Relation]:
        """Compute every auxiliary view's contents in dependency order."""
        relations: dict[str, Relation] = {}
        remaining = list(self.auxiliary)
        while remaining:
            progressed = False
            for aux in list(remaining):
                ready = all(
                    join.right_table in relations
                    or not self.has_view(join.right_table)
                    for join in aux.reduced_by
                )
                if ready:
                    relations[aux.table] = aux.compute(database, relations, self)
                    remaining.remove(aux)
                    progressed = True
            if not progressed:
                raise ViewError(
                    "cyclic dependencies among auxiliary views "
                    f"{[aux.table for aux in remaining]!r}"
                )
        return relations

    def to_sql(self) -> str:
        names = self.aux_names()
        return "\n\n".join(aux.to_sql(names) for aux in self.auxiliary)

    def __iter__(self):
        return iter(self.auxiliary)


def derive_auxiliary_views(
    view: ViewDefinition,
    database: Database,
    graph: ExtendedJoinGraph | None = None,
    append_only: bool = False,
    allow_elimination: bool = True,
) -> AuxiliaryViewSet:
    """Run Algorithm 3.2 for ``view`` against ``database``'s catalog.

    ``append_only`` derives auxiliary views for old detail data under
    the paper's Section 4 relaxation: only insertions are expected, so
    MIN/MAX count as completely self-maintainable and fold into the
    compressed views.  ``allow_elimination=False`` materializes every
    table's auxiliary view even when Section 3.3 would omit it (useful
    when the views serve as reconstruction sources, e.g. shared detail).
    """
    graph = graph or ExtendedJoinGraph(view, database)
    auxiliary: list[AuxiliaryView] = []
    eliminated: dict[str, str] = {}
    for table in view.tables:
        reason = (
            retention_reason(view, graph, table, append_only)
            if allow_elimination
            else "elimination disabled by caller"
        )
        if reason is None:
            eliminated[table] = _elimination_summary(view, graph, table)
            continue
        auxiliary.append(
            _build_auxiliary_view(view, database, graph, table, append_only)
        )
    return AuxiliaryViewSet(view, tuple(auxiliary), eliminated)


def retention_reason(
    view: ViewDefinition,
    graph: ExtendedJoinGraph,
    table: str,
    append_only: bool = False,
) -> str | None:
    """Why ``X_table`` must be materialized — ``None`` when it is omittable.

    Implements the three conditions of Algorithm 3.2 step 2 and returns
    the first failing one as a human-readable reason.
    """
    if not graph.transitively_depends_on_all(table):
        missing = (
            set(view.tables) - {table} - set(graph.transitively_depends_on(table))
        )
        return (
            f"{table} does not transitively depend on {sorted(missing)!r}"
        )
    needed_by = graph.needed_by(table)
    if needed_by:
        return f"{table} is in the Need set of {sorted(needed_by)!r}"
    non_csmas = [
        item.to_sql()
        for item in view.aggregated_attributes(table)
        if not is_csmas(item, append_only)
    ]
    if non_csmas:
        return f"attributes of {table} feed non-CSMAS aggregates {non_csmas!r}"
    return None


def _elimination_summary(
    view: ViewDefinition, graph: ExtendedJoinGraph, table: str
) -> str:
    return (
        f"{table} transitively depends on all other base tables, is in no "
        "Need set, and feeds no non-CSMAS aggregate"
    )


def _build_auxiliary_view(
    view: ViewDefinition,
    database: Database,
    graph: ExtendedJoinGraph,
    table: str,
    append_only: bool = False,
) -> AuxiliaryView:
    base = database.table(table)
    plan = plan_compression(view, table, base.key, append_only=append_only)
    dependencies = set(graph.depends_on(table))
    reduced_by = tuple(
        join for join in view.joins_from(table) if join.right_table in dependencies
    )
    return AuxiliaryView(
        table=table,
        name=f"{table}dtl",
        plan=plan,
        local_conditions=view.local_conditions(table),
        reduced_by=reduced_by,
        base_schema=base.schema,
    )
