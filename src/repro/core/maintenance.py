"""Incremental self-maintenance of ``{V} ∪ X`` (Sections 2.2 and 3.2).

The :class:`SelfMaintainer` materializes the auxiliary views and the
summary view once, at initialization, and from then on updates both from
source deltas **without any base-table access**:

* Deltas are *locally reduced* (local selection conditions) and
  *join-reduced* (semijoined with the auxiliary views of the tables the
  changed table depends on).
* The surviving delta rows are joined with the other auxiliary views via
  the same compiled row program that full reconstruction uses, yielding
  per-group contributions; CSMAS aggregates are updated incrementally
  with the ``f(a * cnt0)`` duplicate correction.
* Non-CSMAS aggregates (MIN/MAX, DISTINCT) are updated incrementally
  where Table 1 allows (insertions) and recomputed *from the auxiliary
  views* — never from base tables — where it does not (Section 3.2's
  maintenance discussion).  Aggregates over tables pinned by a key
  group-by are constant within each group and never need recomputation,
  which is what makes root-elimination safe in their presence.

Transactions are processed with deletions flowing root-to-leaves and
insertions leaves-to-root, so every semijoin sees the auxiliary state
the paper's reduction arguments assume.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter

from repro.backends.base import Backend, make_backend
from repro.catalog.database import Database
from repro.core.derivation import (
    AuxiliaryView,
    AuxiliaryViewSet,
    derive_auxiliary_views,
)
from repro.core.joingraph import Annotation, ExtendedJoinGraph
from repro.core.rewrite import (
    AggregateCategory,
    GroupAccumulator,
    Reconstructor,
)
from repro.core.view import ViewDefinition
from repro.engine.deltas import Transaction
from repro.engine.expressions import conjoin
from repro.engine.operators import AggregateItem, select
from repro.engine.relation import Relation
from repro.engine.rowindex import make_tuple_extractor
from repro.engine.schema import Schema
from repro.engine.undolog import UndoLog
from repro.obs.trace import Tracer
from repro.perf import (
    PLANNER_QERROR,
    TXN_DELTA_ROWS,
    TXN_LATENCY_MS,
    TXN_ROWS_PER_SEC,
    PerfStats,
)
from repro.plan.cost import (
    PlannerMode,
    StatsCatalog,
    make_planner_mode,
    q_error,
    replan_ratio_from_env,
)
from repro.plan.executor import ExecutionContext
from repro.plan.maintenance import (
    DeltaPlans,
    MaintenancePlanner,
    transfer_runtime_stats,
)
from repro.plan.planner import PlanPolicy


class SelfMaintenanceError(Exception):
    """Raised when a delta is inconsistent with the maintained state."""


class AuxMaterialization:
    """Live contents of one auxiliary view.

    With ``use_indexes`` (the default) every probe — join-reduction key
    lookups and ``rows_matching`` restrictions — is served from hash
    indexes that are maintained *incrementally* as deltas fold in, so
    per-transaction cost follows the delta, not the auxiliary view.
    ``use_indexes=False`` keeps the seed's invalidate-and-rebuild key
    cache; the hot-path benchmark uses it as the "before" measurement.
    """

    def __init__(self, aux: AuxiliaryView, use_indexes: bool = True):
        self.aux = aux
        self.schema = aux.output_schema()
        self.use_indexes = use_indexes
        self._key_cache: dict[str, set] = {}  # legacy (use_indexes=False)

    def load(self, relation: Relation) -> None:
        raise NotImplementedError

    def relation(self) -> Relation:
        raise NotImplementedError

    def apply(self, base_rows: list[tuple], sign: int) -> None:
        """Fold reduced base-table rows in (+1) or out (-1)."""
        raise NotImplementedError

    def begin_undo(self, log: UndoLog) -> None:
        """Enter a transaction scope: every mutation until
        :meth:`end_undo` records its inverse into ``log``."""
        raise NotImplementedError

    def end_undo(self) -> None:
        raise NotImplementedError

    def key_values(self, column: str):
        """Distinct values of ``column`` (a set-like, O(1)-membership view).

        Join reductions probe the same (key) column on every delta of a
        referencing table; the maintained index makes the probe O(1) with
        no rebuild ever.  In legacy mode the set is rebuilt whenever the
        materialization changed since the last probe.
        """
        if self.use_indexes:
            return self._live_key_view(column)
        cached = self._key_cache.get(column)
        if cached is None:
            cached = self._key_cache[column] = set(
                self.relation().column(column)
            )
        return cached

    def _live_key_view(self, column: str):
        """Distinct values of ``column`` as a live view over the index."""
        raise NotImplementedError

    def _invalidate_keys(self) -> None:
        self._key_cache.clear()

    def rows_matching(self, column: str, values: set) -> list[tuple]:
        """Output rows whose ``column`` value is in ``values``.

        Served from an incrementally-maintained hash index, so probing a
        large compressed root view with a handful of dimension keys does
        not pay a full scan (or a full hash build in the join).
        """
        raise NotImplementedError

    def size_bytes(self) -> int:
        return self.relation().size_bytes()

    def __len__(self) -> int:
        return len(self.relation())


class ProjectionMaterialization(AuxMaterialization):
    """A degenerate (PSJ) auxiliary view: raw projected rows, key retained.

    Probes are served by :class:`~repro.engine.rowindex.RowIndex`
    instances registered on the backing relation, so every
    insert/delete keeps them in step without rebuilds.
    """

    def __init__(self, aux: AuxiliaryView, use_indexes: bool = True):
        super().__init__(aux, use_indexes)
        self._project = make_tuple_extractor(
            tuple(aux.base_schema.index_of(name) for name in aux.plan.pinned)
        )
        self._relation = Relation(self.schema)

    def load(self, relation: Relation) -> None:
        if relation.schema != self.schema:
            raise SelfMaintenanceError(
                f"loaded relation does not match {self.aux.name} schema"
            )
        self._relation = relation.copy()
        self._invalidate_keys()

    def relation(self) -> Relation:
        return self._relation

    def apply(self, base_rows: list[tuple], sign: int) -> None:
        projected = list(map(self._project, base_rows))
        if sign > 0:
            self._relation.insert_all(projected)
        else:
            self._relation.delete_all(projected)
        self._invalidate_keys()

    def begin_undo(self, log: UndoLog) -> None:
        self._relation.begin_undo(log)
        # Legacy-mode key caches are derived state; a rollback simply
        # drops them and the next probe rebuilds from the restored bag.
        log.record(self._invalidate_keys)

    def end_undo(self) -> None:
        self._relation.end_undo()

    def _live_key_view(self, column: str):
        return self._relation.index_on(column).keys()

    def rows_matching(self, column: str, values: set) -> list[tuple]:
        return self._relation.index_on(column).rows_matching(values)


class CompressedMaterialization(AuxMaterialization):
    """A duplicate-compressed auxiliary view: grouped sums plus COUNT(*).

    Kept as a dictionary from pinned-attribute values to running
    ``[sum..., count]`` vectors; groups vanish when their count drops to
    zero, so the materialization is always exactly ``Π_{A_Ri}`` of the
    reduced detail data.
    """

    def __init__(self, aux: AuxiliaryView, use_indexes: bool = True):
        super().__init__(aux, use_indexes)
        plan = aux.plan
        self._pin_indexes = [
            aux.base_schema.index_of(name) for name in plan.pinned
        ]
        self._sum_indexes = [
            aux.base_schema.index_of(name) for name in plan.folded_sums
        ]
        self._min_indexes = [
            aux.base_schema.index_of(name) for name in plan.folded_mins
        ]
        self._max_indexes = [
            aux.base_schema.index_of(name) for name in plan.folded_maxs
        ]
        self._groups: dict[tuple, list] = {}
        self._cache: Relation | None = None
        self._hash_indexes: dict[str, dict] = {}
        self._pin_slots = {
            name: slot for slot, name in enumerate(plan.pinned)
        }
        self._undo: UndoLog | None = None
        self._undo_saved: set[tuple] = set()

    def load(self, relation: Relation) -> None:
        if relation.schema != self.schema:
            raise SelfMaintenanceError(
                f"loaded relation does not match {self.aux.name} schema"
            )
        width = len(self.aux.plan.pinned)
        self._groups = {
            row[:width]: list(row[width:]) for row in relation
        }
        self._cache = None
        self._invalidate_keys()
        self._hash_indexes.clear()

    def relation(self) -> Relation:
        if self._cache is None:
            rows = [
                key + tuple(totals) for key, totals in self._groups.items()
            ]
            self._cache = Relation(self.schema, rows, validate=False)
        return self._cache

    def apply(self, base_rows: list[tuple], sign: int) -> None:
        if not base_rows:
            return
        if sign < 0 and (self._min_indexes or self._max_indexes):
            raise SelfMaintenanceError(
                f"{self.aux.name} holds folded MIN/MAX (append-only mode) "
                "and cannot absorb deletions"
            )
        self._cache = None
        self._invalidate_keys()
        n_sums = len(self._sum_indexes)
        n_extrema = len(self._min_indexes) + len(self._max_indexes)
        count_slot = n_sums + n_extrema
        for row in base_rows:
            key = tuple(row[i] for i in self._pin_indexes)
            totals = self._groups.get(key)
            if self._undo is not None and key not in self._undo_saved:
                self._undo_saved.add(key)
                snapshot = None if totals is None else list(totals)
                self._undo.record(
                    lambda k=key, t=snapshot: self._restore_group(k, t),
                    rows=1,
                )
            if totals is None:
                if sign < 0:
                    raise SelfMaintenanceError(
                        f"{self.aux.name}: deletion from absent group {key!r}"
                    )
                totals = self._groups[key] = (
                    [0] * n_sums
                    + [row[i] for i in self._min_indexes]
                    + [row[i] for i in self._max_indexes]
                    + [0]
                )
            for slot, index in enumerate(self._sum_indexes):
                totals[slot] += sign * row[index]
            slot = n_sums
            for index in self._min_indexes:
                totals[slot] = min(totals[slot], row[index])
                slot += 1
            for index in self._max_indexes:
                totals[slot] = max(totals[slot], row[index])
                slot += 1
            if totals[count_slot] == 0 and sign > 0:
                self._index_group(key, add=True)
            totals[count_slot] += sign
            if totals[count_slot] == 0:
                del self._groups[key]
                self._index_group(key, add=False)
            elif totals[count_slot] < 0:
                raise SelfMaintenanceError(
                    f"{self.aux.name}: negative count in group {key!r}"
                )

    def begin_undo(self, log: UndoLog) -> None:
        self._undo = log
        self._undo_saved = set()
        # Recorded first, so LIFO runs it after every group restore:
        # derived state (relation cache, group-key hash indexes, legacy
        # key cache) is dropped wholesale and rebuilt lazily on next use.
        log.record(self._drop_derived_state)

    def end_undo(self) -> None:
        self._undo = None
        self._undo_saved = set()

    def _restore_group(self, key: tuple, totals: list | None) -> None:
        """Inverse of this transaction's mutations of one group."""
        if totals is None:
            self._groups.pop(key, None)
        else:
            self._groups[key] = totals

    def _drop_derived_state(self) -> None:
        self._cache = None
        self._hash_indexes.clear()
        self._invalidate_keys()

    def _index_group(self, key: tuple, add: bool) -> None:
        for column, index in self._hash_indexes.items():
            value = key[self._pin_slots[column.split(".", 1)[1]]]
            if add:
                index.setdefault(value, set()).add(key)
            else:
                bucket = index.get(value)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del index[value]

    def _group_index(self, column: str) -> dict:
        """The ``value -> {group keys}`` index on ``column``, built once
        and then maintained by :meth:`_index_group` as groups come and go."""
        index = self._hash_indexes.get(column)
        if index is None:
            slot = self._pin_slots.get(column.split(".", 1)[1])
            if slot is None:
                raise SelfMaintenanceError(
                    f"{self.aux.name} has no pinned column {column!r} to index"
                )
            index = self._hash_indexes[column] = {}
            for key in self._groups:
                index.setdefault(key[slot], set()).add(key)
        return index

    def _live_key_view(self, column: str):
        return self._group_index(column).keys()

    def rows_matching(self, column: str, values: set) -> list[tuple]:
        index = self._group_index(column)
        rows: list[tuple] = []
        for value in values:
            for key in index.get(value, ()):
                rows.append(key + tuple(self._groups[key]))
        return rows


def make_materialization(
    aux: AuxiliaryView, use_indexes: bool = True
) -> AuxMaterialization:
    if aux.is_compressed:
        return CompressedMaterialization(aux, use_indexes)
    return ProjectionMaterialization(aux, use_indexes)


def processing_order(graph: ExtendedJoinGraph) -> tuple[str, ...]:
    """Tables root-to-leaves (deletion order; reversed for insertions).

    Module-level so execution backends (the sharded backend's worker
    processes) can rebuild the same order from the same join graph."""
    order: list[str] = []
    stack = [graph.root]
    while stack:
        table = stack.pop()
        order.append(table)
        stack.extend(reversed(graph.children(table)))
    return tuple(order)


def _delta_rows(transaction: Transaction) -> int:
    return sum(
        len(delta.inserted) + len(delta.deleted) for delta in transaction
    )


#: Shared no-op span: ``nullcontext`` is stateless and re-entrant, so
#: every untraced phase reuses one instance instead of allocating one
#: per phase per transaction.
_NULL_SPAN = nullcontext(None)


def _phase_span(trace, name: str, **attrs):
    """A phase span on ``trace``, or a no-op context yielding None when
    the transaction is untraced — call sites stay branch-free."""
    if trace is None:
        return _NULL_SPAN
    return trace.span(name, kind="phase", **attrs)


@dataclass(slots=True)
class GroupState:
    """Maintained state of one group of ``V``."""

    count: int
    sums: dict[int, float] = field(default_factory=dict)
    values: dict[int, object] = field(default_factory=dict)


@dataclass(frozen=True)
class _TableInfo:
    """Precompiled delta-processing plan for one base table."""

    table: str
    schema: Schema
    local_predicate: object  # compiled predicate or None
    reductions: tuple[tuple[int, str, str], ...]  # (fk index, dep table, dep key)


@dataclass(frozen=True)
class _RewriteInfo:
    """How an update of one dimension row rewrites groups of ``V`` when
    the root auxiliary view was eliminated."""

    table: str
    key_index: int
    anchor: str                      # nearest key-annotated ancestor
    anchor_position: int             # its key's slot in the group key
    path: tuple[tuple[str, str, str], ...]  # upward (parent, fk, key) hops
    group_positions: tuple[tuple[int, int], ...]   # (key slot, attr index)
    aggregate_rewrites: tuple[tuple[int, int], ...]  # (item index, attr index)


class SelfMaintainer:
    """Maintains ``V`` and ``X`` from deltas, never touching base tables."""

    def __init__(
        self,
        view: ViewDefinition,
        database: Database,
        aux_set: AuxiliaryViewSet | None = None,
        graph: ExtendedJoinGraph | None = None,
        append_only: bool = False,
        initialize: bool = True,
        hotpath: bool = True,
        tracer: Tracer | None = None,
        backend: Backend | str | None = None,
        planner: "PlannerMode | str | None" = None,
        events: "EventLog | None" = None,
    ):
        """``append_only`` maintains the view as *old detail data*
        (Section 4): only insertions are accepted, in exchange for
        folding MIN/MAX into the compressed auxiliary views.
        ``initialize=False`` skips the one-time base-table load; the
        caller must then populate the maintainer via
        :meth:`load_state` (warehouse restart from a checkpoint).
        ``hotpath`` selects the planner policy: ``True`` plans with the
        maintained hash indexes, delta coalescing, and full join-tree
        restriction (:attr:`PlanPolicy.INDEXED`); ``False`` plans the
        seed maintenance pipeline (:attr:`PlanPolicy.NAIVE` — rebuilt
        key caches, ancestor-only restriction, no coalescing, no
        cross-view sharing).  Results are identical either way — the
        policy exists so the hot-path benchmark can measure the gap.
        ``tracer`` optionally installs a :class:`~repro.obs.trace.Tracer`
        that samples transactions into structured span trees (root span
        per :meth:`apply`, phase spans, nested plan-node spans); with the
        default ``None`` the hot path pays no tracing cost at all.
        ``backend`` selects the execution backend holding ``X`` and
        running the compiled plans: a :class:`~repro.backends.Backend`
        instance, a name (``"memory"``, ``"sqlite"``, ``"sqlite:<path>"``),
        or ``None`` to consult the ``REPRO_BACKEND`` environment
        variable (default memory).
        ``planner`` selects how delta plans are chosen: ``"cost"``
        (the default — join order, probe direction, and restriction
        decided per compile from live cardinality statistics, with
        adaptive re-planning on misestimates) or ``"static"`` (the
        historical deterministic policy); ``None`` consults
        ``REPRO_PLANNER``.  The ``NAIVE`` policy always plans
        statically — without maintained indexes there are no free
        statistics to plan from.
        ``events`` optionally attaches a structured
        :class:`~repro.obs.log.EventLog`: the maintainer narrates
        transaction begin/commit/rollback and planner re-plans into it,
        correlated with the active trace when one exists."""
        self.view = view
        self.append_only = append_only
        self.backend = make_backend(backend)
        self.graph = graph or ExtendedJoinGraph(view, database)
        self.aux_set = aux_set or derive_auxiliary_views(
            view, database, self.graph, append_only=append_only
        )
        self.reconstructor = Reconstructor(view, self.aux_set, database)
        self.perf = PerfStats()
        self.tracer = tracer
        self.events = events
        self.policy = PlanPolicy.INDEXED if hotpath else PlanPolicy.NAIVE
        mode = make_planner_mode(planner)
        if self.policy is not PlanPolicy.INDEXED:
            mode = PlannerMode.STATIC
        self.planner_mode = mode
        self._replan_ratio = replan_ratio_from_env()
        self.backend.prepare_view(
            view,
            database,
            self.graph,
            self.aux_set,
            namespace=view.name,
            append_only=append_only,
            hotpath=hotpath,
        )
        self._materializations: dict[str, AuxMaterialization] = {
            aux.table: self.backend.make_materialization(
                aux, use_indexes=hotpath, namespace=view.name
            )
            for aux in self.aux_set
        }
        self._eliminated = frozenset(self.aux_set.eliminated)
        self._root = self.graph.root
        self._order = self._processing_order()
        self._tables = {
            table: self._table_info(view, database, table)
            for table in view.tables
        }
        self._stats = StatsCatalog(self._materializations)
        self._planner = MaintenancePlanner(
            view,
            database,
            self.graph,
            self.aux_set,
            self.reconstructor,
            self.policy,
            self._order,
            mode=self.planner_mode,
            catalog=self._stats,
        )
        self._delta_plans: dict[tuple[str, int], DeltaPlans] = {}
        self._retired_plans: dict[tuple[str, int], DeltaPlans] = {}
        self._constant_tables = self._group_constant_tables()
        self._varying_items = frozenset(
            index
            for index, category in self.reconstructor.categories.items()
            if category in (AggregateCategory.EXTREMUM, AggregateCategory.DISTINCT)
            and self._item_table(index) not in self._constant_tables
        )
        self._constant_items = frozenset(
            index
            for index, category in self.reconstructor.categories.items()
            if category in (AggregateCategory.EXTREMUM, AggregateCategory.DISTINCT)
            and index not in self._varying_items
        )
        if (
            self._varying_items
            and self._root in self._eliminated
            and not append_only
        ):
            raise SelfMaintenanceError(
                "internal invariant violated: root eliminated with varying "
                "non-CSMAS aggregates present"
            )
        self._rewrite_info = self._build_rewrite_info(database)
        self._groups: dict[tuple, GroupState] = {}
        self._undo: UndoLog | None = None
        self._undo_saved_groups: set[tuple] = set()
        self._group_saves: list[tuple[tuple, tuple | None]] = []
        if initialize:
            self._initialize(database)

    # ------------------------------------------------------------------
    # Setup.
    # ------------------------------------------------------------------

    def _processing_order(self) -> tuple[str, ...]:
        return processing_order(self.graph)

    def _table_info(
        self, view: ViewDefinition, database: Database, table: str
    ) -> _TableInfo:
        schema = database.table(table).schema
        conditions = view.local_conditions(table)
        predicate = (
            conjoin(conditions).compile(schema) if conditions else None
        )
        reductions = []
        if table not in self._eliminated:
            for join in self.aux_set.for_table(table).reduced_by:
                reductions.append(
                    (
                        schema.index_of(join.left_attribute),
                        join.right_table,
                        f"{join.right_table}.{join.right_attribute}",
                    )
                )
        else:
            for join in view.joins_from(table):
                reductions.append(
                    (
                        schema.index_of(join.left_attribute),
                        join.right_table,
                        f"{join.right_table}.{join.right_attribute}",
                    )
                )
        return _TableInfo(table, schema, predicate, tuple(reductions))

    def _group_constant_tables(self) -> frozenset[str]:
        """Tables whose attributes are constant within every group of V:
        every table in the subtree of a key-annotated vertex."""
        constant: set[str] = set()
        for table in self.view.tables:
            if self.graph.annotation(table) is Annotation.KEY:
                constant.update(self.graph.subtree(table))
        return frozenset(constant)

    def _item_table(self, index: int) -> str:
        item = self.view.projection[index]
        if not isinstance(item, AggregateItem) or item.column is None:
            return self._root
        return item.column.qualifier

    def _build_rewrite_info(
        self, database: Database
    ) -> dict[str, "_RewriteInfo"]:
        """Precompute, for each contributing dimension table, how a
        delete+insert of one of its rows (an update) rewrites the groups
        of ``V`` when the root auxiliary view was eliminated.

        Elimination guarantees every contributing dimension lies in the
        subtree of a key-annotated vertex (otherwise the root would be in
        its Need set), so each affected group is pinned by that anchor's
        key in the group key and can be rewritten in place — exactly the
        "Need(Ri) identifies the affected view tuples" argument of
        Section 3.3.
        """
        if self._root not in self._eliminated:
            return {}
        group_items = [
            (position, item)
            for position, item in enumerate(self.view.group_by_items)
        ]
        info: dict[str, _RewriteInfo] = {}
        for table in self.view.tables:
            if table == self._root:
                continue
            schema = database.table(table).schema
            group_positions = tuple(
                (position, schema.index_of(item.column.name))
                for position, item in group_items
                if item.column.qualifier == table
            )
            aggregate_rewrites = tuple(
                (index, schema.index_of(self.view.projection[index].column.name))
                for index in self.reconstructor.categories
                if self._item_table(index) == table
            )
            if not group_positions and not aggregate_rewrites:
                continue
            anchor, path = self._anchor_path(table, database)
            anchor_position = next(
                position
                for position, item in group_items
                if item.column.qualifier == anchor
                and item.column.name == database.table(anchor).key
            )
            info[table] = _RewriteInfo(
                table=table,
                key_index=database.table(table).key_index(),
                anchor=anchor,
                anchor_position=anchor_position,
                path=path,
                group_positions=group_positions,
                aggregate_rewrites=aggregate_rewrites,
            )
        return info

    def _anchor_path(
        self, table: str, database: Database
    ) -> tuple[str, tuple[tuple[str, str, str], ...]]:
        """The nearest key-annotated ancestor of ``table`` (inclusive) and
        the chain of (parent table, qualified foreign key, qualified
        parent key) hops walking *upward* from ``table`` to that anchor."""
        chain: list[tuple[str, str, str]] = []
        current = table
        while True:
            if self.graph.annotation(current) is Annotation.KEY:
                return current, tuple(chain)
            parent = self.graph.parent(current)
            if parent is None or parent == self._root:
                raise SelfMaintenanceError(
                    "internal invariant violated: contributing table "
                    f"{table!r} has no key-annotated anchor although the "
                    "root auxiliary view was eliminated"
                )
            join = next(
                j for j in self.view.joins_from(parent)
                if j.right_table == current
            )
            chain.append(
                (
                    parent,
                    f"{parent}.{join.left_attribute}",
                    f"{parent}.{database.table(parent).key}",
                )
            )
            current = parent

    def _initialize(self, database: Database) -> None:
        """One-time materialization from the live base tables."""
        relations: dict[str, Relation] = {}
        for table in reversed(self._order):  # leaves first: deps available
            if table in self._eliminated:
                continue
            aux = self.aux_set.for_table(table)
            computed = aux.compute(database, relations)
            self._materializations[table].load(computed)
            relations[table] = self._materializations[table].relation()
        mapping = self._current_relations()
        for table in self._eliminated:
            relation = database.relation(table)
            conditions = self.view.local_conditions(table)
            if conditions:
                relation = select(relation, conjoin(conditions))
            mapping[table] = relation
        for key, acc in self.reconstructor.accumulate(mapping).items():
            if acc.multiplicity > 0:
                self._groups[key] = self._state_from_accumulator(acc)

    def _state_from_accumulator(self, acc: GroupAccumulator) -> GroupState:
        values: dict[int, object] = {}
        for index, value in acc.extrema.items():
            values[index] = value
        for index, collected in acc.distincts.items():
            item = self.view.projection[index]
            values[index] = self.reconstructor.finalize_distinct(item, collected)
        return GroupState(acc.multiplicity, dict(acc.sums), values)

    # ------------------------------------------------------------------
    # Accessors.
    # ------------------------------------------------------------------

    @property
    def eliminated_tables(self) -> frozenset[str]:
        return self._eliminated

    @property
    def in_transaction(self) -> bool:
        """Whether an :meth:`apply` is currently mutating state.  Reads
        taken while this is true (e.g. from a checkpoint daemon) may
        observe a partially-applied transaction."""
        return self._undo is not None

    def aux_relation(self, table: str) -> Relation:
        return self._materializations[table].relation()

    def aux_relations(self) -> dict[str, Relation]:
        return self._current_relations()

    def _current_relations(self) -> dict[str, Relation]:
        return {
            table: materialization.relation()
            for table, materialization in self._materializations.items()
        }

    def detail_size_bytes(self) -> int:
        """Total current-detail storage under the paper's size model."""
        return sum(m.size_bytes() for m in self._materializations.values())

    def physical_detail_size_bytes(self) -> int | None:
        """Bytes the backend's storage engine actually uses for ``X``
        (e.g. SQLite page counts via ``dbstat``); None when the backend
        has no physical measure beyond the paper's model."""
        return self.backend.physical_detail_size_bytes(
            self._materializations.values()
        )

    def current_view(self) -> Relation:
        """The maintained summary table ``V``."""
        rows = [
            self._state_row(key, state) for key, state in self._groups.items()
        ]
        result = Relation(self.reconstructor.output_schema, rows, validate=False)
        if self.view.having is not None:
            result = select(result, self.view.having)
        return result

    def summary_row(self, key: tuple) -> tuple | None:
        """The current summary row for one group key, or ``None`` when
        the group is absent (deleted or never created).  HAVING is *not*
        applied — this is the raw maintained group, the unit the serving
        layer's version patches carry (its snapshots apply HAVING at
        read time, like :meth:`current_view` does)."""
        state = self._groups.get(key)
        if state is None:
            return None
        return self._state_row(key, state)

    def group_rows(self) -> dict[tuple, tuple]:
        """Every maintained group as ``{group key: summary row}`` (no
        HAVING) — the full-state seed for a versioned snapshot store."""
        return {
            key: self._state_row(key, state)
            for key, state in self._groups.items()
        }

    def _state_row(self, key: tuple, state: GroupState) -> tuple:
        out: list[object] = []
        key_iter = iter(key)
        categories = self.reconstructor.categories
        for index, item in enumerate(self.view.projection):
            if not isinstance(item, AggregateItem):
                out.append(next(key_iter))
                continue
            category = categories[index]
            if category is AggregateCategory.COUNT:
                out.append(state.count)
            elif category is AggregateCategory.SUM:
                out.append(state.sums[index])
            elif category is AggregateCategory.AVG:
                out.append(state.sums[index] / state.count)
            else:
                out.append(state.values[index])
        return tuple(out)

    # ------------------------------------------------------------------
    # Delta processing.
    # ------------------------------------------------------------------

    def apply(
        self,
        transaction: Transaction,
        undo: UndoLog | None = None,
        shared: dict | None = None,
    ) -> None:
        """Maintain ``V`` and ``X`` under one source transaction, atomically.

        Validation that needs no mutation (schema checks on every delta
        row, the append-only constraint) runs first; every mutation after
        that records its inverse in an undo log, and any exception rolls
        all auxiliary views, their indexes, cached derived state, and the
        summary groups back to the pre-transaction state before
        re-raising — partial application would be unrecoverable, since
        the sealed sources cannot re-derive ``{V} ∪ X``.

        When ``undo`` is supplied, the inverse operations are handed to
        the caller on success instead of being discarded, so a
        coordinator (:meth:`repro.warehouse.warehouse.Warehouse.apply`,
        a deferred refresh loop) can roll this transaction back after
        a *later* participant fails.  On failure this maintainer always
        rolls its own mutations back before re-raising; nothing is
        appended to ``undo`` in that case.

        ``shared`` is an optional per-transaction cache of delta-only
        subplan results, keyed by logical plan node.  A warehouse passes
        one dict to every maintainer it drives for a transaction, so
        structurally identical subplans (the coalesced, locally-reduced
        delta of a table two views both read) are computed once.  Only
        the ``INDEXED`` policy shares: naive maintainers skip
        coalescing, so their delta bindings differ per maintainer.

        When a :attr:`tracer` is installed and samples this transaction,
        the whole call is recorded as a span tree; either way the
        registry's per-transaction histograms (latency, delta rows,
        throughput) observe every *successful* application.
        """
        tracer = self.tracer
        events = self.events
        trace = None
        if tracer is not None:
            trace = tracer.begin(
                f"txn:{self.view.name}",
                view=self.view.name,
                policy=self.policy.name,
            )
        ctx = None if trace is None else trace.context()
        rows_in = _delta_rows(transaction)
        if events is not None:
            events.debug(
                "txn.begin", ctx=ctx, view=self.view.name, rows=rows_in
            )
        started = perf_counter()
        try:
            self._apply_traced(transaction, undo, shared, trace, rows_in)
        except Exception as exc:
            if events is not None:
                events.error(
                    "txn.rollback",
                    ctx=ctx,
                    view=self.view.name,
                    rows=rows_in,
                    error=type(exc).__name__,
                )
            if trace is not None:
                trace.root.rows_in = rows_in
                tracer.finish(trace, status="error")
            raise
        elapsed = perf_counter() - started
        perf = self.perf
        perf.observe(TXN_LATENCY_MS, elapsed * 1000.0)
        perf.observe(TXN_DELTA_ROWS, rows_in)
        if elapsed > 0.0:
            perf.observe(TXN_ROWS_PER_SEC, rows_in / elapsed)
        if events is not None:
            events.debug(
                "txn.commit",
                ctx=ctx,
                view=self.view.name,
                rows=rows_in,
                ms=round(elapsed * 1000.0, 3),
            )
        if trace is not None:
            trace.root.rows_in = rows_in
            tracer.finish(trace)

    def _apply_traced(
        self,
        transaction: Transaction,
        undo: UndoLog | None,
        shared: dict | None,
        trace,
        rows_in: int | None = None,
    ) -> None:
        """The body of :meth:`apply` (``trace`` is None when unsampled;
        ``rows_in``, when the caller already counted the delta rows,
        avoids a second pass over the transaction)."""
        perf = self.perf
        perf.count("transactions")
        if self.policy is not PlanPolicy.INDEXED:
            shared = None
        if self.append_only:
            offenders = [
                delta.table
                for delta in transaction
                if delta.deleted and delta.table in self.view.tables
            ]
            if offenders:
                raise SelfMaintenanceError(
                    f"append-only detail data received deletions on "
                    f"{offenders!r}"
                )
        if self.policy is PlanPolicy.INDEXED:
            before = rows_in if rows_in is not None else _delta_rows(transaction)
            with _phase_span(trace, "coalesce") as span, perf.timer("coalesce"):
                coalesced = transaction.coalesced()
            if span is not None:
                span.rows_in = before
                span.rows_out = _delta_rows(coalesced)
            if coalesced is not transaction:
                perf.count(
                    "rows_coalesced_away", before - _delta_rows(coalesced)
                )
                transaction = coalesced
        with _phase_span(trace, "validate") as span, perf.timer("validate"):
            validated = self._validate_transaction(transaction)
        if span is not None:
            span.rows_in = span.rows_out = sum(
                len(ins) + len(dels) for ins, dels in validated.values()
            )
        log = UndoLog()
        self._begin_transaction(log)
        try:
            self._apply_validated(transaction, validated, shared, trace)
        except Exception:
            self._end_transaction()
            with _phase_span(trace, "rollback") as span, perf.timer("rollback"):
                undone = log.rollback()
            if span is not None:
                span.rows_out = undone
            perf.count("rollbacks")
            perf.count("rows_undone", undone)
            raise
        self._end_transaction()
        if undo is not None:
            # A coordinator owns the transaction: it absorbs the undo
            # entries (including the backend's savepoint restore) and
            # commits the backend itself once all participants succeed.
            undo.absorb(log)
        else:
            try:
                self.backend.commit()
            except Exception:
                # A failed commit is a failed transaction: the in-memory
                # views must not keep state the backend never made
                # durable.
                with _phase_span(trace, "rollback") as span, perf.timer(
                    "rollback"
                ):
                    undone = log.rollback()
                if span is not None:
                    span.rows_out = undone
                perf.count("rollbacks")
                perf.count("rows_undone", undone)
                raise

    def _validate_transaction(
        self, transaction: Transaction
    ) -> dict[str, tuple[list[tuple], list[tuple]]]:
        """Schema-validate every delta row of every view table upfront.

        Raising here is guaranteed to leave the maintainer untouched, so
        a malformed row in the *last* delta of a transaction never costs
        a rollback of work done for the earlier ones."""
        validated: dict[str, tuple[list[tuple], list[tuple]]] = {}
        for delta in transaction:
            info = self._tables.get(delta.table)
            if info is None:
                continue  # not a view table: maintenance never reads it
            validated[delta.table] = (
                info.schema.validate_rows(delta.inserted),
                info.schema.validate_rows(delta.deleted),
            )
        return validated

    def _begin_transaction(self, log: UndoLog) -> None:
        self._undo = log
        self._undo_saved_groups = set()
        self._group_saves = []
        # Estimate hygiene: the stats snapshot describes pre-transaction
        # state, and an abort must also take back the domain high-water
        # marks this transaction's inserts raise — otherwise rolled-back
        # key populations would keep depressing selectivity estimates
        # forever.  Recorded *first* so the LIFO rollback restores the
        # catalog last, after every materialization inverse has run.
        domains = self._stats.domain_snapshot()
        log.record(lambda s=domains: self._stats.restore_domains(s))
        self._stats.invalidate()
        # The backend's scope opens next, below every materialization
        # inverse, so its restore (e.g. a SQLite ``ROLLBACK TO``) runs
        # after every Python-side inverse (and before the catalog's).
        self.backend.begin_transaction(log)
        for materialization in self._materializations.values():
            materialization.begin_undo(log)

    def _end_transaction(self) -> None:
        self._undo = None
        self._undo_saved_groups = set()
        self._group_saves = []
        for materialization in self._materializations.values():
            materialization.end_undo()
        self.backend.end_transaction()
        # The committed state moved; the next plan compile re-reads it.
        self._stats.invalidate()

    def _save_group(self, key: tuple) -> None:
        """Record the inverse of this transaction's mutations of one
        summary group (a value snapshot, taken once per key).

        Snapshots accumulate on one per-transaction list behind a
        single undo closure (registered at the first save), so a
        transaction touching many groups pays one entry, not one
        closure per group.  Each key still publishes its own redo
        record: the inverse log flipped forward names the exact set of
        changed summary keys (what the serving layer's copy-on-write
        snapshot chain publishes as a patch)."""
        undo = self._undo
        saved = self._undo_saved_groups
        if undo is None or key in saved:
            return
        saved.add(key)
        saves = self._group_saves
        if not saves:
            undo.record(lambda s=saves: self._restore_group_saves(s))
        state = self._groups.get(key)
        saves.append(
            (
                key,
                None
                if state is None
                else (state.count, dict(state.sums), dict(state.values)),
            )
        )
        undo.note_redo(key, rows=1)

    def _restore_group_saves(
        self, saves: list[tuple[tuple, tuple | None]]
    ) -> None:
        """Inverse of one transaction's summary-group mutations: put
        every first-touch snapshot back (or drop groups that did not
        exist).  Keys are unique per transaction, so replay order does
        not matter; reversed keeps the LIFO discipline legible."""
        groups = self._groups
        for key, snapshot in reversed(saves):
            if snapshot is None:
                groups.pop(key, None)
            else:
                count, sums, values = snapshot
                groups[key] = GroupState(count, sums, values)

    def _apply_validated(
        self,
        transaction: Transaction,
        validated: dict[str, tuple[list[tuple], list[tuple]]],
        shared: dict | None = None,
        trace=None,
    ) -> None:
        """The mutation half of :meth:`apply` (runs inside the undo scope)."""
        perf = self.perf
        dirty: set[tuple] = set()
        rewrites = self._plan_rewrites(transaction)
        for table in self._order:
            __, deleted = validated.get(table, ((), ()))
            if deleted:
                self._process_delta(table, deleted, -1, dirty, shared, trace)
        self._apply_rewrites(rewrites)
        for table in reversed(self._order):
            inserted, __ = validated.get(table, ((), ()))
            if inserted:
                self._process_delta(table, inserted, +1, dirty, shared, trace)
        if dirty:
            perf.count("groups_recomputed", len(dirty))
            with _phase_span(trace, "recompute") as span, perf.timer("recompute"):
                self._recompute_groups(dirty)
            if span is not None:
                span.rows_out = len(dirty)

    # ------------------------------------------------------------------
    # Dimension updates under an eliminated root (Section 3.3).
    #
    # With no root auxiliary view, a dimension delete+insert of the same
    # key (an update) cannot flow through the generic join path.  The
    # Need-set argument guarantees each affected group is pinned by the
    # key of the dimension's nearest key-annotated ancestor, so the
    # groups are located through the group key, their dimension-derived
    # group-by values and group-constant aggregates rewritten in place,
    # and their counts carried over unchanged (no detail rows moved).
    # ------------------------------------------------------------------

    def _plan_rewrites(
        self, transaction: Transaction
    ) -> dict[tuple, list[tuple["_RewriteInfo", tuple | None]]]:
        """Match deleted-to-inserted dimension rows by key and locate the
        affected live groups — all against pre-transaction state."""
        if not self._rewrite_info:
            return {}
        planned: dict[tuple, list[tuple[_RewriteInfo, tuple | None]]] = {}
        anchor_cache: dict[int, dict[object, list[tuple]]] = {}
        for table, info in self._rewrite_info.items():
            delta = transaction.delta_for(table)
            if not delta.deleted:
                continue
            table_info = self._tables[table]
            replacements: dict[object, tuple | None] = {}
            for row in delta.inserted:
                validated = table_info.schema.validate_row(row)
                replacements[validated[info.key_index]] = validated
            for row in delta.deleted:
                validated = table_info.schema.validate_row(row)
                if table_info.local_predicate is not None and not (
                    table_info.local_predicate(validated)
                ):
                    continue  # contributed nothing before the change
                new_row = replacements.get(validated[info.key_index])
                if new_row is not None and not self._row_survives(
                    table_info, new_row
                ):
                    new_row = None
                anchor_ids = self._anchor_ids(info, validated[info.key_index])
                if not anchor_ids:
                    continue
                for key in self._affected_groups(info, anchor_ids, anchor_cache):
                    planned.setdefault(key, []).append((info, new_row))
        return planned

    def _affected_groups(
        self,
        info: "_RewriteInfo",
        anchor_ids: set,
        cache: dict[int, dict[object, list[tuple]]],
    ):
        """Live group keys pinned to any of ``anchor_ids``.

        Answered from an ``anchor value -> group keys`` index built once
        per transaction, so updates rewrite only the groups they touch.
        """
        position = info.anchor_position
        index = cache.get(position)
        if index is None:
            index = cache[position] = {}
            for key in self._groups:
                index.setdefault(key[position], []).append(key)
        if len(anchor_ids) == 1:
            return index.get(next(iter(anchor_ids)), ())
        # Multi-anchor chains are rare; scan to keep V's group order.
        return [k for k in self._groups if k[position] in anchor_ids]

    def _row_survives(self, table_info: "_TableInfo", row: tuple) -> bool:
        """Local + join reductions for a single replacement row."""
        if table_info.local_predicate is not None and not (
            table_info.local_predicate(row)
        ):
            return False
        for fk_index, dep_table, dep_key in table_info.reductions:
            keys = self._materializations[dep_table].key_values(dep_key)
            if row[fk_index] not in keys:
                return False
        return True

    def _anchor_ids(self, info: "_RewriteInfo", key_value: object) -> set:
        """Keys of the anchor table whose join chain reaches ``key_value``
        (computed from the dimension auxiliary views, pre-transaction)."""
        ids = {key_value}
        for parent, fk_column, key_column in info.path:
            materialization = self._materializations[parent]
            rows = materialization.rows_matching(fk_column, ids)
            key_index = materialization.schema.index_of(key_column)
            ids = {row[key_index] for row in rows}
            if not ids:
                break
        return ids

    def _apply_rewrites(
        self,
        rewrites: dict[tuple, list[tuple["_RewriteInfo", tuple | None]]],
    ) -> None:
        for old_key, operations in rewrites.items():
            self._save_group(old_key)
            state = self._groups.pop(old_key, None)
            if state is None:
                continue  # the group died during the deletion phase
            if any(new_row is None for __, new_row in operations):
                # The dimension row was not (validly) re-inserted: with
                # referential integrity this cannot happen for a live
                # group, so drop it defensively.
                continue
            new_key = list(old_key)
            for info, new_row in operations:
                for key_slot, attr_index in info.group_positions:
                    new_key[key_slot] = new_row[attr_index]
                self._rewrite_state(state, info, new_row)
            restored = tuple(new_key)
            if restored in self._groups:
                raise SelfMaintenanceError(
                    f"group rewrite collision at {restored!r}"
                )
            self._save_group(restored)
            self._groups[restored] = state

    def _rewrite_state(
        self, state: GroupState, info: "_RewriteInfo", new_row: tuple
    ) -> None:
        categories = self.reconstructor.categories
        for item_index, attr_index in info.aggregate_rewrites:
            value = new_row[attr_index]
            category = categories[item_index]
            if category is AggregateCategory.COUNT:
                continue
            if category in (AggregateCategory.SUM, AggregateCategory.AVG):
                # Group-constant attribute: the sum is value x multiplicity.
                state.sums[item_index] = value * state.count
            elif category is AggregateCategory.EXTREMUM:
                state.values[item_index] = value
            else:
                item = self.view.projection[item_index]
                state.values[item_index] = self.reconstructor.finalize_distinct(
                    item, {value}
                )

    def delta_plans(self, table: str, sign: int) -> DeltaPlans:
        """The compiled maintenance pipeline for one delta shape, built
        once per (table, sign) and reused for every transaction (until
        an adaptive re-plan retires it; the retired pipeline's observed
        stats carry over onto the recompiled one)."""
        key = (table, sign)
        plans = self._delta_plans.get(key)
        if plans is None:
            plans = self._delta_plans[key] = self._planner.build(table, sign)
            retired = self._retired_plans.pop(key, None)
            if retired is not None:
                transfer_runtime_stats(retired, plans)
        return plans

    def runtime_stats(self) -> dict:
        """Observed per-node plan statistics of every compiled delta
        pipeline, keyed ``'+table'``/``'-table'``.  The accumulators live
        on the cached plan nodes, so after a transaction stream this is
        the full observed-cardinality profile of the maintenance work
        (see ``explain --analyze``).  Backends that execute plans
        elsewhere (a sharded pool's workers) merge their observations in
        via :meth:`~repro.backends.base.Backend.merge_runtime_stats`."""
        stats = {
            ("+" if sign > 0 else "-") + table: plans.runtime_stats()
            for (table, sign), plans in sorted(self._delta_plans.items())
        }
        for (table, sign), plans in sorted(self._retired_plans.items()):
            # A shape retired by a re-plan and not yet recompiled still
            # owns its observed history.
            stats.setdefault(
                ("+" if sign > 0 else "-") + table, plans.runtime_stats()
            )
        return self.backend.merge_runtime_stats(self.view.name, stats)

    @property
    def stats_catalog(self) -> StatsCatalog:
        """The live cardinality/distinct-count catalog cost plans read."""
        return self._stats

    def set_estimate_hint(
        self,
        table: str,
        sign: int,
        local_rows: float | None = None,
        reduce_rows: float | None = None,
    ) -> None:
        """Seed the planner's feedback for one delta shape and force its
        next compile to use it (what the adaptive loop does on a
        misestimate; exposed so tests and benchmarks can plant a known
        misestimate deterministically)."""
        hints = self._planner.feedback.setdefault((table, sign), {})
        if local_rows is not None:
            hints["local_rows"] = float(local_rows)
        if reduce_rows is not None:
            hints["reduce_rows"] = float(reduce_rows)
        self._retire_plans(table, sign)

    def _retire_plans(self, table: str, sign: int) -> None:
        """Drop the cached pipeline for one shape, keeping it aside so
        the recompiled plan inherits its observed statistics."""
        key = (table, sign)
        plans = self._delta_plans.pop(key, None)
        if plans is not None:
            retired = self._retired_plans.get(key)
            if retired is not None:
                transfer_runtime_stats(retired, plans)
            self._retired_plans[key] = plans

    def _check_estimates(
        self,
        table: str,
        sign: int,
        plans: DeltaPlans,
        local_rows: int,
        reduce_rows: int,
        trace,
    ) -> None:
        """The adaptive feedback loop: compare the plan's stage
        estimates against this transaction's observed cardinalities;
        past the configured q-error ratio, record the observation and
        drop the cached pipeline so the *next* transaction recompiles
        against fresh statistics (this one finishes on the old plan —
        both are correct, only cost differs)."""
        if self.planner_mode is not PlannerMode.COST:
            return
        estimates = plans.stage_estimates()
        worst = 1.0
        for estimated, actual in (
            (estimates["local"], local_rows),
            (estimates["reduce"], reduce_rows),
        ):
            if estimated is None:
                continue
            error = q_error(estimated, actual)
            self.perf.observe(PLANNER_QERROR, error)
            worst = max(worst, error)
        if worst <= self._replan_ratio:
            return
        self._planner.feedback[(table, sign)] = {
            "local_rows": float(max(local_rows, 1)),
            "reduce_rows": float(max(reduce_rows, 1)),
        }
        self._retire_plans(table, sign)
        self.perf.count("replans")
        if self.events is not None:
            self.events.info(
                "planner.replan",
                ctx=None if trace is None else trace.context(),
                view=self.view.name,
                table=table,
                sign=sign,
                q_error=round(worst, 2),
            )
        if trace is not None:
            trace.instant(
                "replan",
                kind="planner",
                table=table,
                sign=sign,
                q_error=round(worst, 2),
            )

    def set_restriction(self, enabled: bool) -> None:
        """Plan future propagation joins with (default) or without the
        delta-driven semijoin restriction of the other auxiliary views —
        the ablation switch for measuring what restriction buys."""
        self._planner.restrict = enabled
        self._delta_plans.clear()

    def _process_delta(
        self,
        table: str,
        rows: list[tuple],
        sign: int,
        dirty: set[tuple],
        shared: dict | None = None,
        trace=None,
    ) -> None:
        """Reduce and propagate one table's (pre-validated) delta rows.

        The work runs through the static plans compiled by
        :class:`~repro.plan.maintenance.MaintenancePlanner`; one
        execution context memoizes shared prefixes (the reduced delta
        feeds both the propagation join and the auxiliary fold), and the
        warehouse-supplied ``shared`` dict extends that memoization to
        the delta-only subplans of sibling maintainers.  When ``trace``
        is active, every phase and every executed plan node lands in its
        span tree.
        """
        info = self._tables[table]
        perf = self.perf
        plans = self.delta_plans(table, sign)
        ctx = ExecutionContext(
            providers=self._materializations,
            perf=perf,
            shared=shared,
            deltas={(table, sign): Relation(info.schema, rows, validate=False)},
            trace=trace,
        )
        with _phase_span(
            trace, "local-reduce", table=table, sign=sign
        ) as span, perf.timer("local-reduce"):
            locally = self.backend.run_plan(plans.local, ctx)
        if span is not None:
            span.rows_in, span.rows_out = len(rows), len(locally)
        perf.count("rows_locally_reduced_away", len(rows) - len(locally))
        with _phase_span(
            trace, "join-reduce", table=table, sign=sign
        ) as span, perf.timer("join-reduce"):
            reduced = self.backend.run_plan(plans.reduce, ctx)
            perf.count("join_reduce_probes", len(locally) * plans.n_reductions)
            perf.count("rows_join_reduced_away", len(locally) - len(reduced))
        if span is not None:
            span.rows_in, span.rows_out = len(locally), len(reduced)
        self._check_estimates(table, sign, plans, len(locally), len(reduced), trace)
        if not reduced:
            return
        perf.count("rows_propagated", len(reduced))
        if plans.propagate is not None:
            with _phase_span(
                trace, "aggregate-fold", table=table, sign=sign
            ) as span, perf.timer("aggregate-fold"):
                contributions = self.backend.run_plan(plans.propagate, ctx)
                for key, acc in contributions.items():
                    self._merge_group(key, acc, sign, dirty)
            if span is not None:
                span.rows_in, span.rows_out = len(reduced), len(contributions)
        if table not in self._eliminated:
            with _phase_span(
                trace, "aux-apply", table=table, sign=sign
            ) as span, perf.timer("aux-apply"):
                self._materializations[table].apply(reduced.rows, sign)
            if span is not None:
                span.rows_in = span.rows_out = len(reduced)

    def _merge_group(
        self, key: tuple, acc: GroupAccumulator, sign: int, dirty: set[tuple]
    ) -> None:
        self._save_group(key)
        state = self._groups.get(key)
        if sign > 0:
            if state is None:
                self._groups[key] = self._state_from_accumulator(acc)
                dirty.discard(key)
                return
            state.count += acc.multiplicity
            for index, value in acc.sums.items():
                state.sums[index] = state.sums.get(index, 0) + value
            # Aggregates over key-pinned tables are constant within the
            # group; only varying extrema need combining.
            for index, value in acc.extrema.items():
                if index in self._varying_items:
                    combiner = self.reconstructor.combiner(index)
                    state.values[index] = combiner(state.values[index], value)
            for index in acc.distincts:
                if index in self._varying_items:
                    dirty.add(key)
            return
        if state is None:
            raise SelfMaintenanceError(
                f"deletion touches unknown group {key!r} of {self.view.name}"
            )
        state.count -= acc.multiplicity
        if state.count == 0:
            del self._groups[key]
            dirty.discard(key)
            return
        if state.count < 0:
            raise SelfMaintenanceError(
                f"negative multiplicity in group {key!r} of {self.view.name}"
            )
        for index, value in acc.sums.items():
            state.sums[index] = state.sums.get(index, 0) - value
        for index, value in acc.extrema.items():
            if index in self._varying_items and value == state.values[index]:
                dirty.add(key)
        for index in acc.distincts:
            if index in self._varying_items:
                dirty.add(key)

    # ------------------------------------------------------------------
    # Checkpointing (restart without base-table access).
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """A JSON-serializable snapshot of ``X`` and the maintained ``V``.

        Together with the (re-derivable) view definition this is all the
        warehouse needs to resume after a restart — crucially *without*
        reading the sealed sources.
        """
        return {
            "view": self.view.name,
            "view_sql": self.view.to_sql(),
            "append_only": self.append_only,
            "auxiliary": {
                table: [list(row) for row in materialization.relation()]
                for table, materialization in self._materializations.items()
            },
            "groups": [
                {
                    "key": list(key),
                    "count": state.count,
                    "sums": {str(i): v for i, v in state.sums.items()},
                    "values": {str(i): v for i, v in state.values.items()},
                }
                for key, state in self._groups.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        if state.get("view") != self.view.name:
            raise SelfMaintenanceError(
                f"checkpoint is for view {state.get('view')!r}, "
                f"not {self.view.name!r}"
            )
        if bool(state.get("append_only")) != self.append_only:
            raise SelfMaintenanceError(
                "checkpoint append-only mode does not match this maintainer"
            )
        recorded = set(state.get("auxiliary", {}))
        expected = set(self._materializations)
        if recorded != expected:
            raise SelfMaintenanceError(
                f"checkpoint auxiliary views {sorted(recorded)} do not "
                f"match the derivation {sorted(expected)}"
            )
        for table, rows in state["auxiliary"].items():
            materialization = self._materializations[table]
            materialization.load(
                Relation(
                    materialization.schema,
                    [tuple(row) for row in rows],
                )
            )
        self._groups = {}
        for entry in state["groups"]:
            key = tuple(entry["key"])
            self._groups[key] = GroupState(
                count=entry["count"],
                sums={int(i): v for i, v in entry["sums"].items()},
                values={int(i): v for i, v in entry["values"].items()},
            )

    def _recompute_groups(self, dirty: set[tuple]) -> None:
        """Refresh non-CSMAS aggregates of dirty groups from X (never from
        base tables) — the paper's recomputation-from-auxiliary-views."""
        live = {key for key in dirty if key in self._groups}
        if not live:
            return
        accumulators = self.reconstructor.accumulate(
            self._current_relations(), frozenset(live)
        )
        for key in live:
            acc = accumulators.get(key)
            if acc is None or acc.multiplicity == 0:
                raise SelfMaintenanceError(
                    f"group {key!r} survives in V but not in X"
                )
            refreshed = self._state_from_accumulator(acc)
            state = self._groups[key]
            if state.count != refreshed.count:
                raise SelfMaintenanceError(
                    f"group {key!r}: maintained count {state.count} disagrees "
                    f"with auxiliary views ({refreshed.count})"
                )
            self._save_group(key)
            state.values = refreshed.values
            state.sums = refreshed.sums
