"""Shared detail data for classes of summary tables (Section 4).

The paper's final future-work item: extend the derivation "to determine
the minimal set of detail data for *classes* of summary data".  This
module implements the natural construction.  Given several GPSJ views
over the same base tables, the per-table auxiliary views are *merged*:

* pinned attributes — the union of every view's pinned attributes plus
  every attribute appearing in a local condition (conditions must remain
  evaluable on the shared view);
* folded sums — the union of the views' folded attributes, minus
  anything pinned;
* local condition — the *disjunction* of the views' local conjunctions
  (a tuple useless to every view need not be stored); a view without
  local conditions on the table forces the filter open;
* join reductions — dropped (a merged view serves views with different
  reduction structures; keeping a superset of tuples is always sound).

Because the merged view groups at least as finely as each individual
view and CSMAS aggregates are distributive, **every individual auxiliary
view is a selection + rollup of the merged one** —
:func:`materialize_from_merged` performs exactly that and the test suite
checks it reproduces the per-view derivation tuple-for-tuple.  The
shared detail is therefore sufficient for maintaining the whole class of
views while storing overlapping attributes and groups only once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.database import Database
from repro.core.compression import CompressionPlan, attribute_roles
from repro.core.derivation import AuxiliaryView, AuxiliaryViewSet
from repro.core.view import ViewDefinition
from repro.engine.expressions import Expression, Or, conjoin
from repro.engine.operators import generalized_project, select, semijoin
from repro.engine.relation import Relation
from repro.engine.schema import Schema


class SharingError(Exception):
    """Raised when views cannot share detail data."""


@dataclass(frozen=True)
class MergedAuxiliaryView:
    """One shared auxiliary view serving several summary tables."""

    table: str
    name: str
    plan: CompressionPlan
    local_condition: Expression | None
    serves: tuple[str, ...]
    base_schema: Schema

    @property
    def is_compressed(self) -> bool:
        return self.plan.is_compressed

    def output_schema(self) -> Schema:
        from repro.engine.operators import projection_schema

        return projection_schema(
            self.plan.projection_items(), self.base_schema, qualifier=self.table
        )

    def compute(self, database: Database) -> Relation:
        relation = database.relation(self.table)
        if self.local_condition is not None:
            relation = select(relation, self.local_condition)
        return generalized_project(
            relation, self.plan.projection_items(), qualifier=self.table
        )

    def to_sql(self) -> str:
        select_list = ", ".join(
            item.to_sql() for item in self.plan.projection_items()
        )
        lines = [
            f"CREATE VIEW {self.name} AS",
            f"SELECT {select_list}",
            f"FROM {self.table}",
        ]
        if self.local_condition is not None:
            lines.append(f"WHERE {self.local_condition.to_sql()}")
        if self.is_compressed and self.plan.pinned:
            lines.append("GROUP BY " + ", ".join(self.plan.pinned))
        return "\n".join(lines)


@dataclass(frozen=True)
class SharedDetailSet:
    """The merged auxiliary views for a class of summary tables."""

    views: tuple[ViewDefinition, ...]
    merged: tuple[MergedAuxiliaryView, ...]

    def for_table(self, table: str) -> MergedAuxiliaryView:
        for merged in self.merged:
            if merged.table == table:
                return merged
        raise KeyError(f"no shared auxiliary view for {table!r}")

    def materialize(self, database: Database) -> dict[str, Relation]:
        return {m.table: m.compute(database) for m in self.merged}

    def to_sql(self) -> str:
        return "\n\n".join(m.to_sql() for m in self.merged)


def merge_views(
    views: list[ViewDefinition], database: Database
) -> SharedDetailSet:
    """Build the shared auxiliary-view set for a class of views."""
    if not views:
        raise SharingError("no views to merge")
    names = [view.name for view in views]
    if len(set(names)) != len(names):
        raise SharingError(f"duplicate view names {names!r}")
    tables: list[str] = []
    for view in views:
        for table in view.tables:
            if table not in tables:
                tables.append(table)
    merged = tuple(
        _merge_for_table(views, database, table) for table in tables
    )
    return SharedDetailSet(tuple(views), merged)


def _merge_for_table(
    views: list[ViewDefinition], database: Database, table: str
) -> MergedAuxiliaryView:
    base = database.table(table)
    relevant = [view for view in views if table in view.tables]
    order: list[str] = []
    pinning: set[str] = set()
    folding: set[str] = set()

    def keep(attribute: str) -> None:
        if attribute not in order:
            order.append(attribute)

    unfiltered = False
    conditions: list[Expression] = []
    for view in relevant:
        kept, roles = attribute_roles(view, table)
        for attribute in kept:
            keep(attribute)
            if roles[attribute] & {"join", "group-by", "non-csmas"}:
                pinning.add(attribute)
            if "csmas-sum" in roles[attribute]:
                folding.add(attribute)
        view_conditions = view.local_conditions(table)
        if view_conditions:
            for condition in view_conditions:
                for column in condition.columns():
                    keep(column.name)
                    pinning.add(column.name)
            conditions.append(conjoin(view_conditions))
        else:
            unfiltered = True

    local_condition: Expression | None
    if unfiltered or not conditions:
        local_condition = None
    elif len(conditions) == 1:
        local_condition = conditions[0]
    else:
        local_condition = Or(*conditions)

    serves = tuple(view.name for view in relevant)
    name = f"{table}shared"
    if base.key in pinning:
        plan = CompressionPlan(
            table,
            pinned=tuple(order),
            folded_sums=(),
            include_count=False,
            count_alias="cnt",
            degenerate=True,
        )
    else:
        pinned = tuple(a for a in order if a in pinning)
        folded = tuple(
            a for a in order if a in folding and a not in pinning
        )
        alias = "cnt"
        taken = set(pinned) | {f"sum_{a}" for a in folded}
        while alias in taken:
            alias += "_"
        plan = CompressionPlan(
            table,
            pinned=pinned,
            folded_sums=folded,
            include_count=True,
            count_alias=alias,
            degenerate=False,
            dropped=tuple(
                a for a in order if a not in pinning and a not in folding
            ),
        )
    return MergedAuxiliaryView(
        table=table,
        name=name,
        plan=plan,
        local_condition=local_condition,
        serves=serves,
        base_schema=base.schema,
    )


# ----------------------------------------------------------------------
# Deriving each view's own auxiliary views from the shared detail.
# ----------------------------------------------------------------------


def materialize_from_merged(
    aux_set: AuxiliaryViewSet,
    shared: SharedDetailSet,
    shared_relations: dict[str, Relation],
) -> dict[str, Relation]:
    """Rebuild one view's auxiliary views from the shared detail only.

    Selection (the view's local conditions), rollup (distributive
    re-aggregation onto the view's coarser grouping), and the view's
    join reductions are applied — never touching base tables.  The
    result is tuple-identical to deriving from the sources directly.
    """
    results: dict[str, Relation] = {}
    remaining = list(aux_set.auxiliary)
    while remaining:
        progressed = False
        for aux in list(remaining):
            ready = all(
                join.right_table in results
                or not aux_set.has_view(join.right_table)
                for join in aux.reduced_by
            )
            if not ready:
                continue
            results[aux.table] = _project_view_aux(
                aux, shared.for_table(aux.table), shared_relations[aux.table], results
            )
            remaining.remove(aux)
            progressed = True
        if not progressed:
            raise SharingError("cyclic auxiliary-view dependencies")
    return results


def _project_view_aux(
    aux: AuxiliaryView,
    merged: MergedAuxiliaryView,
    merged_relation: Relation,
    dep_relations: dict[str, Relation],
) -> Relation:
    relation = merged_relation
    # 1. The view's local conditions (attributes are pinned in merged).
    if aux.local_conditions:
        relation = select(relation, conjoin(aux.local_conditions))
    # 2. The view's join reductions against its (already projected) deps.
    for join in aux.reduced_by:
        dep = dep_relations.get(join.right_table)
        if dep is None:
            continue
        relation = semijoin(
            relation,
            dep,
            [
                (
                    f"{aux.table}.{join.left_attribute}",
                    f"{join.right_table}.{join.right_attribute}",
                )
            ],
        )
    # 3. Rollup onto the view's grouping, using distributivity.
    return _rollup(aux, merged, relation)


def _rollup(
    aux: AuxiliaryView,
    merged: MergedAuxiliaryView,
    relation: Relation,
) -> Relation:
    schema = relation.schema
    plan = aux.plan
    pin_indexes = [schema.index_of(f"{aux.table}.{a}") for a in plan.pinned]

    if not plan.is_compressed:
        # Degenerate target: merged is degenerate too (its pinned set is
        # a superset containing the key), so rows project directly.
        rows = {tuple(row[i] for i in pin_indexes) for row in relation}
        return Relation(aux.output_schema(), sorted(rows), validate=False)

    count_index = None
    if merged.plan.include_count:
        count_index = schema.index_of(f"{aux.table}.{merged.plan.count_alias}")

    def multiplicity(row: tuple) -> int:
        return 1 if count_index is None else row[count_index]

    sum_getters = []
    for attribute in plan.folded_sums:
        if attribute in merged.plan.folded_sums:
            index = schema.index_of(
                f"{aux.table}.{merged.plan.sum_alias(attribute)}"
            )
            sum_getters.append(lambda row, i=index: row[i])
        else:  # pinned raw in merged: weight by the merged count
            index = schema.index_of(f"{aux.table}.{attribute}")
            sum_getters.append(
                lambda row, i=index: row[i] * multiplicity(row)
            )

    groups: dict[tuple, list] = {}
    for row in relation:
        key = tuple(row[i] for i in pin_indexes)
        totals = groups.get(key)
        if totals is None:
            totals = groups[key] = [0] * len(sum_getters) + [0]
        for slot, getter in enumerate(sum_getters):
            totals[slot] += getter(row)
        totals[-1] += multiplicity(row)
    rows = [key + tuple(totals) for key, totals in groups.items()]
    return Relation(aux.output_schema(), rows, validate=False)


# ----------------------------------------------------------------------
# Storage analysis.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SharingReport:
    """Bytes stored with and without sharing for a class of views."""

    individual_bytes: dict[str, int]
    shared_bytes: int

    @property
    def total_individual(self) -> int:
        return sum(self.individual_bytes.values())

    @property
    def savings_factor(self) -> float:
        if self.shared_bytes == 0:
            return float("inf")
        return self.total_individual / self.shared_bytes


def sharing_report(
    views: list[ViewDefinition],
    aux_sets: list[AuxiliaryViewSet],
    database: Database,
) -> SharingReport:
    """Measure per-view vs shared current-detail storage."""
    individual = {}
    for view, aux_set in zip(views, aux_sets):
        relations = aux_set.materialize(database)
        individual[view.name] = sum(r.size_bytes() for r in relations.values())
    shared = merge_views(views, database)
    shared_bytes = sum(
        r.size_bytes() for r in shared.materialize(database).values()
    )
    return SharingReport(individual, shared_bytes)
