"""Reconstructing ``V`` from its auxiliary views (Section 3.2).

Because the root's auxiliary view is duplicate-compressed, rebuilding
``V`` from ``X`` must account for multiplicities: ``COUNT(*)`` becomes
``SUM(cnt0)``, a folded ``SUM(a)`` becomes ``SUM(sum_a)``, and a CSMAS
over an attribute that is *not* maintained by an aggregate in ``X`` —
because it is pinned by a non-CSMAS or group-by use, or lives on a
non-root table — is computed as ``f(a * cnt0)``, exactly the paper's
``SUM(price*SaleCount)`` example.  MIN/MAX and DISTINCT aggregates
ignore duplicates and read raw attribute values directly.

The :class:`Reconstructor` compiles, for any join of auxiliary (or
delta) relations, a *row program*: per-row accessors for the group key,
the multiplicity, and each output aggregate's contribution.  Both full
reconstruction and the incremental maintainer's delta propagation run
the same program, so the two paths cannot drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.catalog.database import Database
from repro.core.derivation import AuxiliaryViewSet
from repro.core.view import ViewDefinition
from repro.engine.aggregates import AggregateFunction
from repro.engine.operators import (
    AggregateItem,
    GroupByItem,
    projection_schema,
    select,
)
from repro.engine.relation import Relation
from repro.engine.rowindex import make_tuple_extractor
from repro.engine.schema import Schema
from repro.plan.executor import ExecutionContext
from repro.plan.physical import PhysicalNode, ScanNode
from repro.plan.planner import JoinGraphDisconnected, join_order, join_physical


class ReconstructionError(Exception):
    """Raised when ``V`` cannot be rebuilt from the supplied relations."""


class AggregateCategory(enum.Enum):
    """How one output aggregate is computed from joined detail rows."""

    COUNT = "count"          # sum of multiplicities
    SUM = "sum"              # folded sum or value * multiplicity
    AVG = "avg"              # SUM part / COUNT part
    EXTREMUM = "extremum"    # min/max of raw values (duplicates ignored)
    DISTINCT = "distinct"    # f over the set of raw values


def categorize(item: AggregateItem) -> AggregateCategory:
    """Map an output aggregate to its reconstruction category."""
    if item.func in (AggregateFunction.MIN, AggregateFunction.MAX):
        return AggregateCategory.EXTREMUM
    if item.distinct:
        return AggregateCategory.DISTINCT
    if item.func is AggregateFunction.COUNT:
        return AggregateCategory.COUNT
    if item.func is AggregateFunction.SUM:
        return AggregateCategory.SUM
    return AggregateCategory.AVG


@dataclass(slots=True)
class GroupAccumulator:
    """Running totals for one group of ``V`` during (re)construction."""

    multiplicity: int = 0
    sums: dict[int, float] | None = None
    extrema: dict[int, object] | None = None
    distincts: dict[int, set] | None = None

    def __post_init__(self) -> None:
        self.sums = {} if self.sums is None else self.sums
        self.extrema = {} if self.extrema is None else self.extrema
        self.distincts = {} if self.distincts is None else self.distincts


@dataclass(frozen=True)
class SymbolicProgram:
    """Schema-resolved column positions for one joined-relation shape.

    The *symbolic* form of the row program: which positions form the
    group key, where the root multiplicity lives (``None`` when raw
    detail rows count once), and how each output aggregate reads the
    joined row — as ``(slot, position, scale_by_multiplicity)`` for
    SUM/AVG contributions and ``(slot, category, position)`` for
    extremum/distinct raw values.  This is the single source of truth
    three executors share: :meth:`Reconstructor.compile_program` closes
    over it for the interpreter, the columnar backend's fused fold
    kernel reads positions straight out of column stores, and the
    SQLite backend renders it as a ``GROUP BY`` select list.
    """

    key_positions: tuple[int, ...]
    count_position: int | None
    sum_items: tuple[tuple[int, int, bool], ...]
    raw_items: tuple[tuple[int, AggregateCategory, int], ...]

    @property
    def has_distinct(self) -> bool:
        return any(
            category is AggregateCategory.DISTINCT
            for __, category, __pos in self.raw_items
        )


@dataclass(frozen=True)
class RowProgram:
    """Compiled per-row accessors for one joined-relation schema.

    Run against rows via :meth:`Reconstructor.run_program`, which also
    supplies the min/max combiners for extremum items.
    """

    key: Callable[[tuple], tuple]
    multiplicity: Callable[[tuple], int]
    sum_contributions: tuple[tuple[int, Callable[[tuple], object]], ...]
    raw_values: tuple[tuple[int, AggregateCategory, Callable[[tuple], object]], ...]


class Reconstructor:
    """Rebuilds ``V`` (or pieces of it) from auxiliary/delta relations."""

    def __init__(self, view: ViewDefinition, aux_set: AuxiliaryViewSet, database: Database):
        self.view = view
        self.aux_set = aux_set
        base_schema = Schema(
            attribute
            for table in view.tables
            for attribute in database.table(table).schema
        )
        self.output_schema = projection_schema(
            view.projection, base_schema, qualifier=view.name
        )
        self._item_categories: dict[int, AggregateCategory] = {
            i: categorize(item)
            for i, item in enumerate(view.projection)
            if isinstance(item, AggregateItem)
        }
        self._group_slots = [
            i for i, item in enumerate(view.projection)
            if isinstance(item, GroupByItem)
        ]
        self._program_cache: dict[Schema, RowProgram] = {}
        self._symbolic_cache: dict[Schema, SymbolicProgram] = {}
        self._join_plans: dict[str | None, PhysicalNode] = {}

    @property
    def categories(self) -> Mapping[int, AggregateCategory]:
        return self._item_categories

    # ------------------------------------------------------------------
    # Joining.
    # ------------------------------------------------------------------

    def join_all(
        self,
        relations: Mapping[str, Relation],
        start: str | None = None,
    ) -> Relation:
        """Join one relation per view table along the view's join tree.

        ``relations`` may mix auxiliary views and raw delta relations —
        the only requirement is that join attributes carry their base
        names qualified by the base table, which both do.

        The hash-join tree is planned once per ``start`` table (the
        fixed-point join order is static) and executed against the
        supplied bindings; maintenance runs the same plan on every
        transaction.
        """
        missing = [t for t in self.view.tables if t not in relations]
        if missing:
            raise ReconstructionError(
                f"cannot join: no relation supplied for {missing!r}"
            )
        plan = self._join_plan(start)
        ctx = ExecutionContext(relations=relations)
        return plan.run(ctx)

    def _join_plan(self, start: str | None) -> PhysicalNode:
        cached = self._join_plans.get(start)
        if cached is not None:
            return cached
        try:
            steps = join_order(
                self.view.tables, self.view.joins, start=start, on_stuck="raise"
            )
        except JoinGraphDisconnected as exc:
            raise ReconstructionError(str(exc)) from None
        nodes = {table: ScanNode(table) for table in self.view.tables}
        plan = self._join_plans[start] = join_physical(nodes, steps)
        return plan

    # ------------------------------------------------------------------
    # Row programs.
    # ------------------------------------------------------------------

    def resolve_program(self, schema: Schema) -> SymbolicProgram:
        """Resolve the row program *symbolically* against ``schema``:
        pure column positions, no closures.  Cached per schema —
        maintenance resolves against the same handful of join shapes on
        every transaction, so the hot path pays attribute resolution
        once per shape, not once per delta.
        """
        cached = self._symbolic_cache.get(schema)
        if cached is not None:
            return cached
        key_positions = tuple(
            schema.index_of(
                self.view.projection[slot].column.name,
                self.view.projection[slot].column.qualifier,
            )
            for slot in self._group_slots
        )
        count_position = self._resolve_multiplicity(schema)

        sum_items: list[tuple[int, int, bool]] = []
        raw_items: list[tuple[int, AggregateCategory, int]] = []
        for index, item in enumerate(self.view.projection):
            if not isinstance(item, AggregateItem):
                continue
            category = self._item_categories[index]
            if category in (AggregateCategory.SUM, AggregateCategory.AVG):
                sum_items.append((index,) + self._resolve_sum(schema, item))
            elif category in (
                AggregateCategory.EXTREMUM, AggregateCategory.DISTINCT
            ):
                raw_items.append(
                    (index, category, self._resolve_raw(schema, item))
                )
        program = SymbolicProgram(
            key_positions=key_positions,
            count_position=count_position,
            sum_items=tuple(sum_items),
            raw_items=tuple(raw_items),
        )
        self._symbolic_cache[schema] = program
        return program

    def compile_program(self, schema: Schema) -> RowProgram:
        """Compile group-key/multiplicity/contribution accessors for rows
        of ``schema`` (a join of aux and/or delta relations) — the
        interpreter's closure form of :meth:`resolve_program`.
        """
        cached = self._program_cache.get(schema)
        if cached is not None:
            return cached
        symbolic = self.resolve_program(schema)
        key = make_tuple_extractor(symbolic.key_positions)
        if symbolic.count_position is None:
            multiplicity = lambda row: 1  # noqa: E731
        else:
            count_position = symbolic.count_position
            multiplicity = lambda row: row[count_position]  # noqa: E731

        def value_of(position: int) -> Callable[[tuple], object]:
            return lambda row: row[position]

        def scaled_by_count(position: int) -> Callable[[tuple], object]:
            return lambda row: row[position] * multiplicity(row)

        sum_contributions = tuple(
            (index, scaled_by_count(position) if scaled else value_of(position))
            for index, position, scaled in symbolic.sum_items
        )
        raw_values = tuple(
            (index, category, value_of(position))
            for index, category, position in symbolic.raw_items
        )
        program = RowProgram(
            key=key,
            multiplicity=multiplicity,
            sum_contributions=sum_contributions,
            raw_values=raw_values,
        )
        self._program_cache[schema] = program
        return program

    def combiner(self, index: int) -> Callable[[object, object], object]:
        """min/max combiner for an extremum output item."""
        item = self.view.projection[index]
        return min if item.func is AggregateFunction.MIN else max

    def _resolve_multiplicity(self, schema: Schema) -> int | None:
        """Rows carry the root COUNT(*) when the compressed root auxiliary
        view participates in the join; raw detail rows count once."""
        count_index: int | None = None
        for aux in self.aux_set:
            column = aux.count_column
            if column is not None and schema.has(column):
                if count_index is not None:
                    raise ReconstructionError(
                        "multiple compressed auxiliary views in one join"
                    )
                count_index = schema.index_of(column)
        return count_index

    def _resolve_sum(
        self, schema: Schema, item: AggregateItem
    ) -> tuple[int, bool]:
        """SUM/AVG contribution as ``(position, scale_by_multiplicity)``:
        the folded sum column when available in this schema, otherwise
        ``value * multiplicity`` (the f(a*cnt0) rule)."""
        column = item.column
        if schema.has(column.name, column.qualifier):
            return schema.index_of(column.name, column.qualifier), True
        folded = self._folded_column(column.qualifier, column.name)
        if folded is not None and schema.has(folded):
            return schema.index_of(folded), False
        raise ReconstructionError(
            f"{item.to_sql()} is computable neither from a raw column nor "
            "from a folded sum in this join"
        )

    def _resolve_raw(self, schema: Schema, item: AggregateItem) -> int:
        column = item.column
        if schema.has(column.name, column.qualifier):
            return schema.index_of(column.name, column.qualifier)
        if item.func in (AggregateFunction.MIN, AggregateFunction.MAX):
            # Append-only mode folds MIN/MAX per group; merging the
            # per-group extrema is exact because they are distributive.
            folded = self._folded_extremum_column(
                column.qualifier, column.name, item.func
            )
            if folded is not None and schema.has(folded):
                return schema.index_of(folded)
        raise ReconstructionError(
            f"{item.to_sql()} needs raw values of {column.qualified_name} "
            "which are not present in this join"
        )

    def _folded_extremum_column(
        self, table: str, attribute: str, func: AggregateFunction
    ) -> str | None:
        if not self.aux_set.has_view(table):
            return None
        return self.aux_set.for_table(table).extremum_column(attribute, func)

    def _folded_column(self, table: str, attribute: str) -> str | None:
        if not self.aux_set.has_view(table):
            return None
        return self.aux_set.for_table(table).sum_column(attribute)

    # ------------------------------------------------------------------
    # Accumulation and finalization.
    # ------------------------------------------------------------------

    def accumulate(
        self,
        relations: Mapping[str, Relation],
        group_filter: frozenset[tuple] | None = None,
    ) -> dict[tuple, GroupAccumulator]:
        """Join ``relations`` and fold every row into per-group accumulators.

        With a ``group_filter``, the filter is pushed down before the
        join: relations carrying group-by columns are restricted to the
        filtered values and the restriction propagates along the join
        conditions by semijoins, so recomputing a few dirty groups does
        not pay for a full join.
        """
        if group_filter is not None:
            relations = self._push_down_filter(relations, group_filter)
        start = min(relations, key=lambda table: len(relations[table]))
        joined = self.join_all(relations, start=start)
        program = self.compile_program(joined.schema)
        groups: dict[tuple, GroupAccumulator] = {}
        self.run_program(program, joined.rows, groups, group_filter)
        return groups

    def _push_down_filter(
        self,
        relations: Mapping[str, Relation],
        group_filter: frozenset[tuple],
    ) -> dict[str, Relation]:
        """Restrict relations carrying group-by columns to the filtered
        values; the join itself then propagates the restriction."""
        filtered = dict(relations)
        for position, slot in enumerate(self._group_slots):
            column = self.view.projection[slot].column
            table = column.qualifier
            if table not in filtered:
                continue
            allowed = {key[position] for key in group_filter}
            relation = filtered[table]
            index = relation.schema.index_of(column.name, column.qualifier)
            filtered[table] = Relation(
                relation.schema,
                [row for row in relation if row[index] in allowed],
                validate=False,
            )
        return filtered

    def run_program(
        self,
        program: RowProgram,
        rows: Iterable[tuple],
        groups: dict[tuple, GroupAccumulator],
        group_filter: frozenset[tuple] | None = None,
    ) -> None:
        combiners = {
            index: self.combiner(index)
            for index, category, __ in program.raw_values
            if category is AggregateCategory.EXTREMUM
        }
        for row in rows:
            key = program.key(row)
            if group_filter is not None and key not in group_filter:
                continue
            acc = groups.get(key)
            if acc is None:
                acc = groups[key] = GroupAccumulator()
            acc.multiplicity += program.multiplicity(row)
            for index, fn in program.sum_contributions:
                acc.sums[index] = acc.sums.get(index, 0) + fn(row)
            for index, category, fn in program.raw_values:
                value = fn(row)
                if category is AggregateCategory.EXTREMUM:
                    current = acc.extrema.get(index)
                    acc.extrema[index] = (
                        value if current is None
                        else combiners[index](current, value)
                    )
                else:
                    acc.distincts.setdefault(index, set()).add(value)

    def finalize_row(self, key: tuple, acc: GroupAccumulator) -> tuple:
        """Assemble one output row of ``V`` from an accumulator."""
        out: list[object] = []
        key_iter = iter(key)
        for index, item in enumerate(self.view.projection):
            if isinstance(item, GroupByItem):
                out.append(next(key_iter))
                continue
            category = self._item_categories[index]
            if category is AggregateCategory.COUNT:
                out.append(acc.multiplicity)
            elif category is AggregateCategory.SUM:
                out.append(acc.sums[index])
            elif category is AggregateCategory.AVG:
                out.append(acc.sums[index] / acc.multiplicity)
            elif category is AggregateCategory.EXTREMUM:
                out.append(acc.extrema[index])
            else:
                out.append(self.finalize_distinct(item, acc.distincts[index]))
        return tuple(out)

    @staticmethod
    def finalize_distinct(item: AggregateItem, values: set) -> object:
        if item.func is AggregateFunction.COUNT:
            return len(values)
        if item.func is AggregateFunction.SUM:
            return sum(values)
        if item.func is AggregateFunction.AVG:
            return sum(values) / len(values)
        raise ReconstructionError(f"unexpected distinct aggregate {item.to_sql()}")

    def reconstruct(
        self,
        relations: Mapping[str, Relation],
        group_filter: frozenset[tuple] | None = None,
    ) -> Relation:
        """Full reconstruction of ``V`` from the supplied relations."""
        groups = self.accumulate(relations, group_filter)
        rows = [
            self.finalize_row(key, acc)
            for key, acc in groups.items()
            if acc.multiplicity > 0
        ]
        result = Relation(self.output_schema, rows, validate=False)
        if self.view.having is not None:
            result = select(result, self.view.having)
        return result

    # ------------------------------------------------------------------
    # Rendering (the paper's rewritten product_sales view).
    # ------------------------------------------------------------------

    def to_sql(self) -> str:
        """The reconstruction query over the auxiliary views, as SQL."""
        names = self.aux_set.aux_names()
        if set(names) != set(self.view.tables):
            raise ReconstructionError(
                "reconstruction SQL requires every table's auxiliary view"
            )
        root_aux = None
        for aux in self.aux_set:
            if aux.count_column is not None:
                root_aux = aux

        def rewrite_column(table: str, attribute: str) -> str:
            return f"{names[table]}.{attribute}"

        select_parts: list[str] = []
        for index, item in enumerate(self.view.projection):
            if isinstance(item, GroupByItem):
                text = rewrite_column(item.column.qualifier, item.column.name)
                if item.alias and item.alias != item.column.name:
                    text += f" AS {item.alias}"
                select_parts.append(text)
                continue
            select_parts.append(self._aggregate_sql(item, index, names, root_aux))
        lines = [
            f"CREATE VIEW {self.view.name} AS",
            "SELECT " + ",\n       ".join(select_parts),
            "FROM " + ", ".join(names[t] for t in self.view.tables),
        ]
        where = [
            f"{names[j.left_table]}.{j.left_attribute} = "
            f"{names[j.right_table]}.{j.right_attribute}"
            for j in self.view.joins
        ]
        if where:
            lines.append("WHERE " + "\n  AND ".join(where))
        group_by = [
            rewrite_column(item.column.qualifier, item.column.name)
            for item in self.view.group_by_items
        ]
        if group_by:
            lines.append("GROUP BY " + ", ".join(group_by))
        return "\n".join(lines)

    def _aggregate_sql(self, item, index, names, root_aux) -> str:
        category = self._item_categories[index]
        alias = f" AS {item.alias}" if item.alias else ""
        if root_aux is None:
            cnt_expr = None
        else:
            cnt_expr = f"{names[root_aux.table]}.{root_aux.plan.count_alias}"
        if category is AggregateCategory.COUNT:
            if cnt_expr is None:
                return f"COUNT(*){alias}"
            return f"SUM({cnt_expr}){alias}"
        if category in (AggregateCategory.SUM, AggregateCategory.AVG):
            folded = self._folded_column(item.column.qualifier, item.column.name)
            if folded is not None:
                table, __, column = folded.partition(".")
                sum_expr = f"SUM({names[table]}.{column})"
            elif cnt_expr is not None:
                raw = f"{names[item.column.qualifier]}.{item.column.name}"
                sum_expr = f"SUM({raw}*{cnt_expr})"
            else:
                raw = f"{names[item.column.qualifier]}.{item.column.name}"
                sum_expr = f"SUM({raw})"
            if category is AggregateCategory.SUM:
                return f"{sum_expr}{alias}"
            count_sql = f"SUM({cnt_expr})" if cnt_expr is not None else "COUNT(*)"
            return f"{sum_expr} / {count_sql}{alias}"
        raw = f"{names[item.column.qualifier]}.{item.column.name}"
        inner = f"DISTINCT {raw}" if item.distinct else raw
        return f"{item.func.value}({inner}){alias}"
