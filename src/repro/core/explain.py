"""Human-readable derivation reports: *why* each decision was made.

Algorithm 3.2 makes many interacting choices — which attributes survive
local reduction, which are pinned vs folded, which tables join-reduce
which, which auxiliary views are eliminated.  A warehouse designer
adopting the technique needs the rationale, not just the result; this
module walks the derivation and narrates every decision with the paper's
vocabulary (exposed via ``python -m repro explain``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.database import Database
from repro.core.aggregates import classify_aggregate
from repro.core.compression import attribute_roles
from repro.core.derivation import (
    AuxiliaryViewSet,
    derive_auxiliary_views,
    retention_reason,
)
from repro.core.joingraph import ExtendedJoinGraph
from repro.core.view import ViewDefinition


@dataclass(frozen=True)
class AttributeDecision:
    """What happened to one attribute of one base table."""

    table: str
    attribute: str
    outcome: str  # "pinned" | "folded" | "dropped" | "reduced away"
    reasons: tuple[str, ...]


@dataclass(frozen=True)
class TableDecision:
    """What happened to one base table's auxiliary view."""

    table: str
    materialized: bool
    reason: str
    attributes: tuple[AttributeDecision, ...]
    reduced_by: tuple[str, ...]
    compressed: bool


@dataclass(frozen=True)
class DerivationReport:
    """The full narrated derivation for one view."""

    view: ViewDefinition
    graph_rendering: str
    root: str
    annotations: dict[str, str]
    need_sets: dict[str, tuple[str, ...]]
    tables: tuple[TableDecision, ...]
    aggregate_notes: tuple[str, ...]
    maintenance_notes: tuple[str, ...] = ()

    def render(self) -> str:
        lines = [f"Derivation report for view {self.view.name!r}", ""]
        lines.append("Extended join graph (Definition 2):")
        lines.extend("  " + line for line in self.graph_rendering.splitlines())
        lines.append(f"  root table: {self.root}")
        lines.append("")
        lines.append("Need sets (Definition 3):")
        for table, need in self.need_sets.items():
            lines.append(f"  Need({table}) = {sorted(need) or '{}'}")
        lines.append("")
        lines.append("Aggregates (Tables 1 and 2):")
        lines.extend("  " + note for note in self.aggregate_notes)
        lines.append("")
        for decision in self.tables:
            verdict = "materialized" if decision.materialized else "OMITTED"
            lines.append(f"Auxiliary view for {decision.table}: {verdict}")
            lines.append(f"  {decision.reason}")
            if decision.materialized:
                if decision.reduced_by:
                    lines.append(
                        "  join-reduced by "
                        f"{', '.join(decision.reduced_by)} (Section 2.2)"
                    )
                mode = (
                    "smart duplicate compression applies (Algorithm 3.1)"
                    if decision.compressed
                    else "degenerates to a PSJ view (key retained)"
                )
                lines.append(f"  {mode}")
                for attribute in decision.attributes:
                    reasons = "; ".join(attribute.reasons)
                    lines.append(
                        f"    {attribute.attribute}: {attribute.outcome}"
                        f" ({reasons})"
                    )
            lines.append("")
        if self.maintenance_notes:
            lines.append("Maintenance hot path:")
            lines.extend("  " + note for note in self.maintenance_notes)
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"


def explain_derivation(
    view: ViewDefinition,
    database: Database,
    append_only: bool = False,
) -> DerivationReport:
    """Derive and narrate the auxiliary views for ``view``."""
    graph = ExtendedJoinGraph(view, database)
    aux_set = derive_auxiliary_views(view, database, graph, append_only)
    annotations = {
        table: graph.annotation(table).value or "(none)"
        for table in view.tables
    }
    need_sets = {
        table: tuple(graph.need(table)) for table in view.tables
    }
    tables = tuple(
        _table_decision(view, database, graph, aux_set, table, append_only)
        for table in view.tables
    )
    return DerivationReport(
        view=view,
        graph_rendering=graph.render(),
        root=graph.root,
        annotations=annotations,
        need_sets=need_sets,
        tables=tables,
        aggregate_notes=tuple(_aggregate_notes(view, append_only)),
        maintenance_notes=tuple(_maintenance_notes(graph, aux_set)),
    )


def _maintenance_notes(
    graph: ExtendedJoinGraph, aux_set: AuxiliaryViewSet
) -> list[str]:
    """How the maintainer will process deltas for this derivation."""
    order: list[str] = []
    stack = [graph.root]
    while stack:
        table = stack.pop()
        order.append(table)
        stack.extend(reversed(graph.children(table)))
    notes = [
        "deletions process root-to-leaves, insertions leaves-to-root: "
        + " -> ".join(order),
        "insert/delete pairs of identical rows coalesce away before any "
        "reduction work (final state is unchanged)",
    ]
    for aux in aux_set:
        if aux.reduced_by:
            deps = ", ".join(j.right_table for j in aux.reduced_by)
            notes.append(
                f"{aux.table} deltas join-reduce against maintained key "
                f"indexes of {deps} (no rebuilds)"
            )
    notes.append(
        "surviving deltas join only index-restricted neighbor rows, so "
        "per-transaction cost follows the delta, not the detail data"
    )
    notes.append(
        "transactions apply atomically: schema and append-only checks "
        "run before any mutation, and a mid-apply failure rolls {V} u X "
        "back to the pre-transaction state (perf counters: rollbacks, "
        "rows_undone)"
    )
    return notes


def _aggregate_notes(view: ViewDefinition, append_only: bool) -> list[str]:
    notes = []
    for item in view.aggregate_items:
        info = classify_aggregate(item.func, item.distinct, append_only)
        if item.distinct:
            detail = "DISTINCT makes it non-distributive: never CSMAS"
        elif info.is_csmas and info.companions:
            companions = " + ".join(c.value for c in info.companions)
            detail = f"CSMAS via {companions} (Table 2)"
        elif info.is_csmas:
            detail = "CSMAS"
            if append_only and item.func.value in ("MIN", "MAX"):
                detail = "CSMAS under the append-only relaxation (Section 4)"
        else:
            detail = (
                "non-CSMAS: not maintainable under deletions (Table 1); "
                "its attribute stays a regular attribute"
            )
        notes.append(f"{item.to_sql()}: {detail}")
    return notes


def _table_decision(
    view: ViewDefinition,
    database: Database,
    graph: ExtendedJoinGraph,
    aux_set: AuxiliaryViewSet,
    table: str,
    append_only: bool,
) -> TableDecision:
    reason = retention_reason(view, graph, table, append_only)
    if reason is None:
        return TableDecision(
            table=table,
            materialized=False,
            reason=(
                f"{table} transitively depends on every other base table, "
                "is in no Need set, and feeds no non-CSMAS aggregate "
                "(Section 3.3): changes propagate without it"
            ),
            attributes=(),
            reduced_by=(),
            compressed=False,
        )
    aux = aux_set.for_table(table)
    attributes = _attribute_decisions(view, database, table, aux, append_only)
    return TableDecision(
        table=table,
        materialized=True,
        reason=f"required: {reason}",
        attributes=attributes,
        reduced_by=tuple(j.right_table for j in aux.reduced_by),
        compressed=aux.is_compressed,
    )


_ROLE_TEXT = {
    "join": "used in a join condition",
    "group-by": "a group-by attribute of the view",
    "non-csmas": "feeds a non-CSMAS aggregate",
    "csmas-sum": "feeds a CSMAS SUM/AVG",
    "csmas-count": "feeds a CSMAS COUNT",
    "csmas-min": "feeds a MIN (foldable append-only)",
    "csmas-max": "feeds a MAX (foldable append-only)",
}


def _attribute_decisions(
    view: ViewDefinition,
    database: Database,
    table: str,
    aux,
    append_only: bool,
) -> tuple[AttributeDecision, ...]:
    kept, roles = attribute_roles(view, table, append_only)
    plan = aux.plan
    decisions = []
    for attribute in database.table(table).schema.names():
        if attribute not in kept:
            decisions.append(
                AttributeDecision(
                    table,
                    attribute,
                    "reduced away",
                    (
                        "neither preserved in the view nor used in a join "
                        "condition (local reduction)",
                    ),
                )
            )
            continue
        reasons = tuple(
            _ROLE_TEXT[role] for role in sorted(roles[attribute])
        )
        if attribute in plan.pinned:
            outcome = "pinned (regular attribute)"
        elif attribute in plan.folded_sums:
            outcome = f"folded into SUM({attribute})"
        elif attribute in plan.folded_mins or attribute in plan.folded_maxs:
            outcome = "folded into per-group extrema"
        else:
            outcome = "dropped (COUNT(*) subsumes it)"
        decisions.append(
            AttributeDecision(table, attribute, outcome, reasons)
        )
    return tuple(decisions)
