"""Local reduction and smart duplicate compression (Section 3.2, Alg. 3.1).

*Local reduction* keeps, for base table ``Ri``, only the attributes
preserved in ``V`` or involved in join conditions, and only the tuples
passing ``Ri``'s local selection conditions.

*Smart duplicate compression* then exploits the duplicate-eliminating
generalized projection: a ``COUNT(*)`` is added (unless superfluous) and
every attribute used *only* in CSMAS aggregates is replaced by the
distributive aggregates of Table 2 — in practice a single ``SUM`` per
attribute, since COUNT folds into the shared ``COUNT(*)``.  Attributes
used in non-CSMAS aggregates, join conditions, or group-by clauses stay
as regular (grouping) attributes.

When the auxiliary view retains the key of its base table every group
holds exactly one tuple, all added aggregates would be superfluous, and
the view *degenerates* into a PSJ auxiliary view (no compression) — the
situation of every dimension table joined on its key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregates import is_csmas
from repro.core.view import ViewDefinition
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column
from repro.engine.operators import AggregateItem, GroupByItem, ProjectionItem


@dataclass(frozen=True)
class CompressionPlan:
    """The shape of one auxiliary view after local reduction + Alg. 3.1.

    ``pinned`` attributes remain regular (and thus group the view);
    ``folded_sums`` are attributes whose CSMAS occurrences were replaced
    by ``SUM(attribute)``; ``include_count`` adds the shared ``COUNT(*)``.
    ``degenerate`` marks the PSJ degeneration (key retained, no
    compression).  ``dropped`` lists locally-reduced-in attributes whose
    only use was a CSMAS ``COUNT`` — the count column subsumes them
    entirely, so they are not stored at all.
    """

    table: str
    pinned: tuple[str, ...]
    folded_sums: tuple[str, ...]
    include_count: bool
    count_alias: str
    degenerate: bool
    dropped: tuple[str, ...] = ()
    folded_mins: tuple[str, ...] = ()
    folded_maxs: tuple[str, ...] = ()

    @property
    def is_compressed(self) -> bool:
        return self.include_count or bool(self.folded_sums)

    def sum_alias(self, attribute: str) -> str:
        return f"sum_{attribute}"

    def min_alias(self, attribute: str) -> str:
        return f"min_{attribute}"

    def max_alias(self, attribute: str) -> str:
        return f"max_{attribute}"

    def projection_items(self) -> tuple[ProjectionItem, ...]:
        """The generalized projection ``Π_{A_Ri}`` defining the aux view."""
        items: list[ProjectionItem] = [
            GroupByItem(Column(attribute, self.table))
            for attribute in self.pinned
        ]
        items.extend(
            AggregateItem(
                AggregateFunction.SUM,
                Column(attribute, self.table),
                alias=self.sum_alias(attribute),
            )
            for attribute in self.folded_sums
        )
        items.extend(
            AggregateItem(
                AggregateFunction.MIN,
                Column(attribute, self.table),
                alias=self.min_alias(attribute),
            )
            for attribute in self.folded_mins
        )
        items.extend(
            AggregateItem(
                AggregateFunction.MAX,
                Column(attribute, self.table),
                alias=self.max_alias(attribute),
            )
            for attribute in self.folded_maxs
        )
        if self.include_count:
            items.append(
                AggregateItem(
                    AggregateFunction.COUNT, None, alias=self.count_alias
                )
            )
        return tuple(items)


def attribute_roles(
    view: ViewDefinition, table: str, append_only: bool = False
) -> tuple[tuple[str, ...], dict[str, set[str]]]:
    """Locally-reduced attribute list of ``table`` and each one's roles.

    Returns ``(kept, roles)`` where ``kept`` is the ordered attribute
    list after local reduction (preserved in V or in join conditions)
    and ``roles[attr] ⊆ {"join", "group-by", "non-csmas", "csmas-sum",
    "csmas-count", "csmas-min", "csmas-max"}``.  Under ``append_only``
    (the paper's old-detail-data relaxation) MIN and MAX become CSMAS
    and contribute the extremum roles instead of pinning.
    """
    roles: dict[str, set[str]] = {}
    order: list[str] = []

    def touch(attribute: str, role: str) -> None:
        if attribute not in roles:
            roles[attribute] = set()
            order.append(attribute)
        roles[attribute].add(role)

    for attribute in view.join_attributes(table):
        touch(attribute, "join")
    for attribute in view.group_by_attributes(table):
        touch(attribute, "group-by")
    for item in view.aggregated_attributes(table):
        if not is_csmas(item, append_only):
            touch(item.column.name, "non-csmas")
        elif item.func is AggregateFunction.COUNT:
            touch(item.column.name, "csmas-count")
        elif item.func is AggregateFunction.MIN:
            touch(item.column.name, "csmas-min")
        elif item.func is AggregateFunction.MAX:
            touch(item.column.name, "csmas-max")
        else:
            touch(item.column.name, "csmas-sum")
    return tuple(order), roles


_PINNING_ROLES = frozenset({"join", "group-by", "non-csmas"})


def plan_compression(
    view: ViewDefinition,
    table: str,
    key: str,
    count_alias: str = "cnt",
    append_only: bool = False,
) -> CompressionPlan:
    """Apply Algorithm 3.1 to the locally-reduced attributes of ``table``.

    ``append_only`` applies the paper's old-detail-data relaxation:
    MIN/MAX become completely self-maintainable under insert-only
    streams and fold into per-group extrema instead of pinning.
    """
    kept, roles = attribute_roles(view, table, append_only)
    pinned = tuple(a for a in kept if roles[a] & _PINNING_ROLES)

    if key in pinned:
        # The key pins every group to a single tuple: COUNT(*) and all
        # replacement aggregates would be superfluous, so the view
        # degenerates into a PSJ auxiliary view storing raw attributes.
        return CompressionPlan(
            table,
            pinned=kept,
            folded_sums=(),
            include_count=False,
            count_alias=count_alias,
            degenerate=True,
        )

    folded = tuple(
        a for a in kept if a not in pinned and "csmas-sum" in roles[a]
    )
    folded_mins = tuple(
        a for a in kept if a not in pinned and "csmas-min" in roles[a]
    )
    folded_maxs = tuple(
        a for a in kept if a not in pinned and "csmas-max" in roles[a]
    )
    dropped = tuple(
        a
        for a in kept
        if a not in pinned
        and a not in folded
        and a not in folded_mins
        and a not in folded_maxs
    )
    alias = count_alias
    taken = (
        set(pinned)
        | {f"sum_{a}" for a in folded}
        | {f"min_{a}" for a in folded_mins}
        | {f"max_{a}" for a in folded_maxs}
    )
    while alias in taken:
        alias += "_"
    return CompressionPlan(
        table,
        pinned=pinned,
        folded_sums=folded,
        include_count=True,
        count_alias=alias,
        degenerate=False,
        dropped=dropped,
        folded_mins=folded_mins,
        folded_maxs=folded_maxs,
    )
