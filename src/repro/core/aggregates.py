"""Classification of SQL aggregates (Section 3.1, Tables 1 and 2).

An aggregate ``f(a)`` is *self-maintainable* (SMA) w.r.t. a change kind
when its new value is computable from its old value plus the change.  A
*self-maintainable aggregate set* (SMAS) may lean on companion aggregates
(SUM needs a COUNT to witness group existence under deletions).  A
*completely self-maintainable aggregate set* (CSMAS, Definition 1) is a
SMAS for both insertions and deletions.

Table 2 replaces every CSMAS-able aggregate by distributive aggregates:
``COUNT → COUNT(*)``, ``SUM → SUM, COUNT(*)``, ``AVG → SUM, COUNT(*)``.
MIN/MAX and any DISTINCT aggregate are non-CSMAS and are never replaced.

The ``append_only`` flag implements the paper's future-work relaxation
for *old detail data* (Section 4): under insert-only streams only
insertions matter, so MIN and MAX join the completely self-maintainable
club.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.engine.aggregates import AggregateFunction
from repro.engine.operators import AggregateItem


class AggregateClass(enum.Enum):
    """Table 2's verdict for one aggregate."""

    CSMAS = "CSMAS"
    NON_CSMAS = "non-CSMAS"


@dataclass(frozen=True)
class AggregateClassification:
    """Everything Tables 1 and 2 record about one aggregate occurrence."""

    func: AggregateFunction
    distinct: bool
    sma_insert: bool
    sma_delete: bool
    smas_insert: bool
    smas_delete: bool
    companions: tuple[AggregateFunction, ...]
    aggregate_class: AggregateClass

    @property
    def is_csmas(self) -> bool:
        return self.aggregate_class is AggregateClass.CSMAS


def classify_aggregate(
    func: AggregateFunction,
    distinct: bool = False,
    append_only: bool = False,
) -> AggregateClassification:
    """Classify one aggregate per Tables 1 and 2 of the paper."""
    if distinct:
        # The DISTINCT keyword makes any aggregate non-distributive and
        # therefore non-CSMAS (Section 3.1).
        return AggregateClassification(
            func,
            True,
            sma_insert=False,
            sma_delete=False,
            smas_insert=False,
            smas_delete=False,
            companions=(),
            aggregate_class=AggregateClass.NON_CSMAS,
        )
    if func is AggregateFunction.COUNT:
        return AggregateClassification(
            func,
            False,
            sma_insert=True,
            sma_delete=True,
            smas_insert=True,
            smas_delete=True,
            companions=(),
            aggregate_class=AggregateClass.CSMAS,
        )
    if func is AggregateFunction.SUM:
        return AggregateClassification(
            func,
            False,
            sma_insert=True,
            sma_delete=False,
            smas_insert=True,
            smas_delete=True,  # with COUNT included (Table 1)
            companions=(AggregateFunction.COUNT,),
            aggregate_class=AggregateClass.CSMAS,
        )
    if func is AggregateFunction.AVG:
        return AggregateClassification(
            func,
            False,
            sma_insert=False,
            sma_delete=False,
            smas_insert=True,
            smas_delete=True,  # with COUNT and SUM included (Table 1)
            companions=(AggregateFunction.SUM, AggregateFunction.COUNT),
            aggregate_class=AggregateClass.CSMAS,
        )
    # MIN / MAX.
    maintainable_on_delete = append_only
    return AggregateClassification(
        func,
        False,
        sma_insert=True,
        sma_delete=maintainable_on_delete,
        smas_insert=True,
        smas_delete=maintainable_on_delete,
        companions=(),
        aggregate_class=(
            AggregateClass.CSMAS if append_only else AggregateClass.NON_CSMAS
        ),
    )


def is_csmas(item: AggregateItem, append_only: bool = False) -> bool:
    """Whether an aggregate occurrence is completely self-maintainable."""
    return classify_aggregate(item.func, item.distinct, append_only).is_csmas


def replacement_aggregates(item: AggregateItem) -> tuple[AggregateItem, ...]:
    """Table 2's replacement of a CSMAS aggregate by distributive ones.

    ``COUNT(a)`` becomes ``COUNT(*)`` (no nulls, Section 3.1); ``SUM(a)``
    and ``AVG(a)`` become ``SUM(a), COUNT(*)``.  Non-CSMAS aggregates are
    returned unchanged.  Output aliases are derived from the argument so
    repeated replacements of aggregates over the same attribute coincide.
    """
    if not is_csmas(item):
        return (item,)
    if item.func is AggregateFunction.COUNT:
        return (count_star_item(),)
    # SUM and AVG both decompose into SUM + COUNT(*).
    sum_item = AggregateItem(
        AggregateFunction.SUM,
        item.column,
        distinct=False,
        alias=f"sum_{item.column.qualifier}_{item.column.name}",
    )
    return (sum_item, count_star_item())


def count_star_item(alias: str = "cnt") -> AggregateItem:
    """The ``COUNT(*)`` aggregate that smart duplicate compression adds."""
    return AggregateItem(AggregateFunction.COUNT, None, distinct=False, alias=alias)


def classification_table(append_only: bool = False) -> list[dict[str, object]]:
    """Rows of Tables 1 and 2, for the benchmark harness to print."""
    rows = []
    for func in AggregateFunction:
        info = classify_aggregate(func, append_only=append_only)
        if func is AggregateFunction.COUNT:
            replaced = "COUNT(*)"
        elif info.is_csmas and func in (AggregateFunction.SUM, AggregateFunction.AVG):
            replaced = "SUM, COUNT(*)"
        elif info.is_csmas:
            replaced = func.value  # append-only MIN/MAX maintain themselves
        else:
            replaced = "Not replaced"
        rows.append(
            {
                "aggregate": func.value,
                "sma": (info.sma_insert, info.sma_delete),
                "smas": (info.smas_insert, info.smas_delete),
                "companions": tuple(c.value for c in info.companions),
                "replaced_by": replaced,
                "class": info.aggregate_class.value,
            }
        )
    return rows
