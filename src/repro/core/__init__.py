"""The paper's primary contribution: minimal self-maintainable GPSJ views.

Public surface:

* :class:`~repro.core.view.ViewDefinition` — a GPSJ view
  ``Π_A σ_S (R1 ⋈ ... ⋈ Rn)``.
* :func:`~repro.core.derivation.derive_auxiliary_views` — Algorithm 3.2:
  the unique minimal set of auxiliary views making ``{V} ∪ X``
  self-maintainable.
* :class:`~repro.core.maintenance.SelfMaintainer` — maintains ``V`` and
  ``X`` under source deltas without base-table access.
"""

from repro.core.view import JoinCondition, ViewDefinition, ViewError
from repro.core.aggregates import (
    AggregateClass,
    classify_aggregate,
    replacement_aggregates,
)
from repro.core.joingraph import ExtendedJoinGraph, JoinGraphError
from repro.core.derivation import AuxiliaryView, AuxiliaryViewSet, derive_auxiliary_views
from repro.core.maintenance import SelfMaintainer

__all__ = [
    "ViewDefinition",
    "JoinCondition",
    "ViewError",
    "AggregateClass",
    "classify_aggregate",
    "replacement_aggregates",
    "ExtendedJoinGraph",
    "JoinGraphError",
    "AuxiliaryView",
    "AuxiliaryViewSet",
    "derive_auxiliary_views",
    "SelfMaintainer",
]
