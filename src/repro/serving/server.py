"""The stdlib HTTP front: warehouse-as-a-service.

:class:`WarehouseService` owns the moving parts — the warehouse, one
:class:`~repro.serving.snapshots.VersionedViewStore` per registered
view, and the single-writer
:class:`~repro.serving.applyqueue.ApplyQueue` — and implements each
endpoint as a plain method returning ``(status, content-type, body)``,
so tests can drive the service without sockets.
:class:`WarehouseServer` binds it to a ``ThreadingHTTPServer``.

Endpoints::

    GET  /healthz                  liveness + SLO state + backlog
    GET  /query?view=V[&version=N] snapshot read (rows + version pin)
    POST /apply[?mode=sync|async]  submit a transaction (JSON deltas)
    POST /refresh                  barrier: drain the apply queue
    GET  /explain?view=V           the view's physical plans (text)
    GET  /metrics                  Prometheus text exposition
    GET  /events[?level=L&limit=N] structured event log (JSON)
    GET  /trace[?format=jsonl|text] stitched trace trees

Read isolation: ``/query`` touches only the immutable snapshot chain —
never the maintainer the writer is mutating — so any number of reader
threads proceed while a transaction applies.  ``/metrics`` and
``/explain`` do read writer-side structures; they snapshot under a
short retry loop because the only hazard is a dict growing mid-export
(CPython raises ``RuntimeError``; the next attempt sees a consistent
picture).

Tracing: when the warehouse carries a
:class:`~repro.obs.trace.Tracer`, each request gets a root span
(``http:apply``, ``http:query``, ...) and ``/apply`` hands its span's
``traceparent`` to the queue, so the micro-batch span and every
maintainer transaction it covers join the request's tree
(``/trace`` serves the stitched result).  A rolling
:class:`~repro.obs.health.SLOTracker` folds request outcomes into the
availability/latency state ``/healthz`` reports.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from urllib.parse import parse_qs, urlsplit

from repro.engine.deltas import Delta, Transaction
from repro.obs.health import SLOTracker
from repro.obs.log import EVENT_SCHEMA_VERSION, LEVELS
from repro.obs.metrics import MetricsRegistry, READ_LATENCY_MS_BUCKETS
from repro.serving.applyqueue import ApplyQueue, BackpressureError
from repro.serving.snapshots import (
    SnapshotError,
    VersionedViewStore,
    VersionGoneError,
)


class ServiceError(Exception):
    """A client error with an HTTP status attached."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class WarehouseService:
    """The endpoint logic, independent of the HTTP transport."""

    def __init__(
        self,
        warehouse,
        max_pending: int = 256,
        max_batch: int = 16,
        retain_versions: int = 64,
        sync_timeout: float = 30.0,
        slo: SLOTracker | None = None,
    ):
        self.warehouse = warehouse
        self.registry = MetricsRegistry()
        self._sync_timeout = sync_timeout
        self.tracer = getattr(warehouse, "tracer", None)
        self.events = getattr(warehouse, "events", None)
        self.slo = slo if slo is not None else SLOTracker()
        self._read_latency = self.registry.histogram(
            "repro_serving_read_latency_ms", READ_LATENCY_MS_BUCKETS
        )
        self._read_counter = self.registry.counter("repro_serving_reads_total")
        self.stores: dict[str, VersionedViewStore] = {}
        for name in warehouse.view_names:
            maintainer = warehouse.maintainer(name)
            self.stores[name] = VersionedViewStore(
                name,
                maintainer.reconstructor.output_schema,
                maintainer.group_rows(),
                having=maintainer.view.having,
                retain=retain_versions,
            )
        self.queue = ApplyQueue(
            warehouse,
            self.stores,
            registry=self.registry,
            max_pending=max_pending,
            max_batch=max_batch,
            tracer=self.tracer,
            events=self.events,
        )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "WarehouseService":
        self.queue.start()
        return self

    def stop(self) -> None:
        self.queue.stop()

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------

    def healthz(self) -> tuple[int, str, bytes]:
        slo_state = self.slo.state()
        body = {
            "status": "ok" if slo_state["healthy"] else "degraded",
            "slo": slo_state,
            "views": {
                name: {
                    "version": store.latest_version,
                    "txn_watermark": store.latest_watermark,
                }
                for name, store in self.stores.items()
            },
            "queue_depth": self.queue.depth,
            "accepted": self.queue.accepted,
            "applied": self.queue.applied,
            "lag_transactions": max(
                0, self.queue.accepted - self.queue.applied
            ),
            "last_error": self.queue.last_error,
        }
        return 200, "application/json", _json_bytes(body)

    def _begin_request(self, label: str, **attrs):
        """Root span for one HTTP request, or None when untraced."""
        if self.tracer is None:
            return None
        return self.tracer.begin(label, kind="request", **attrs)

    def _finish_request(self, trace, status: str = "ok") -> None:
        if trace is not None:
            self.tracer.finish(trace, status)

    def query(self, view: str, version: int | None = None) -> tuple[int, str, bytes]:
        store = self.stores.get(view)
        if store is None:
            raise ServiceError(404, f"unknown view {view!r}")
        trace = self._begin_request("http:query", view=view)
        started = perf_counter()
        try:
            snapshot = store.snapshot(version)
        except VersionGoneError as error:
            self._finish_request(trace, "error")
            raise ServiceError(410, str(error)) from None
        except SnapshotError as error:
            self._finish_request(trace, "error")
            raise ServiceError(404, str(error)) from None
        relation = snapshot.relation()
        body = {
            "view": view,
            "version": snapshot.version,
            "txn_watermark": snapshot.txn_watermark,
            "columns": list(snapshot.columns),
            "rows": [list(row) for row in relation.rows],
        }
        payload = _json_bytes(body)
        elapsed_ms = (perf_counter() - started) * 1000.0
        self._read_latency.observe(elapsed_ms)
        self._read_counter.inc()
        self.slo.record(True, elapsed_ms)
        if trace is not None:
            trace.root.rows_out = len(body["rows"])
        self._finish_request(trace)
        return 200, "application/json", payload

    def apply(self, payload: bytes, mode: str = "sync") -> tuple[int, str, bytes]:
        if mode not in ("sync", "async"):
            raise ServiceError(400, f"mode must be sync or async, not {mode!r}")
        transaction = _parse_transaction(payload)
        trace = self._begin_request(
            "http:apply",
            mode=mode,
            rows=sum(len(d.inserted) + len(d.deleted) for d in transaction),
        )
        started = perf_counter()
        ctx = None if trace is None else trace.context()
        try:
            ticket = self.queue.submit(transaction, ctx=ctx)
        except BackpressureError as error:
            self.slo.record(False, (perf_counter() - started) * 1000.0)
            self._finish_request(trace, "error")
            raise ServiceError(503, str(error)) from None
        if mode == "async":
            self.slo.record(True, (perf_counter() - started) * 1000.0)
            self._finish_request(trace)
            body = {"seq": ticket.seq, "accepted": True}
            return 202, "application/json", _json_bytes(body)
        try:
            ticket.wait(self._sync_timeout)
        except TimeoutError as error:
            self.slo.record(False, (perf_counter() - started) * 1000.0)
            self._finish_request(trace, "error")
            raise ServiceError(504, str(error)) from None
        except Exception as error:
            self.slo.record(False, (perf_counter() - started) * 1000.0)
            self._finish_request(trace, "error")
            raise ServiceError(
                422, f"transaction rejected: {type(error).__name__}: {error}"
            ) from None
        self.slo.record(True, (perf_counter() - started) * 1000.0)
        self._finish_request(trace)
        body = {
            "seq": ticket.seq,
            "version": ticket.version,
            "txn_watermark": ticket.watermark,
        }
        return 200, "application/json", _json_bytes(body)

    def refresh(self) -> tuple[int, str, bytes]:
        try:
            ticket = self.queue.flush(self._sync_timeout)
        except TimeoutError as error:
            raise ServiceError(504, str(error)) from None
        body = {"version": ticket.version, "txn_watermark": ticket.watermark}
        return 200, "application/json", _json_bytes(body)

    def explain(self, view: str | None = None) -> tuple[int, str, bytes]:
        if view is not None and view not in self.stores:
            raise ServiceError(404, f"unknown view {view!r}")
        text = _retry_on_runtime_error(self.warehouse.explain_plans)
        return 200, "text/plain; charset=utf-8", text.encode()

    def metrics(self) -> tuple[int, str, bytes]:
        def scrape() -> str:
            merged = self.warehouse.metrics_registry()
            merged.merge(self.registry)
            return merged.render_prometheus()

        text = _retry_on_runtime_error(scrape)
        return 200, "text/plain; version=0.0.4; charset=utf-8", text.encode()

    def export_events(
        self, level: str | None = None, limit: int | None = None
    ) -> tuple[int, str, bytes]:
        """The warehouse's structured event log as JSON."""
        if self.events is None:
            raise ServiceError(404, "no event log attached")
        if level is not None and level not in LEVELS:
            raise ServiceError(
                400, f"level must be one of {', '.join(LEVELS)}"
            )
        selected = self.events.events(level=level, limit=limit)
        body = {
            "schema": EVENT_SCHEMA_VERSION,
            "totals": self.events.totals,
            "events": [event.to_dict() for event in selected],
        }
        return 200, "application/json", _json_bytes(body)

    def export_traces(self, fmt: str = "jsonl") -> tuple[int, str, bytes]:
        """Finished traces, stitched into connected trees — ``jsonl``
        (one span record per line) or ``text`` (rendered flame trees)."""
        if self.tracer is None:
            raise ServiceError(404, "no tracer attached")
        if fmt not in ("jsonl", "text"):
            raise ServiceError(400, f"format must be jsonl or text, not {fmt!r}")
        stitched = self.tracer.stitched()
        if fmt == "text":
            text = "\n\n".join(trace.render() for trace in stitched)
            return 200, "text/plain; charset=utf-8", text.encode()
        lines = [
            json.dumps(record, sort_keys=True)
            for trace in stitched
            for record in trace.to_dicts()
        ]
        body = ("\n".join(lines) + "\n") if lines else ""
        return 200, "application/jsonl", body.encode()


def _retry_on_runtime_error(fn, attempts: int = 5):
    """Run ``fn``, retrying the rare 'dict changed size during
    iteration' race between a scrape and the writer thread."""
    for attempt in range(attempts):
        try:
            return fn()
        except RuntimeError:
            if attempt == attempts - 1:
                raise
    raise AssertionError("unreachable")  # pragma: no cover


def _json_bytes(value) -> bytes:
    return json.dumps(value).encode()


def _parse_transaction(payload: bytes) -> Transaction:
    try:
        body = json.loads(payload or b"{}")
    except json.JSONDecodeError as error:
        raise ServiceError(400, f"invalid JSON: {error}") from None
    deltas = body.get("deltas")
    if not isinstance(deltas, list) or not deltas:
        raise ServiceError(400, "body must carry a non-empty 'deltas' list")
    parsed = []
    for entry in deltas:
        if not isinstance(entry, dict) or "table" not in entry:
            raise ServiceError(400, "each delta needs a 'table'")
        try:
            parsed.append(
                Delta(
                    str(entry["table"]),
                    tuple(tuple(r) for r in entry.get("inserted", ())),
                    tuple(tuple(r) for r in entry.get("deleted", ())),
                )
            )
        except TypeError as error:
            raise ServiceError(400, f"bad delta rows: {error}") from None
    try:
        return Transaction.of(*parsed)
    except ValueError as error:
        raise ServiceError(400, str(error)) from None


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the service; one instance per request."""

    service: WarehouseService  # installed by WarehouseServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        url = urlsplit(self.path)
        params = parse_qs(url.query)
        try:
            if url.path == "/healthz":
                self._reply(*self.service.healthz())
            elif url.path == "/metrics":
                self._reply(*self.service.metrics())
            elif url.path == "/query":
                view = _param(params, "view")
                version = _param(params, "version", optional=True)
                pinned = int(version) if version is not None else None
                self._reply(*self.service.query(view, pinned))
            elif url.path == "/explain":
                view = _param(params, "view", optional=True)
                self._reply(*self.service.explain(view))
            elif url.path == "/events":
                level = _param(params, "level", optional=True)
                limit = _param(params, "limit", optional=True)
                self._reply(
                    *self.service.export_events(
                        level, int(limit) if limit is not None else None
                    )
                )
            elif url.path == "/trace":
                fmt = _param(params, "format", optional=True) or "jsonl"
                self._reply(*self.service.export_traces(fmt))
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except ServiceError as error:
            self._error(error.status, str(error))
        except Exception as error:  # pragma: no cover - defensive boundary
            self._error(500, f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        url = urlsplit(self.path)
        params = parse_qs(url.query)
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = self.rfile.read(length) if length else b""
            if url.path == "/apply":
                mode = _param(params, "mode", optional=True) or "sync"
                self._reply(*self.service.apply(payload, mode))
            elif url.path == "/refresh":
                self._reply(*self.service.refresh())
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except ServiceError as error:
            self._error(error.status, str(error))
        except Exception as error:  # pragma: no cover - defensive boundary
            self._error(500, f"{type(error).__name__}: {error}")

    # ------------------------------------------------------------------

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(
            status, "application/json", _json_bytes({"error": message})
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default stderr-per-request noise."""


def _param(params: dict, name: str, optional: bool = False) -> str | None:
    values = params.get(name)
    if not values:
        if optional:
            return None
        raise ServiceError(400, f"missing query parameter {name!r}")
    return values[0]


class WarehouseServer:
    """A :class:`WarehouseService` bound to a ``ThreadingHTTPServer``.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`/:attr:`url`).  Use as a context manager::

        with WarehouseServer(warehouse) as server:
            urllib.request.urlopen(server.url + "/healthz")
    """

    def __init__(
        self,
        warehouse,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_options,
    ):
        self.service = WarehouseService(warehouse, **service_options)
        handler = type("BoundHandler", (_Handler,), {"service": self.service})
        self._http = ThreadingHTTPServer((host, port), handler)
        self._http.daemon_threads = True
        self.host, self.port = self._http.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "WarehouseServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self.service.start()
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-serving-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._http.shutdown()
        self._thread.join(10)
        self._thread = None
        self._http.server_close()
        self.service.stop()

    def serve_forever(self) -> None:
        """Run in the calling thread until interrupted (the CLI path)."""
        self.service.start()
        try:
            self._http.serve_forever()
        finally:
            self._http.server_close()
            self.service.stop()

    def __enter__(self) -> "WarehouseServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
