"""The stdlib HTTP front: warehouse-as-a-service.

:class:`WarehouseService` owns the moving parts — the warehouse, one
:class:`~repro.serving.snapshots.VersionedViewStore` per registered
view, and the single-writer
:class:`~repro.serving.applyqueue.ApplyQueue` — and implements each
endpoint as a plain method returning ``(status, content-type, body)``,
so tests can drive the service without sockets.
:class:`WarehouseServer` binds it to a ``ThreadingHTTPServer``.

Endpoints::

    GET  /healthz                  liveness + versions + backlog
    GET  /query?view=V[&version=N] snapshot read (rows + version pin)
    POST /apply[?mode=sync|async]  submit a transaction (JSON deltas)
    POST /refresh                  barrier: drain the apply queue
    GET  /explain?view=V           the view's physical plans (text)
    GET  /metrics                  Prometheus text exposition

Read isolation: ``/query`` touches only the immutable snapshot chain —
never the maintainer the writer is mutating — so any number of reader
threads proceed while a transaction applies.  ``/metrics`` and
``/explain`` do read writer-side structures; they snapshot under a
short retry loop because the only hazard is a dict growing mid-export
(CPython raises ``RuntimeError``; the next attempt sees a consistent
picture).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from urllib.parse import parse_qs, urlsplit

from repro.engine.deltas import Delta, Transaction
from repro.obs.metrics import MetricsRegistry, READ_LATENCY_MS_BUCKETS
from repro.serving.applyqueue import ApplyQueue, BackpressureError
from repro.serving.snapshots import (
    SnapshotError,
    VersionedViewStore,
    VersionGoneError,
)


class ServiceError(Exception):
    """A client error with an HTTP status attached."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class WarehouseService:
    """The endpoint logic, independent of the HTTP transport."""

    def __init__(
        self,
        warehouse,
        max_pending: int = 256,
        max_batch: int = 16,
        retain_versions: int = 64,
        sync_timeout: float = 30.0,
    ):
        self.warehouse = warehouse
        self.registry = MetricsRegistry()
        self._sync_timeout = sync_timeout
        self._obs_lock = threading.Lock()
        self._read_latency = self.registry.histogram(
            "repro_serving_read_latency_ms", READ_LATENCY_MS_BUCKETS
        )
        self._read_counter = self.registry.counter("repro_serving_reads_total")
        self.stores: dict[str, VersionedViewStore] = {}
        for name in warehouse.view_names:
            maintainer = warehouse.maintainer(name)
            self.stores[name] = VersionedViewStore(
                name,
                maintainer.reconstructor.output_schema,
                maintainer.group_rows(),
                having=maintainer.view.having,
                retain=retain_versions,
            )
        self.queue = ApplyQueue(
            warehouse,
            self.stores,
            registry=self.registry,
            max_pending=max_pending,
            max_batch=max_batch,
        )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "WarehouseService":
        self.queue.start()
        return self

    def stop(self) -> None:
        self.queue.stop()

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------

    def healthz(self) -> tuple[int, str, bytes]:
        body = {
            "status": "ok",
            "views": {
                name: {
                    "version": store.latest_version,
                    "txn_watermark": store.latest_watermark,
                }
                for name, store in self.stores.items()
            },
            "queue_depth": self.queue.depth,
            "accepted": self.queue.accepted,
            "applied": self.queue.applied,
            "last_error": self.queue.last_error,
        }
        return 200, "application/json", _json_bytes(body)

    def query(self, view: str, version: int | None = None) -> tuple[int, str, bytes]:
        store = self.stores.get(view)
        if store is None:
            raise ServiceError(404, f"unknown view {view!r}")
        started = perf_counter()
        try:
            snapshot = store.snapshot(version)
        except VersionGoneError as error:
            raise ServiceError(410, str(error)) from None
        except SnapshotError as error:
            raise ServiceError(404, str(error)) from None
        relation = snapshot.relation()
        body = {
            "view": view,
            "version": snapshot.version,
            "txn_watermark": snapshot.txn_watermark,
            "columns": list(snapshot.columns),
            "rows": [list(row) for row in relation.rows],
        }
        payload = _json_bytes(body)
        elapsed_ms = (perf_counter() - started) * 1000.0
        # Histograms are not atomic under concurrent observes; reads come
        # from many handler threads, so serialize the observation.
        with self._obs_lock:
            self._read_latency.observe(elapsed_ms)
            self._read_counter.inc()
        return 200, "application/json", payload

    def apply(self, payload: bytes, mode: str = "sync") -> tuple[int, str, bytes]:
        if mode not in ("sync", "async"):
            raise ServiceError(400, f"mode must be sync or async, not {mode!r}")
        transaction = _parse_transaction(payload)
        try:
            ticket = self.queue.submit(transaction)
        except BackpressureError as error:
            raise ServiceError(503, str(error)) from None
        if mode == "async":
            body = {"seq": ticket.seq, "accepted": True}
            return 202, "application/json", _json_bytes(body)
        try:
            ticket.wait(self._sync_timeout)
        except TimeoutError as error:
            raise ServiceError(504, str(error)) from None
        except Exception as error:
            raise ServiceError(
                422, f"transaction rejected: {type(error).__name__}: {error}"
            ) from None
        body = {
            "seq": ticket.seq,
            "version": ticket.version,
            "txn_watermark": ticket.watermark,
        }
        return 200, "application/json", _json_bytes(body)

    def refresh(self) -> tuple[int, str, bytes]:
        try:
            ticket = self.queue.flush(self._sync_timeout)
        except TimeoutError as error:
            raise ServiceError(504, str(error)) from None
        body = {"version": ticket.version, "txn_watermark": ticket.watermark}
        return 200, "application/json", _json_bytes(body)

    def explain(self, view: str | None = None) -> tuple[int, str, bytes]:
        if view is not None and view not in self.stores:
            raise ServiceError(404, f"unknown view {view!r}")
        text = _retry_on_runtime_error(self.warehouse.explain_plans)
        return 200, "text/plain; charset=utf-8", text.encode()

    def metrics(self) -> tuple[int, str, bytes]:
        def scrape() -> str:
            merged = self.warehouse.metrics_registry()
            with self._obs_lock:
                merged.merge(self.registry)
            return merged.render_prometheus()

        text = _retry_on_runtime_error(scrape)
        return 200, "text/plain; version=0.0.4; charset=utf-8", text.encode()


def _retry_on_runtime_error(fn, attempts: int = 5):
    """Run ``fn``, retrying the rare 'dict changed size during
    iteration' race between a scrape and the writer thread."""
    for attempt in range(attempts):
        try:
            return fn()
        except RuntimeError:
            if attempt == attempts - 1:
                raise
    raise AssertionError("unreachable")  # pragma: no cover


def _json_bytes(value) -> bytes:
    return json.dumps(value).encode()


def _parse_transaction(payload: bytes) -> Transaction:
    try:
        body = json.loads(payload or b"{}")
    except json.JSONDecodeError as error:
        raise ServiceError(400, f"invalid JSON: {error}") from None
    deltas = body.get("deltas")
    if not isinstance(deltas, list) or not deltas:
        raise ServiceError(400, "body must carry a non-empty 'deltas' list")
    parsed = []
    for entry in deltas:
        if not isinstance(entry, dict) or "table" not in entry:
            raise ServiceError(400, "each delta needs a 'table'")
        try:
            parsed.append(
                Delta(
                    str(entry["table"]),
                    tuple(tuple(r) for r in entry.get("inserted", ())),
                    tuple(tuple(r) for r in entry.get("deleted", ())),
                )
            )
        except TypeError as error:
            raise ServiceError(400, f"bad delta rows: {error}") from None
    try:
        return Transaction.of(*parsed)
    except ValueError as error:
        raise ServiceError(400, str(error)) from None


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the service; one instance per request."""

    service: WarehouseService  # installed by WarehouseServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        url = urlsplit(self.path)
        params = parse_qs(url.query)
        try:
            if url.path == "/healthz":
                self._reply(*self.service.healthz())
            elif url.path == "/metrics":
                self._reply(*self.service.metrics())
            elif url.path == "/query":
                view = _param(params, "view")
                version = _param(params, "version", optional=True)
                pinned = int(version) if version is not None else None
                self._reply(*self.service.query(view, pinned))
            elif url.path == "/explain":
                view = _param(params, "view", optional=True)
                self._reply(*self.service.explain(view))
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except ServiceError as error:
            self._error(error.status, str(error))
        except Exception as error:  # pragma: no cover - defensive boundary
            self._error(500, f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        url = urlsplit(self.path)
        params = parse_qs(url.query)
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = self.rfile.read(length) if length else b""
            if url.path == "/apply":
                mode = _param(params, "mode", optional=True) or "sync"
                self._reply(*self.service.apply(payload, mode))
            elif url.path == "/refresh":
                self._reply(*self.service.refresh())
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except ServiceError as error:
            self._error(error.status, str(error))
        except Exception as error:  # pragma: no cover - defensive boundary
            self._error(500, f"{type(error).__name__}: {error}")

    # ------------------------------------------------------------------

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(
            status, "application/json", _json_bytes({"error": message})
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default stderr-per-request noise."""


def _param(params: dict, name: str, optional: bool = False) -> str | None:
    values = params.get(name)
    if not values:
        if optional:
            return None
        raise ServiceError(400, f"missing query parameter {name!r}")
    return values[0]


class WarehouseServer:
    """A :class:`WarehouseService` bound to a ``ThreadingHTTPServer``.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`/:attr:`url`).  Use as a context manager::

        with WarehouseServer(warehouse) as server:
            urllib.request.urlopen(server.url + "/healthz")
    """

    def __init__(
        self,
        warehouse,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_options,
    ):
        self.service = WarehouseService(warehouse, **service_options)
        handler = type("BoundHandler", (_Handler,), {"service": self.service})
        self._http = ThreadingHTTPServer((host, port), handler)
        self._http.daemon_threads = True
        self.host, self.port = self._http.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "WarehouseServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self.service.start()
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-serving-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._http.shutdown()
        self._thread.join(10)
        self._thread = None
        self._http.server_close()
        self.service.stop()

    def serve_forever(self) -> None:
        """Run in the calling thread until interrupted (the CLI path)."""
        self.service.start()
        try:
            self._http.serve_forever()
        finally:
            self._http.server_close()
            self.service.stop()

    def __enter__(self) -> "WarehouseServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
