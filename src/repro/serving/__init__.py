"""Warehouse-as-a-service: snapshot-isolated concurrent serving.

The serving layer turns the single-threaded warehouse library into a
concurrent system with one invariant: **readers never observe a torn
view**.  Three pieces enforce it:

* :mod:`repro.serving.snapshots` — copy-on-write version chains.  Every
  committed warehouse transaction publishes an immutable patch (built
  from the undo log's forward redo records), so a reader pinned at
  version *v* reconstructs exactly the summary state at *v* without
  taking any lock the writer holds.
* :mod:`repro.serving.applyqueue` — the single-writer apply queue.  All
  mutations funnel through one worker thread that micro-batches queued
  transactions, coalesces them into one net transaction (the
  deferred-maintenance coalesce path), applies it atomically, and only
  then publishes the next snapshot version.
* :mod:`repro.serving.server` — a stdlib ``ThreadingHTTPServer`` front
  exposing ``/query``, ``/apply``, ``/refresh``, ``/explain``,
  ``/metrics`` (Prometheus), and ``/healthz``.

:mod:`repro.serving.loadgen` drives the server with concurrent readers
and a sustained writer and *proves* snapshot consistency against a
shadow replay — the harness behind ``benchmarks/bench_serving.py``.
"""

from repro.serving.applyqueue import ApplyQueue, ApplyTicket, BackpressureError
from repro.serving.server import WarehouseServer, WarehouseService
from repro.serving.snapshots import (
    SnapshotError,
    VersionedViewStore,
    VersionGoneError,
    ViewSnapshot,
)

__all__ = [
    "ApplyQueue",
    "ApplyTicket",
    "BackpressureError",
    "SnapshotError",
    "VersionGoneError",
    "VersionedViewStore",
    "ViewSnapshot",
    "WarehouseServer",
    "WarehouseService",
]
