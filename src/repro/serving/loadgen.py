"""Load generation + snapshot-consistency checking for the serving layer.

:func:`run_load` hammers a running :class:`WarehouseServer` with
concurrent reader threads while one writer streams transactions, then
*proves* every read was a consistent snapshot:

* **hash agreement** — the first read observed at a ``(version,
  watermark)`` pair records the canonical multiset of its rows; every
  later read at the same pair must hash identically.  A torn read (a
  reader seeing a half-applied batch) cannot agree with any committed
  version's hash.
* **shadow replay** — the same transaction stream is replayed, prefix
  by prefix, through an offline :class:`SelfMaintainer` over an
  identically-built database.  A snapshot stamped ``watermark=k`` must
  equal the shadow state after exactly the first ``k`` applied
  transactions — catching not just tears but wrong/missing
  publications.

Both checks are exact (float-quantized multiset equality), so
``consistent_fraction`` in the report is a real end-to-end isolation
measurement, not a smoke signal.
"""

from __future__ import annotations

import hashlib
import json
import threading
import urllib.request
from dataclasses import dataclass, field
from time import perf_counter


def _quantize(value):
    if isinstance(value, float):
        return round(value, 9)
    return value


def canonical_rows(rows) -> tuple:
    """An order-insensitive, float-tolerant form of a row multiset."""
    return tuple(
        sorted((tuple(_quantize(v) for v in row) for row in rows), key=repr)
    )


def rows_digest(rows) -> str:
    return hashlib.sha256(repr(canonical_rows(rows)).encode()).hexdigest()


@dataclass
class ReadSample:
    """One /query response, reduced to what the checker needs."""

    version: int
    watermark: int
    digest: str
    latency_ms: float


@dataclass
class LoadReport:
    """What a load run did and whether isolation held."""

    reads: int = 0
    read_errors: int = 0
    writes_applied: int = 0
    write_rows: int = 0
    write_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    torn_reads: int = 0
    replay_mismatches: int = 0
    monotonicity_violations: int = 0
    versions_observed: int = 0
    versions_checked: int = 0
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def consistent_fraction(self) -> float:
        """Fraction of reads that passed every consistency check."""
        if self.reads == 0:
            return 1.0
        bad = self.torn_reads + self.replay_mismatches
        return max(0.0, 1.0 - bad / self.reads)

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def summary(self) -> dict:
        return {
            "reads": self.reads,
            "read_errors": self.read_errors,
            "writes_applied": self.writes_applied,
            "write_rows": self.write_rows,
            "reads_per_sec": round(
                self.reads / self.elapsed_seconds, 2
            ) if self.elapsed_seconds else 0.0,
            "write_rows_per_sec": round(
                self.write_rows / self.write_seconds, 2
            ) if self.write_seconds else 0.0,
            "read_p50_ms": round(self.latency_quantile(0.50), 4),
            "read_p95_ms": round(self.latency_quantile(0.95), 4),
            "read_p99_ms": round(self.latency_quantile(0.99), 4),
            "torn_reads": self.torn_reads,
            "replay_mismatches": self.replay_mismatches,
            "monotonicity_violations": self.monotonicity_violations,
            "versions_observed": self.versions_observed,
            "versions_checked": self.versions_checked,
            "consistent_fraction": self.consistent_fraction,
        }


def _get_json(url: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


def _post_json(url: str, body: dict, timeout: float = 30.0) -> dict:
    payload = json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=payload, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def transaction_body(transaction) -> dict:
    """A Transaction as the /apply JSON payload."""
    return {
        "deltas": [
            {
                "table": delta.table,
                "inserted": [list(r) for r in delta.inserted],
                "deleted": [list(r) for r in delta.deleted],
            }
            for delta in transaction
        ]
    }


def run_load(
    base_url: str,
    view_name: str,
    transactions,
    readers: int = 4,
    sync_every: int = 8,
    read_timeout: float = 30.0,
) -> tuple[LoadReport, dict[tuple[int, int], tuple]]:
    """Drive the server: one writer streaming ``transactions``, plus
    ``readers`` threads querying ``view_name`` as fast as they can.

    The writer posts asynchronously (exercising micro-batch coalescing)
    with a sync barrier every ``sync_every`` submissions to bound the
    in-flight window, and finishes with ``/refresh`` so the final state
    is published before readers stop.

    Returns the report plus ``{(version, watermark): canonical rows}``
    for every distinct snapshot observed — the shadow-replay input for
    :func:`check_against_shadow`.
    """
    report = LoadReport()
    lock = threading.Lock()
    #: ``(version, watermark) -> [canonical rows, digest, observed reads]``
    snapshots: dict[tuple[int, int], list] = {}
    writer_done = threading.Event()
    query_url = f"{base_url}/query?view={view_name}"

    def read_loop() -> None:
        last_version = -1
        while not writer_done.is_set():
            started = perf_counter()
            try:
                body = _get_json(query_url, timeout=read_timeout)
            except Exception:
                with lock:
                    report.read_errors += 1
                continue
            latency_ms = (perf_counter() - started) * 1000.0
            version = body["version"]
            watermark = body["txn_watermark"]
            rows = [tuple(r) for r in body["rows"]]
            digest = rows_digest(rows)
            key = (version, watermark)
            with lock:
                report.reads += 1
                report.latencies_ms.append(latency_ms)
                if version < last_version:
                    report.monotonicity_violations += 1
                entry = snapshots.get(key)
                if entry is None:
                    snapshots[key] = [canonical_rows(rows), digest, 1]
                else:
                    entry[2] += 1
                    if entry[1] != digest:
                        report.torn_reads += 1
            last_version = max(last_version, version)

    def write_loop() -> None:
        started = perf_counter()
        for index, transaction in enumerate(transactions, start=1):
            body = transaction_body(transaction)
            mode = "sync" if index % sync_every == 0 else "async"
            _post_with_backoff(f"{base_url}/apply?mode={mode}", body)
            with lock:
                report.writes_applied += 1
                report.write_rows += sum(
                    len(d.inserted) + len(d.deleted) for d in transaction
                )
        _post_json(f"{base_url}/refresh", {})
        with lock:
            report.write_seconds = perf_counter() - started

    threads = [
        threading.Thread(target=read_loop, name=f"loadgen-reader-{i}")
        for i in range(readers)
    ]
    writer = threading.Thread(target=write_loop, name="loadgen-writer")
    overall = perf_counter()
    for thread in threads:
        thread.start()
    writer.start()
    writer.join()
    # One deliberate post-refresh read so the final state is always in
    # the checked set, even if every reader thread raced past it.
    final = _get_json(query_url, timeout=read_timeout)
    key = (final["version"], final["txn_watermark"])
    rows = [tuple(r) for r in final["rows"]]
    with lock:
        if key not in snapshots:
            snapshots[key] = [canonical_rows(rows), rows_digest(rows), 1]
    writer_done.set()
    for thread in threads:
        thread.join()
    report.elapsed_seconds = perf_counter() - overall
    report.versions_observed = len(snapshots)
    return report, snapshots


def check_against_shadow(
    report: LoadReport,
    snapshots: dict[tuple[int, int], list],
    shadow_maintainer,
    transactions,
) -> LoadReport:
    """Replay ``transactions`` through ``shadow_maintainer`` and verify
    every observed snapshot equals the shadow state at its watermark.

    ``shadow_maintainer`` must be built over a database identical to the
    served warehouse's initial state; ``transactions`` must be the same
    stream, in submission order.  A mismatching snapshot charges every
    read that observed it, so ``consistent_fraction`` weighs by
    exposure.  Mutates and returns ``report``.
    """
    by_watermark: dict[int, list[tuple[int, int]]] = {}
    for key in snapshots:
        by_watermark.setdefault(key[1], []).append(key)
    applied = 0
    for watermark in sorted(by_watermark):
        while applied < watermark and applied < len(transactions):
            shadow_maintainer.apply(transactions[applied])
            applied += 1
        expected = canonical_rows(shadow_maintainer.current_view().rows)
        for key in by_watermark[watermark]:
            rows, __, observed = snapshots[key]
            report.versions_checked += 1
            if rows != expected:
                report.replay_mismatches += observed
    return report


def _post_with_backoff(
    url: str, body: dict, attempts: int = 50, delay: float = 0.02
) -> dict:
    """POST, retrying 503 backpressure with a short sleep — the writer
    yields to the apply queue instead of failing the run."""
    import time
    import urllib.error

    for attempt in range(attempts):
        try:
            return _post_json(url, body)
        except urllib.error.HTTPError as error:
            if error.code != 503 or attempt == attempts - 1:
                raise
            time.sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
