"""Copy-on-write version chains: snapshot isolation for view readers.

A :class:`VersionedViewStore` holds one maintained view's summary state
as an immutable *base* mapping (``{group key: summary row}``) plus a
chain of forward *patches*, one per published version.  A patch is the
transaction's undo log flipped around: the redo records name exactly
the group keys the transaction touched, and the patch carries their
post-transaction rows (``None`` = group deleted).

Publication is single-writer (the apply queue) and readers never block
on it: the writer assembles a fresh immutable ``_Published`` record and
swaps it in with one attribute store, so a concurrent reader either
sees the old chain or the new one — never a half-built state.  Reads
reconstruct the pinned version by applying the chained patches to a
copy of the base, which costs O(|base| + changed rows); the chain is
periodically *compacted* (old patches folded into a new base) so it
never grows past ``retain`` links.

Versions older than the retention window cannot be reconstructed any
more (their patches were folded away); pinning one raises
:class:`VersionGoneError` — the HTTP layer maps it to ``410 Gone``.
"""

from __future__ import annotations

import threading
from typing import NamedTuple

from repro.engine.operators import select
from repro.engine.relation import Relation
from repro.engine.schema import Schema


class SnapshotError(Exception):
    """A snapshot request the store cannot serve."""


class VersionGoneError(SnapshotError):
    """The pinned version predates the store's retention window."""


class _Patch(NamedTuple):
    """One published version: the rows that changed getting there."""

    version: int
    #: Transactions (by accepted order) included up to this version.
    watermark: int
    #: ``{group key: summary row | None}``; None deletes the group.
    changes: dict


class _Published(NamedTuple):
    """The store's full immutable state as readers see it."""

    version: int
    watermark: int
    base_version: int
    base_watermark: int
    base: dict
    patches: tuple[_Patch, ...]


class ViewSnapshot:
    """One view's summary state pinned at one version (immutable).

    ``rows_by_key`` is the raw maintained group map; :meth:`relation`
    applies the view's HAVING clause, matching
    :meth:`~repro.core.maintenance.SelfMaintainer.current_view`.
    """

    __slots__ = ("view", "version", "txn_watermark", "schema", "_rows_by_key", "_having")

    def __init__(self, view, version, watermark, schema, rows_by_key, having):
        self.view = view
        self.version = version
        self.txn_watermark = watermark
        self.schema = schema
        self._rows_by_key = rows_by_key
        self._having = having

    def rows(self) -> list[tuple]:
        """The summary rows at this version (HAVING applied)."""
        return self.relation().rows

    def relation(self) -> Relation:
        result = Relation(
            self.schema, list(self._rows_by_key.values()), validate=False
        )
        if self._having is not None:
            result = select(result, self._having)
        return result

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.schema.attributes)

    def __len__(self) -> int:
        return len(self._rows_by_key)


class VersionedViewStore:
    """The copy-on-write version chain for one maintained view.

    One writer (the apply queue's worker) calls :meth:`publish`; any
    number of reader threads call :meth:`snapshot` concurrently.  The
    only shared mutable cell is ``self._published``, replaced atomically
    under ``_lock`` (the lock exists to order compaction against
    publication — readers never take it; they read the attribute once
    and work on the immutable record it points to).
    """

    def __init__(
        self,
        view: str,
        schema: Schema,
        rows_by_key: dict,
        having=None,
        retain: int = 64,
    ):
        if retain < 1:
            raise ValueError("retain must be at least 1")
        self.view = view
        self.schema = schema
        self._having = having
        self._retain = retain
        self._lock = threading.Lock()
        self._published = _Published(
            version=0,
            watermark=0,
            base_version=0,
            base_watermark=0,
            base=dict(rows_by_key),
            patches=(),
        )

    # ------------------------------------------------------------------
    # Writer side.
    # ------------------------------------------------------------------

    def publish(self, version: int, watermark: int, changes: dict) -> None:
        """Publish one new version (writer thread only).

        ``changes`` maps the group keys the committed transaction
        touched to their post-transaction rows (``None`` = deleted) —
        i.e. the undo log's redo records resolved against the
        maintainer *after* the commit.  Versions must be published in
        strictly increasing order.
        """
        with self._lock:
            current = self._published
            if version <= current.version:
                raise SnapshotError(
                    f"version {version} already published "
                    f"(latest is {current.version})"
                )
            patches = current.patches + (_Patch(version, watermark, dict(changes)),)
            base, base_version, base_watermark = (
                current.base, current.base_version, current.base_watermark,
            )
            if len(patches) > self._retain:
                # Compact: fold the oldest patches into a *new* base dict
                # (the old base stays untouched for readers already
                # holding the previous _Published record).
                fold = patches[: -self._retain]
                patches = patches[-self._retain:]
                base = dict(base)
                for patch in fold:
                    _apply_changes(base, patch.changes)
                base_version = fold[-1].version
                base_watermark = fold[-1].watermark
            self._published = _Published(
                version=version,
                watermark=watermark,
                base_version=base_version,
                base_watermark=base_watermark,
                base=base,
                patches=patches,
            )

    # ------------------------------------------------------------------
    # Reader side.
    # ------------------------------------------------------------------

    @property
    def latest_version(self) -> int:
        return self._published.version

    @property
    def latest_watermark(self) -> int:
        return self._published.watermark

    def snapshot(self, version: int | None = None) -> ViewSnapshot:
        """The view pinned at ``version`` (default: latest published).

        Safe from any thread: reconstruction works entirely on the
        immutable published record, so a writer publishing version
        ``v+1`` mid-call cannot perturb a reader pinned at ``v``.
        """
        published = self._published  # one atomic read; immutable after
        pinned = published.version if version is None else version
        if pinned < published.base_version:
            raise VersionGoneError(
                f"version {pinned} of {self.view!r} is beyond the "
                f"retention window (oldest reconstructable: "
                f"{published.base_version})"
            )
        if pinned > published.version:
            raise SnapshotError(
                f"version {pinned} of {self.view!r} is not published yet "
                f"(latest: {published.version})"
            )
        rows = dict(published.base)
        watermark = published.base_watermark
        for patch in published.patches:
            if patch.version > pinned:
                break
            _apply_changes(rows, patch.changes)
            watermark = patch.watermark
        return ViewSnapshot(
            self.view, pinned, watermark, self.schema, rows, self._having
        )


def _apply_changes(rows: dict, changes: dict) -> None:
    for key, row in changes.items():
        if row is None:
            rows.pop(key, None)
        else:
            rows[key] = row
