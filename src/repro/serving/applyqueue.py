"""The single-writer apply queue: all mutations, one thread, one order.

Concurrent clients submit transactions; exactly one worker thread
drains them.  Each drain takes up to ``max_batch`` pending transactions
and *coalesces* them into one net transaction (the same multiset
arithmetic :class:`~repro.warehouse.deferred.DeferredMaintainer` uses
for nightly refreshes — churn submitted by different clients between
two snapshots cancels and is never propagated), applies it atomically
through :meth:`Warehouse.apply`, and publishes one new snapshot version
carrying the changed group keys the undo logs reported.

Ordering and visibility guarantees:

* transactions become visible in submission (accepted) order — the
  queue is FIFO and the worker is single;
* every published version covers a *prefix* of the accepted, applied
  stream (the ``watermark``), so a reader holding ``(version,
  watermark)`` knows exactly which transactions its snapshot reflects;
* a failed micro-batch changes nothing: the warehouse rolls the whole
  batch back (commit-path atomicity), no version is published, and
  every ticket in the batch carries the error.

Backpressure is a bounded queue: :meth:`submit` raises
:class:`BackpressureError` when ``max_pending`` transactions are
already waiting (HTTP maps it to 503), and the registry gauges
``repro_serving_queue_depth`` / ``repro_serving_lag_transactions``
expose the backlog and the accepted-minus-applied lag for scrapes.

Observability: when a :class:`~repro.obs.trace.Tracer` is attached,
each micro-batch runs under an ``apply-batch`` span whose parent is the
first originating request's ``traceparent`` (the other coalesced
requests are recorded as ``links``), and ``Warehouse.apply`` runs with
that span as the thread's ambient parent — so every maintainer
transaction trace joins the request's tree.  An attached
:class:`~repro.obs.log.EventLog` narrates backpressure rejections and
batch outcomes.
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.engine.deltas import Transaction, coalesce
from repro.obs.metrics import DELTA_ROWS_BUCKETS, MetricsRegistry


class BackpressureError(Exception):
    """The apply queue is full; the client should retry later."""


@dataclass
class ApplyTicket:
    """One submitted transaction's receipt.

    ``seq`` is the accepted-order sequence number.  After the worker
    processes the transaction, :attr:`version`/:attr:`watermark` hold
    the snapshot version at which it became visible, or :attr:`error`
    holds the exception that rejected its micro-batch.
    """

    seq: int
    transaction: Transaction | None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)
    version: int | None = None
    watermark: int | None = None
    error: BaseException | None = None
    #: ``traceparent`` of the originating request span, if the submitter
    #: was traced — the worker parents the micro-batch span on it.
    ctx: str | None = None

    def _resolve(self, version: int, watermark: int) -> None:
        self.version = version
        self.watermark = watermark
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self.error = error
        self._done.set()

    def wait(self, timeout: float | None = None) -> "ApplyTicket":
        """Block until the worker has processed this ticket; raises
        ``TimeoutError`` on timeout and re-raises the batch's rejection
        error if there was one."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"transaction seq={self.seq} not applied within {timeout}s"
            )
        if self.error is not None:
            raise self.error
        return self

    @property
    def done(self) -> bool:
        return self._done.is_set()


_STOP = object()


class ApplyQueue:
    """Single-writer, micro-batching apply pipeline over a warehouse."""

    def __init__(
        self,
        warehouse,
        stores: dict,
        registry: MetricsRegistry | None = None,
        max_pending: int = 256,
        max_batch: int = 16,
        tracer=None,
        events=None,
    ):
        """``stores`` maps view names to their
        :class:`~repro.serving.snapshots.VersionedViewStore`; the worker
        publishes one new version to every store per successful batch.
        ``tracer``/``events`` (a :class:`~repro.obs.trace.Tracer` and an
        :class:`~repro.obs.log.EventLog`, both optional) attach the
        observability layer described in the module docstring.
        """
        self._warehouse = warehouse
        self._stores = stores
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.events = events
        self._max_batch = max(1, max_batch)
        self._queue: queue.Queue = queue.Queue(maxsize=max_pending)
        self._seq_lock = threading.Lock()
        self._accepted = 0
        self._applied = 0
        self._version = 0
        self._last_error: str | None = None
        self._thread: threading.Thread | None = None
        self._depth_gauge = self.registry.gauge("repro_serving_queue_depth")
        self._lag_gauge = self.registry.gauge("repro_serving_lag_transactions")
        self._version_gauge = self.registry.gauge("repro_serving_version")
        self._watermark_gauge = self.registry.gauge("repro_serving_txn_watermark")
        self._batches = self.registry.counter("repro_serving_batches_total")
        self._applied_counter = self.registry.counter(
            "repro_serving_txns_applied_total"
        )
        self._rejected_counter = self.registry.counter(
            "repro_serving_txns_rejected_total"
        )
        self._coalesced_counter = self.registry.counter(
            "repro_serving_coalesced_rows_total"
        )
        self._batch_hist = self.registry.histogram(
            "repro_serving_batch_txns", DELTA_ROWS_BUCKETS
        )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "ApplyQueue":
        if self._thread is not None:
            raise RuntimeError("apply queue already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-apply-queue", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Drain what is queued, then stop the worker."""
        thread = self._thread
        if thread is None:
            return
        self._queue.put(_STOP)
        thread.join(timeout)
        self._thread = None

    # ------------------------------------------------------------------
    # Client side.
    # ------------------------------------------------------------------

    def submit(
        self, transaction: Transaction, ctx: str | None = None
    ) -> ApplyTicket:
        """Enqueue one transaction; returns its ticket immediately.
        ``ctx`` (a ``traceparent``) links the originating request span.

        Raises :class:`BackpressureError` when the queue is full —
        nothing was accepted, the client may retry.
        """
        with self._seq_lock:
            ticket = ApplyTicket(self._accepted + 1, transaction, ctx=ctx)
            try:
                self._queue.put_nowait(ticket)
            except queue.Full:
                if self.events is not None:
                    self.events.warn(
                        "queue.backpressure",
                        ctx=ctx,
                        depth=self._queue.qsize(),
                        max_pending=self._queue.maxsize,
                    )
                raise BackpressureError(
                    f"apply queue full ({self._queue.maxsize} pending)"
                ) from None
            self._accepted += 1
        self._update_gauges()
        return ticket

    def flush(self, timeout: float | None = 30.0) -> ApplyTicket:
        """A barrier: returns once everything accepted before the call
        has been applied (or rejected).  The returned ticket's
        ``version``/``watermark`` are the post-flush snapshot position.
        """
        with self._seq_lock:
            ticket = ApplyTicket(self._accepted, None)
        self._queue.put(ticket)  # barriers may block; they carry no data
        return ticket.wait(timeout)

    @property
    def depth(self) -> int:
        return self._queue.qsize()

    @property
    def accepted(self) -> int:
        return self._accepted

    @property
    def applied(self) -> int:
        return self._applied

    @property
    def version(self) -> int:
        return self._version

    @property
    def last_error(self) -> str | None:
        return self._last_error

    # ------------------------------------------------------------------
    # Worker side.
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            batch = [item]
            while len(batch) < self._max_batch:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    self._process(batch)
                    return
                batch.append(extra)
            self._process(batch)

    def _process(self, batch: list[ApplyTicket]) -> None:
        writes = [t for t in batch if t.transaction is not None]
        barriers = [t for t in batch if t.transaction is None]
        if writes:
            self._apply_batch(writes)
        for ticket in barriers:
            ticket._resolve(self._version, self._applied)
        self._update_gauges()

    def _apply_batch(self, writes: list[ApplyTicket]) -> None:
        transactions = [t.transaction for t in writes]
        rows_before = _stream_rows(transactions)
        net = coalesce(transactions)
        rows_net = sum(
            len(d.inserted) + len(d.deleted) for d in net
        )
        origins = [t.ctx for t in writes if t.ctx is not None]
        trace = None
        if self.tracer is not None:
            trace = self.tracer.begin(
                "apply-batch",
                kind="queue",
                parent=origins[0] if origins else None,
                links=origins[1:],
                txns=len(writes),
                rows_in=rows_before,
                rows_net=rows_net,
            )
        batch_ctx = None if trace is None else trace.context()
        try:
            with (
                self.tracer.parented(batch_ctx)
                if self.tracer is not None
                else _null_context()
            ):
                changed = (
                    self._warehouse.apply(net) if not net.empty else {}
                )
        except Exception as error:
            self._rejected_counter.inc(len(writes))
            self._last_error = f"{type(error).__name__}: {error}"
            if trace is not None:
                self.tracer.finish(trace, "error")
            if self.events is not None:
                self.events.error(
                    "batch.rejected",
                    ctx=batch_ctx,
                    txns=len(writes),
                    error=type(error).__name__,
                )
            for ticket in writes:
                ticket._fail(error)
            return
        if trace is not None:
            self.tracer.finish(trace)
        self._batches.inc()
        self._applied_counter.inc(len(writes))
        self._coalesced_counter.inc(rows_before - rows_net)
        self._batch_hist.observe(len(writes))
        self._applied += len(writes)
        self._version += 1
        version, watermark = self._version, self._applied
        for view, store in self._stores.items():
            keys = changed.get(view, ())
            maintainer = self._warehouse.maintainer(view)
            patch = {key: maintainer.summary_row(key) for key in keys}
            store.publish(version, watermark, patch)
        self._version_gauge.set(version)
        self._watermark_gauge.set(watermark)
        if self.events is not None:
            self.events.info(
                "batch.applied",
                ctx=batch_ctx,
                txns=len(writes),
                rows_in=rows_before,
                rows_net=rows_net,
                version=version,
                watermark=watermark,
            )
        for ticket in writes:
            ticket._resolve(version, watermark)

    def _update_gauges(self) -> None:
        self._depth_gauge.set(self._queue.qsize())
        self._lag_gauge.set(max(0, self._accepted - self._applied))


@contextmanager
def _null_context():
    yield


def _stream_rows(transactions) -> int:
    return sum(
        len(d.inserted) + len(d.deleted) for t in transactions for d in t
    )
