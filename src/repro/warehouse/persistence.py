"""Warehouse checkpointing: persist and restore without source access.

Self-maintainability has an operational corollary the paper's framework
implies but does not spell out: since the warehouse never needs base
tables after the initial load, its whole state — the summary tables and
the minimal current detail — can be checkpointed and restored across
restarts *while the sources stay sealed*.  This module serializes a
:class:`~repro.warehouse.warehouse.Warehouse` (or a single maintainer)
to JSON and rebuilds it against the catalog alone.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Mapping

from repro.catalog.database import Database
from repro.core.maintenance import SelfMaintainer, SelfMaintenanceError
from repro.core.view import ViewDefinition
from repro.warehouse.warehouse import Warehouse

FORMAT_VERSION = 1


def checkpoint_meta(path: str | Path) -> dict:
    """The ``meta`` block of a checkpoint file (``{}`` for files written
    before metadata existed — the format is unchanged, the block is an
    optional addition the doctor's staleness check reads)."""
    checkpoint = json.loads(Path(path).read_text())
    _check_format(checkpoint)
    meta = checkpoint.get("meta", {})
    return meta if isinstance(meta, dict) else {}


def dump_maintainer(maintainer: SelfMaintainer) -> dict:
    """A JSON-serializable checkpoint of one maintainer.

    Refuses to run mid-transaction: a checkpoint cut while ``apply`` is
    mutating state would capture a partially-applied transaction, and a
    restore from it could never be repaired from the sealed sources.
    """
    _check_quiescent(maintainer)
    return {
        "format": FORMAT_VERSION,
        "state": maintainer.export_state(),
    }


def restore_maintainer(
    view: ViewDefinition,
    catalog: Database,
    checkpoint: Mapping,
    append_only: bool = False,
) -> SelfMaintainer:
    """Rebuild a maintainer from a checkpoint and the catalog.

    ``catalog`` supplies table *metadata* (schemas, keys, constraints)
    only; its tuple data is never read, so an empty-schema database or a
    still-sealed source's pre-load catalog both work.
    """
    _check_format(checkpoint)
    maintainer = SelfMaintainer(
        view, catalog, append_only=append_only, initialize=False
    )
    maintainer.load_state(checkpoint["state"])
    return maintainer


def dump_warehouse(warehouse: Warehouse) -> dict:
    """Checkpoint every registered view of a warehouse (only between
    transactions — see :func:`dump_maintainer`).  The ``meta`` block
    (creation wall time, per-view applied-transaction counts) feeds the
    doctor's staleness check; readers that predate it ignore it."""
    for name in warehouse.view_names:
        _check_quiescent(warehouse.maintainer(name))
    return {
        "format": FORMAT_VERSION,
        "meta": {
            "created_at": time.time(),
            "transactions": {
                name: warehouse.maintainer(name).perf.counters.get(
                    "transactions", 0
                )
                for name in warehouse.view_names
            },
        },
        "views": {
            name: warehouse.maintainer(name).export_state()
            for name in warehouse.view_names
        },
    }


def restore_warehouse(
    views: Mapping[str, ViewDefinition],
    catalog: Database,
    checkpoint: Mapping,
) -> Warehouse:
    """Rebuild a warehouse from view definitions plus a checkpoint."""
    _check_format(checkpoint)
    recorded = set(checkpoint["views"])
    supplied = set(views)
    if recorded != supplied:
        raise SelfMaintenanceError(
            f"checkpoint holds views {sorted(recorded)}, definitions "
            f"supplied for {sorted(supplied)}"
        )
    warehouse = Warehouse(catalog)
    for name, view in views.items():
        state = checkpoint["views"][name]
        maintainer = SelfMaintainer(
            view,
            catalog,
            append_only=bool(state.get("append_only")),
            initialize=False,
        )
        maintainer.load_state(state)
        warehouse.adopt(maintainer)
    meta = checkpoint.get("meta", {})
    warehouse.events.info(
        "checkpoint.restored",
        views=len(views),
        created_at=meta.get("created_at") if isinstance(meta, dict) else None,
    )
    return warehouse


def save_warehouse(warehouse: Warehouse, path: str | Path) -> None:
    """Write a warehouse checkpoint to ``path`` as JSON."""
    Path(path).write_text(json.dumps(dump_warehouse(warehouse)))
    warehouse.events.info(
        "checkpoint.saved",
        path=str(path),
        views=len(warehouse.view_names),
    )


def load_warehouse(
    views: Mapping[str, ViewDefinition],
    catalog: Database,
    path: str | Path,
) -> Warehouse:
    """Read a warehouse checkpoint from ``path``."""
    checkpoint = json.loads(Path(path).read_text())
    return restore_warehouse(views, catalog, checkpoint)


def _check_quiescent(maintainer: SelfMaintainer) -> None:
    if maintainer.in_transaction:
        raise SelfMaintenanceError(
            f"cannot checkpoint view {maintainer.view.name!r} while a "
            "transaction is being applied (the snapshot would not be "
            "crash-consistent)"
        )


def _check_format(checkpoint: Mapping) -> None:
    version = checkpoint.get("format")
    if version != FORMAT_VERSION:
        raise SelfMaintenanceError(
            f"unsupported checkpoint format {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
