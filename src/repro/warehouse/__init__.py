"""Warehouse runtime: sealed sources, warehouses, baselines, operation modes."""

from repro.warehouse.sources import SealedSource, SourceAccessError
from repro.warehouse.warehouse import StorageReport, Warehouse
from repro.warehouse.baselines import (
    FullReplicationMaintainer,
    PsjAuxiliaryMaintainer,
)
from repro.warehouse.deferred import DeferredMaintainer, RefreshStats, StaleViewError
from repro.warehouse.shared import SharedDetailWarehouse
from repro.warehouse import persistence

__all__ = [
    "SealedSource",
    "SourceAccessError",
    "Warehouse",
    "StorageReport",
    "FullReplicationMaintainer",
    "PsjAuxiliaryMaintainer",
    "DeferredMaintainer",
    "RefreshStats",
    "StaleViewError",
    "SharedDetailWarehouse",
    "persistence",
]
