"""The data warehouse of Figure 1: summarized data over minimal detail.

A :class:`Warehouse` hosts one or more materialized GPSJ views, derives
and materializes their auxiliary views at load time, then maintains
everything purely from the transaction stream.  It also keeps the
storage ledger that the paper's Section 1.1 analysis is about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.base import Backend, make_backend
from repro.catalog.database import Database
from repro.core.derivation import AuxiliaryViewSet
from repro.core.maintenance import SelfMaintainer
from repro.core.view import ViewDefinition
from repro.engine import compilecache
from repro.engine.deltas import Transaction
from repro.engine.relation import Relation
from repro.engine.undolog import UndoLog, rollback_all
from repro.obs.log import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.perf import PerfStats
from repro.plan.cost import (
    DEFAULT_DELTA_ROWS,
    MIN_SHARED_BENEFIT_ROWS,
    PlannerMode,
    SharedPlanCache,
    make_planner_mode,
)
from repro.plan.planner import PlanPolicy


@dataclass(frozen=True)
class StorageReport:
    """Bytes held by the warehouse for one view, per the paper's model.

    ``perf`` carries the maintainer's cumulative hot-path statistics
    (see :mod:`repro.perf`) so storage and maintenance cost read off one
    report; ``None`` when no transaction has been applied yet.
    """

    view: str
    summary_bytes: int
    detail_bytes: int
    per_auxiliary: dict[str, int]
    eliminated: tuple[str, ...]
    perf: dict | None = None
    #: Bytes the execution backend's own storage engine holds for the
    #: auxiliary tables (SQLite ``dbstat`` pages); None on backends
    #: with no physical measure beyond the paper's width model.
    physical_detail_bytes: int | None = None

    @property
    def total_bytes(self) -> int:
        return self.summary_bytes + self.detail_bytes


def _unique_keys(records) -> tuple:
    """Deduplicate redo records, preserving first-touch order."""
    seen: set = set()
    out: list = []
    for record in records:
        if record not in seen:
            seen.add(record)
            out.append(record)
    return tuple(out)


class Warehouse:
    """Materializes views + minimal current detail; maintained from deltas."""

    def __init__(
        self,
        database: Database,
        views: list[ViewDefinition] | None = None,
        tracer: Tracer | None = None,
        backend: Backend | str | None = None,
        planner: "PlannerMode | str | None" = None,
        events: EventLog | None = None,
    ):
        """``database`` is only read during :meth:`register` (initial load).
        ``tracer`` is handed to every maintainer registered here, so one
        sampler sees the warehouse's whole transaction stream (each
        maintained view contributes its own trace per sampled call).
        ``backend`` selects where the detail data lives and how plans
        execute — a :class:`~repro.backends.Backend` instance, a name
        (``"memory"``, ``"sqlite"``, ``"sqlite:<path>"``), or ``None``
        to consult ``REPRO_BACKEND`` (default memory); one backend
        instance is shared by every view registered here, so a
        warehouse transaction is one backend transaction.
        ``planner`` (``"cost"``/``"static"``/``None`` for
        ``REPRO_PLANNER``) is handed to every maintainer and also
        governs cross-view sharing: under ``cost``, :meth:`apply` hands
        maintainers a :class:`~repro.plan.cost.SharedPlanCache` that
        admits only the explicitly *selected* shared subplans (see
        :meth:`shared_subplan_selection`).
        ``events`` is the structured :class:`~repro.obs.log.EventLog`
        every maintainer (and the backend) narrates into — one log per
        warehouse, trace-correlated; a default bounded log is created
        when none is supplied."""
        self._database = database
        self.tracer = tracer
        self.events = events if events is not None else EventLog()
        self._backend = make_backend(backend)
        self._backend.bind_observability(events=self.events)
        self.planner_mode = make_planner_mode(planner)
        self._maintainers: dict[str, SelfMaintainer] = {}
        self._shared_selection: frozenset | None = None
        self._last_shared_cache: SharedPlanCache | None = None
        for view in views or []:
            self.register(view)

    # ------------------------------------------------------------------
    # Registration (the only phase that reads base data).
    # ------------------------------------------------------------------

    def register(self, view: ViewDefinition) -> AuxiliaryViewSet:
        """Derive auxiliary views for ``view`` and materialize everything."""
        if view.name in self._maintainers:
            raise ValueError(f"view {view.name!r} already registered")
        maintainer = SelfMaintainer(
            view,
            self._database,
            tracer=self.tracer,
            backend=self._backend,
            planner=self.planner_mode,
            events=self.events,
        )
        self._maintainers[view.name] = maintainer
        self._shared_selection = None
        return maintainer.aux_set

    def adopt(self, maintainer: SelfMaintainer) -> None:
        """Attach an already-initialized maintainer (checkpoint restore)."""
        name = maintainer.view.name
        if name in self._maintainers:
            raise ValueError(f"view {name!r} already registered")
        if maintainer.events is None:
            maintainer.events = self.events
        self._maintainers[name] = maintainer
        self._shared_selection = None

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------

    def apply(self, transaction: Transaction) -> dict[str, tuple]:
        """Propagate one source transaction into every registered view,
        atomically across views.

        Maintainers run in registration order; if any of them rejects
        the transaction — or the backend's :meth:`commit` fails after
        every maintainer succeeded — the views already updated in this
        call are rolled back (in reverse order) before the exception
        propagates, so the warehouse never exposes a state where the
        in-memory summary tables reflect a source transaction the
        backend never committed.  The failing maintainer rolls its own
        partial work back itself.  If an individual rollback step
        itself raises, the remaining logs are still rolled back and a
        :class:`~repro.engine.undolog.RollbackError` aggregating the
        failures propagates (chained to the original cause).

        One shared plan-result cache spans all maintainers of the call:
        structurally identical delta subplans (two views reading the
        same coalesced, locally-reduced delta of a table) execute once
        and the other maintainers reuse the result.  Under the cost
        planner the cache is a :class:`~repro.plan.cost.SharedPlanCache`
        restricted to the *selected* shared subplans (explicit
        multi-query optimization); under the static planner it is the
        historical opportunistic dict.

        Returns ``{view name: (changed group keys...)}`` — the forward
        redo records the transaction's undo logs collected, i.e. exactly
        the summary groups whose rows changed.  The serving layer's
        snapshot store turns this into copy-on-write version patches;
        other callers may ignore the return value.
        """
        applied: list[tuple[SelfMaintainer, UndoLog]] = []
        shared: dict | SharedPlanCache
        if self.planner_mode is PlannerMode.COST:
            shared = SharedPlanCache(self.shared_subplan_selection())
            self._last_shared_cache = shared
        else:
            shared = {}
        try:
            for maintainer in self._maintainers.values():
                log = UndoLog()
                maintainer.apply(transaction, undo=log, shared=shared)
                applied.append((maintainer, log))
            self._backend.commit()
        except Exception:
            rollback_all(
                reversed(applied), perf_for=lambda m: m.perf
            )
            raise
        changed: dict[str, tuple] = {}
        for maintainer, log in applied:
            log.commit()
            changed[maintainer.view.name] = _unique_keys(log.redo_records)
        return changed

    def shared_subplan_selection(self) -> frozenset:
        """The share keys (canonical logical subtrees) explicitly
        selected for cross-view sharing, computed once per registration
        set and cached.

        A subtree qualifies when it appears in the delta plans of at
        least two registered (indexed-policy) views *and* the estimated
        recomputation it saves — its estimated cardinality times the
        extra computations avoided — clears
        :data:`~repro.plan.cost.MIN_SHARED_BENEFIT_ROWS`.  This is the
        multi-query-optimization selection rule (Mistry et al.,
        cs/0003006) replacing the old cache-everything heuristic; the
        per-transaction :class:`~repro.plan.cost.SharedPlanCache` admits
        exactly these keys.
        """
        if self._shared_selection is not None:
            return self._shared_selection
        owners: dict[object, set[str]] = {}
        estimates: dict[object, float] = {}
        for name, maintainer in self._maintainers.items():
            if maintainer.policy is not PlanPolicy.INDEXED:
                continue  # naive maintainers never share (no coalescing)
            signs = (1,) if maintainer.append_only else (1, -1)
            for table in maintainer.view.tables:
                for sign in signs:
                    for node in maintainer.delta_plans(table, sign).walk():
                        key = node.share_key
                        if key is None:
                            continue
                        owners.setdefault(key, set()).add(name)
                        if node.estimated_rows is not None:
                            estimates[key] = max(
                                estimates.get(key, 0.0), node.estimated_rows
                            )
        selected = frozenset(
            key
            for key, names in owners.items()
            if len(names) >= 2
            and estimates.get(key, DEFAULT_DELTA_ROWS) * (len(names) - 1)
            >= MIN_SHARED_BENEFIT_ROWS
        )
        self._shared_selection = selected
        return selected

    @property
    def last_shared_cache(self) -> SharedPlanCache | None:
        """The :meth:`apply` call's most recent shared-subplan cache
        (admitted/rejected counters for benchmarks); ``None`` before the
        first cost-mode apply."""
        return self._last_shared_cache

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------

    @property
    def view_names(self) -> tuple[str, ...]:
        return tuple(self._maintainers)

    @property
    def database(self) -> Database:
        """The source database (read at registration and for planning;
        maintenance itself never touches it)."""
        return self._database

    @property
    def backend(self) -> Backend:
        """The execution backend shared by every registered view."""
        return self._backend

    def close(self) -> None:
        """Release the backend's resources (database handles, the
        sharded backend's worker processes)."""
        self._backend.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def maintainer(self, view_name: str) -> SelfMaintainer:
        return self._maintainers[view_name]

    def summary(self, view_name: str) -> Relation:
        """The materialized summary table for ``view_name``."""
        return self._maintainers[view_name].current_view()

    def detail(self, view_name: str, table: str) -> Relation:
        """One current-detail (auxiliary) table."""
        return self._maintainers[view_name].aux_relation(table)

    def storage_report(self, view_name: str) -> StorageReport:
        maintainer = self._maintainers[view_name]
        per_aux = {
            aux.table: maintainer.aux_relation(aux.table).size_bytes()
            for aux in maintainer.aux_set
        }
        snapshot = maintainer.perf.snapshot()
        return StorageReport(
            view=view_name,
            summary_bytes=maintainer.current_view().size_bytes(),
            detail_bytes=sum(per_aux.values()),
            per_auxiliary=per_aux,
            eliminated=tuple(maintainer.aux_set.eliminated),
            perf=snapshot if snapshot["counters"] else None,
            physical_detail_bytes=maintainer.physical_detail_size_bytes(),
        )

    def perf_report(self, view_name: str | None = None) -> str:
        """Hot-path counters and timings (including per-plan-node
        ``plan:*`` timings), rendered.

        With a view name, one maintainer's statistics; with none, the
        merged statistics of every registered maintainer — the whole
        warehouse's maintenance cost in one table.
        """
        if view_name is not None:
            return self._maintainers[view_name].perf.render()
        merged = PerfStats()
        for maintainer in self._maintainers.values():
            merged.merge(maintainer.perf)
        return merged.render()

    def runtime_stats(self, view_name: str | None = None) -> dict:
        """Observed per-plan-node statistics (cardinalities, timings,
        reuse counts) accumulated over every applied transaction.

        With a view name, that maintainer's ``{delta shape: [node
        records]}`` mapping; with none, one mapping per registered view.
        This is the ``explain --analyze`` payload, and the observed
        cardinality feed the ROADMAP's cost-based planner will train on.
        """
        if view_name is not None:
            return self._maintainers[view_name].runtime_stats()
        return {
            name: maintainer.runtime_stats()
            for name, maintainer in self._maintainers.items()
        }

    def metrics_registry(self) -> MetricsRegistry:
        """A merged :class:`~repro.obs.metrics.MetricsRegistry` over all
        maintainers — counters, phase seconds, and per-transaction
        histograms — plus gauges for the process-wide compile/shared
        cache (``repro_compile_cache_*``).  The merge is a snapshot: it
        copies, so exporting never perturbs the live hot-path stores."""
        merged = MetricsRegistry()
        for maintainer in self._maintainers.values():
            merged.merge(maintainer.perf.registry)
        backend_registry = self._backend.metrics_registry()
        if backend_registry is not None:
            merged.merge(backend_registry)
        for name, value in compilecache.cache_stats().items():
            merged.gauge(f"repro_compile_cache_{name}").set(value)
        return merged

    def metrics_text(self) -> str:
        """The merged registry in Prometheus text exposition format."""
        return self.metrics_registry().render_prometheus()

    def explain_plans(self) -> str:
        """Render every maintainer's chosen physical plans (evaluation
        and per-delta maintenance), with subplans shared across views
        marked.  See :mod:`repro.plan.explain`."""
        from repro.plan.explain import warehouse_plan_report

        return warehouse_plan_report(self)
