"""`repro doctor`: machine-readable warehouse self-checks.

The paper's self-maintainability argument is operational — the
warehouse must stay *correct* with its sources sealed — so the doctor
verifies the invariants that correctness rests on, from the outside,
against a live warehouse:

* **index consistency** — every :class:`~repro.engine.rowindex.RowIndex`
  still mirrors its backing bag exactly
  (:func:`repro.testing.faults.verify_index_consistency`);
* **checkpoint staleness** — the newest checkpoint on disk is readable,
  format-compatible, and younger than the allowed age;
* **stats-catalog drift** — the cost planner's cached cardinalities
  agree with the live materializations
  (:meth:`~repro.plan.cost.StatsCatalog.drift_report`);
* **event-log summary** — per-level totals, surfacing error events that
  already rotated out of the ring.

Every check yields a :class:`DoctorCheck`; the :class:`DoctorReport`
renders as text or JSON and maps to process exit codes (``0`` healthy,
``1`` warnings, ``2`` failures) so CI and cron jobs can gate on it.
:func:`plant_index_corruption` exists for exactly that gate: it breaks
an index on purpose so the pipeline can prove the doctor notices.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable

from repro.core.maintenance import SelfMaintenanceError
from repro.testing.faults import verify_index_consistency
from repro.warehouse.persistence import checkpoint_meta
from repro.warehouse.warehouse import Warehouse

#: Severity order; a report's exit code is its worst check's rank.
_STATUS_RANK = {"ok": 0, "skip": 0, "warn": 1, "fail": 2}

DOCTOR_SCHEMA_VERSION = 1


class DoctorCheck:
    """One named check outcome: ``ok``, ``skip``, ``warn``, or ``fail``."""

    __slots__ = ("name", "status", "details")

    def __init__(self, name: str, status: str, **details):
        if status not in _STATUS_RANK:
            raise ValueError(f"unknown check status {status!r}")
        self.name = name
        self.status = status
        self.details = details

    def to_dict(self) -> dict:
        return {"name": self.name, "status": self.status, **self.details}

    def render(self) -> str:
        parts = [f"{key}={value}" for key, value in self.details.items()]
        suffix = ("  " + " ".join(parts)) if parts else ""
        return f"{self.status.upper():<4} {self.name}{suffix}"


class DoctorReport:
    """All checks of one doctor run plus the overall verdict."""

    def __init__(self, checks: list[DoctorCheck]):
        self.checks = checks

    @property
    def status(self) -> str:
        worst = max(
            (_STATUS_RANK[check.status] for check in self.checks), default=0
        )
        return {0: "healthy", 1: "degraded", 2: "unhealthy"}[worst]

    @property
    def exit_code(self) -> int:
        return max(
            (_STATUS_RANK[check.status] for check in self.checks), default=0
        )

    def to_dict(self) -> dict:
        return {
            "schema": DOCTOR_SCHEMA_VERSION,
            "status": self.status,
            "exit_code": self.exit_code,
            "checks": [check.to_dict() for check in self.checks],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [check.render() for check in self.checks]
        lines.append(f"doctor: {self.status} (exit {self.exit_code})")
        return "\n".join(lines)


def run_doctor(
    warehouse: Warehouse,
    checkpoint_path: str | Path | None = None,
    max_checkpoint_age_s: float = 86_400.0,
    clock: Callable[[], float] = time.time,
) -> DoctorReport:
    """Run every self-check against ``warehouse`` and return the report."""
    checks: list[DoctorCheck] = []
    for name in warehouse.view_names:
        maintainer = warehouse.maintainer(name)
        try:
            verify_index_consistency(maintainer)
        except AssertionError as exc:
            checks.append(
                DoctorCheck(
                    f"index-consistency:{name}", "fail", error=str(exc)
                )
            )
        else:
            indexes = sum(
                len(materialization.relation()._indexes)
                for materialization in maintainer._materializations.values()
            )
            checks.append(
                DoctorCheck(
                    f"index-consistency:{name}", "ok", indexes=indexes
                )
            )
    checks.append(
        _checkpoint_check(checkpoint_path, max_checkpoint_age_s, clock)
    )
    for name in warehouse.view_names:
        maintainer = warehouse.maintainer(name)
        findings = maintainer.stats_catalog.drift_report()
        if findings:
            checks.append(
                DoctorCheck(f"stats-drift:{name}", "fail", findings=findings)
            )
        else:
            checks.append(DoctorCheck(f"stats-drift:{name}", "ok"))
    totals = warehouse.events.totals
    checks.append(
        DoctorCheck(
            "event-log",
            "warn" if totals.get("error") else "ok",
            **{f"{level}_events": count for level, count in sorted(totals.items())},
        )
    )
    return DoctorReport(checks)


def _checkpoint_check(
    checkpoint_path: str | Path | None,
    max_checkpoint_age_s: float,
    clock: Callable[[], float],
) -> DoctorCheck:
    if checkpoint_path is None:
        return DoctorCheck("checkpoint-staleness", "skip", reason="no checkpoint configured")
    path = Path(checkpoint_path)
    if not path.exists():
        return DoctorCheck(
            "checkpoint-staleness", "fail", path=str(path), error="checkpoint file missing"
        )
    try:
        meta = checkpoint_meta(path)
    except (SelfMaintenanceError, ValueError) as exc:
        return DoctorCheck(
            "checkpoint-staleness", "fail", path=str(path), error=str(exc)
        )
    created_at = meta.get("created_at")
    if not isinstance(created_at, (int, float)):
        # Pre-metadata checkpoint: readable but of unknown age.
        return DoctorCheck(
            "checkpoint-staleness",
            "warn",
            path=str(path),
            error="checkpoint has no created_at metadata",
        )
    age = clock() - created_at
    if age > max_checkpoint_age_s:
        return DoctorCheck(
            "checkpoint-staleness",
            "warn",
            path=str(path),
            age_s=round(age, 1),
            max_age_s=max_checkpoint_age_s,
        )
    return DoctorCheck(
        "checkpoint-staleness", "ok", path=str(path), age_s=round(age, 1)
    )


def plant_index_corruption(warehouse: Warehouse) -> bool:
    """Deliberately desynchronize one RowIndex from its backing bag (a
    phantom extra row), so tests and the CI gate can prove
    :func:`run_doctor` catches real divergence.  Returns False when no
    in-process index exists to corrupt (plain-relation backends)."""
    for name in warehouse.view_names:
        maintainer = warehouse.maintainer(name)
        for materialization in maintainer._materializations.values():
            relation = materialization.relation()
            if not relation.rows:
                continue
            for index in relation._indexes.values():
                index.add(relation.rows[0])
                return True
    return False
