"""Baseline maintenance strategies the paper improves upon.

* :class:`FullReplicationMaintainer` — replicate the referenced base
  tables wholesale and recompute ``V`` on demand.  This is the naive
  "current detail data mirrors the sources" reading of Figure 1 and the
  245 GB side of the paper's Section 1.1 comparison.

* :class:`PsjAuxiliaryMaintainer` — Quass et al. (PDIS 1996): local and
  join reductions with keys always retained, but **no smart duplicate
  compression**.  It is self-maintainable, yet its root-table auxiliary
  view scales with the number of detail tuples rather than the number of
  distinct groups.  Following [14]'s scope we materialize an auxiliary
  view per base table (PSJ elimination is not applied, since recomputing
  a GPSJ view from PSJ detail needs the fact rows).
"""

from __future__ import annotations

from repro.catalog.database import Database
from repro.core.compression import CompressionPlan, attribute_roles
from repro.core.derivation import AuxiliaryView, AuxiliaryViewSet
from repro.core.joingraph import ExtendedJoinGraph
from repro.core.maintenance import SelfMaintainer
from repro.core.view import ViewDefinition
from repro.engine.deltas import Transaction
from repro.engine.relation import Relation
from repro.plan.planner import ViewPlan, execute_view_plan, view_plan


def derive_psj_auxiliary_views(
    view: ViewDefinition,
    database: Database,
    graph: ExtendedJoinGraph | None = None,
) -> AuxiliaryViewSet:
    """Quass-style auxiliary views: locally and join reduced, key kept,
    duplicates uncompressed."""
    graph = graph or ExtendedJoinGraph(view, database)
    auxiliary = []
    for table in view.tables:
        base = database.table(table)
        kept, __ = attribute_roles(view, table)
        pinned = list(kept)
        if base.key not in pinned:
            # PSJ views must retain keys to identify tuples under
            # deletions and updates [14].
            pinned.insert(0, base.key)
        plan = CompressionPlan(
            table,
            pinned=tuple(pinned),
            folded_sums=(),
            include_count=False,
            count_alias="cnt",
            degenerate=True,
        )
        dependencies = set(graph.depends_on(table))
        auxiliary.append(
            AuxiliaryView(
                table=table,
                name=f"{table}psj",
                plan=plan,
                local_conditions=view.local_conditions(table),
                reduced_by=tuple(
                    join
                    for join in view.joins_from(table)
                    if join.right_table in dependencies
                ),
                base_schema=base.schema,
            )
        )
    return AuxiliaryViewSet(view, tuple(auxiliary), {})


class PsjAuxiliaryMaintainer:
    """Self-maintenance over uncompressed (PSJ) auxiliary views."""

    def __init__(self, view: ViewDefinition, database: Database):
        self.view = view
        self.aux_set = derive_psj_auxiliary_views(view, database)
        self._inner = SelfMaintainer(view, database, aux_set=self.aux_set)

    def apply(self, transaction: Transaction) -> None:
        self._inner.apply(transaction)

    def current_view(self) -> Relation:
        return self._inner.current_view()

    def aux_relation(self, table: str) -> Relation:
        return self._inner.aux_relation(table)

    def detail_size_bytes(self) -> int:
        return self._inner.detail_size_bytes()


class FullReplicationMaintainer:
    """Replicate the referenced base tables; recompute ``V`` on demand."""

    def __init__(self, view: ViewDefinition, database: Database):
        self.view = view
        self._replica = Database()
        source = database.snapshot()
        for table in source.tables:
            if table.name in view.tables:
                self._replica.add_table(table)

    def apply(self, transaction: Transaction) -> None:
        relevant = Transaction.of(
            *(d for d in transaction if d.table in self.view.tables)
        )
        self._replica.apply(relevant, validate=False)

    def current_view(self) -> Relation:
        plan = self.plan()
        return execute_view_plan(plan, self._replica)

    def plan(self) -> ViewPlan:
        """The optimized physical recomputation plan over the replica
        (cached by the planner; rebuilding ``V`` on every read is this
        baseline's entire maintenance cost, so it pays to look at it)."""
        return view_plan(self.view, self._replica)

    def replica_relation(self, table: str) -> Relation:
        return self._replica.relation(table)

    def detail_size_bytes(self) -> int:
        return sum(
            self._replica.relation(name).size_bytes()
            for name in self.view.tables
        )
