"""An operating warehouse over *shared* detail data (Section 4).

:class:`SharedDetailWarehouse` hosts a class of summary tables over one
merged set of auxiliary views (``repro.core.sharing``).  The merged
views are plain single-table σ+Π expressions — no join reductions, the
disjunction of the views' local conditions — so they are trivially
self-maintainable: each source delta is locally reduced and folded into
the per-table groups, in any order.

Summary tables are computed on demand: the view's own auxiliary views
are recovered from the shared detail by selection + rollup
(:func:`~repro.core.sharing.materialize_from_merged`) and ``V`` is
reconstructed from them — never touching base tables.  Compared to one
:class:`~repro.core.maintenance.SelfMaintainer` per view this trades
read latency for single-copy storage and single-pass delta processing;
the A5 benchmark quantifies both sides.
"""

from __future__ import annotations

from repro.catalog.database import Database
from repro.core.derivation import AuxiliaryView, derive_auxiliary_views
from repro.core.maintenance import make_materialization
from repro.core.rewrite import Reconstructor
from repro.core.sharing import (
    SharedDetailSet,
    materialize_from_merged,
    merge_views,
)
from repro.core.view import ViewDefinition
from repro.engine.compilecache import compiled_predicate
from repro.engine.deltas import Transaction
from repro.engine.relation import Relation


class SharedDetailWarehouse:
    """Maintains one merged detail set serving a class of views."""

    def __init__(self, views: list[ViewDefinition], database: Database):
        self.shared: SharedDetailSet = merge_views(views, database)
        self._views = {view.name: view for view in views}
        # Elimination is disabled: every view is *reconstructed* from
        # the shared detail, which requires each table's (rolled-up)
        # auxiliary view to exist.
        self._aux_sets = {
            view.name: derive_auxiliary_views(
                view, database, allow_elimination=False
            )
            for view in views
        }
        self._reconstructors = {
            view.name: Reconstructor(view, self._aux_sets[view.name], database)
            for view in views
        }
        self._materializations = {}
        self._table_infos = {}
        for merged in self.shared.merged:
            pseudo = AuxiliaryView(
                table=merged.table,
                name=merged.name,
                plan=merged.plan,
                local_conditions=(
                    (merged.local_condition,)
                    if merged.local_condition is not None
                    else ()
                ),
                reduced_by=(),
                base_schema=merged.base_schema,
            )
            materialization = make_materialization(pseudo)
            materialization.load(merged.compute(database))
            self._materializations[merged.table] = materialization
            # The keyed compile cache: merged predicates are often the
            # same disjunction over the same base schema across runs of
            # one process (benchmark sweeps), and the plan executor's
            # filters share the identical compiled form.
            predicate = (
                compiled_predicate(merged.local_condition, merged.base_schema)
                if merged.local_condition is not None
                else None
            )
            self._table_infos[merged.table] = (merged.base_schema, predicate)

    # ------------------------------------------------------------------
    # Maintenance (shared detail only; summaries are views over it).
    # ------------------------------------------------------------------

    def apply(self, transaction: Transaction) -> None:
        """Fold one source transaction into the shared detail.

        Merged views have no cross-view dependencies, so per-table
        processing order is irrelevant; deletions run first only to keep
        intra-table bag arithmetic obvious.
        """
        for delta in transaction:
            info = self._table_infos.get(delta.table)
            if info is None:
                continue  # table not referenced by any view in the class
            schema, predicate = info
            materialization = self._materializations[delta.table]
            for rows, sign in ((delta.deleted, -1), (delta.inserted, +1)):
                if not rows:
                    continue
                reduced = [schema.validate_row(row) for row in rows]
                if predicate is not None:
                    reduced = [row for row in reduced if predicate(row)]
                if reduced:
                    materialization.apply(reduced, sign)

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------

    @property
    def view_names(self) -> tuple[str, ...]:
        return tuple(self._views)

    def shared_relations(self) -> dict[str, Relation]:
        return {
            table: materialization.relation()
            for table, materialization in self._materializations.items()
        }

    def view_auxiliaries(self, view_name: str) -> dict[str, Relation]:
        """One view's own auxiliary views, recovered from shared detail."""
        return materialize_from_merged(
            self._aux_sets[view_name], self.shared, self.shared_relations()
        )

    def summary(self, view_name: str) -> Relation:
        """Compute ``V`` for one view from the shared detail."""
        reconstructor = self._reconstructors[view_name]
        return reconstructor.reconstruct(self.view_auxiliaries(view_name))

    def detail_size_bytes(self) -> int:
        """Total shared-detail storage under the paper's size model."""
        return sum(
            materialization.size_bytes()
            for materialization in self._materializations.values()
        )
