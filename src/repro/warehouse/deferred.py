"""Deferred (batch) maintenance: the nightly-refresh operating mode.

Warehouses commonly buffer the source change stream and refresh summary
tables periodically.  :class:`DeferredMaintainer` wraps a
:class:`~repro.core.maintenance.SelfMaintainer`, queues transactions,
and propagates them on :meth:`refresh` — optionally *coalesced* into one
net transaction first, so churn (rows inserted and deleted between
refreshes) is never propagated at all.  Exactness is unaffected: the net
transaction reaches the same source state, and maintenance is exact with
respect to states, not histories.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.maintenance import SelfMaintainer
from repro.engine.deltas import Transaction, coalesce
from repro.engine.relation import Relation
from repro.engine.undolog import UndoLog, rollback_all
from repro.perf import REFRESH_PROPAGATED_ROWS


class StaleViewError(Exception):
    """Raised when a stale read is attempted without opting in."""


@dataclass(frozen=True)
class RefreshStats:
    """What one refresh propagated."""

    transactions: int
    buffered_rows: int
    propagated_rows: int

    @property
    def cancelled_rows(self) -> int:
        return self.buffered_rows - self.propagated_rows


class DeferredMaintainer:
    """Buffers transactions; propagates them on refresh."""

    def __init__(self, maintainer: SelfMaintainer, coalesce_deltas: bool = True):
        self._inner = maintainer
        self._coalesce = coalesce_deltas
        self._buffer: list[Transaction] = []
        # Backlog depth as a live gauge in the maintainer's registry, so
        # metrics exports show how stale the deferred view currently is.
        self._pending_gauge = maintainer.perf.registry.gauge(
            "repro_deferred_pending_transactions", view=maintainer.view.name
        )

    @property
    def view(self):
        return self._inner.view

    @property
    def pending(self) -> int:
        """Buffered transactions awaiting the next refresh."""
        return len(self._buffer)

    def apply(self, transaction: Transaction) -> None:
        """Queue a source transaction (no maintenance work yet)."""
        if not transaction.empty:
            self._buffer.append(transaction)
            self._pending_gauge.set(len(self._buffer))

    def discard(self, transaction: Transaction) -> bool:
        """Drop one buffered occurrence of ``transaction`` (the operator
        response to a poison transaction rejected by :meth:`refresh`);
        returns whether anything was removed."""
        try:
            self._buffer.remove(transaction)
        except ValueError:
            return False
        self._pending_gauge.set(len(self._buffer))
        return True

    def refresh(self) -> RefreshStats:
        """Propagate everything buffered since the last refresh.

        All-or-nothing: if any buffered transaction is rejected, the
        transactions already propagated by this call are rolled back,
        the buffer is left intact, and the exception propagates — so a
        retried ``refresh()`` (say, after :meth:`discard`-ing the
        offender) never double-applies the ones that had succeeded.
        """
        buffered_rows = sum(
            len(delta.inserted) + len(delta.deleted)
            for transaction in self._buffer
            for delta in transaction
        )
        count = len(self._buffer)
        if self._coalesce:
            net = coalesce(self._buffer)
            propagated_rows = sum(
                len(delta.inserted) + len(delta.deleted) for delta in net
            )
            if not net.empty:
                self._inner.apply(net)  # atomic on its own; buffer kept on raise
        else:
            propagated_rows = buffered_rows
            applied: list[UndoLog] = []
            try:
                for transaction in self._buffer:
                    log = UndoLog()
                    self._inner.apply(transaction, undo=log)
                    applied.append(log)
                # Every per-transaction scope succeeded; commit them on
                # the backend in one step (the coalesced path commits
                # inside the standalone apply above).  A commit failure
                # is treated exactly like an apply failure: the applied
                # logs roll back and the buffer stays intact, so a
                # retried refresh() never double-applies.
                self._inner.backend.commit()
            except Exception:
                perf = self._inner.perf
                rollback_all(
                    ((perf, log) for log in reversed(applied)),
                    perf_for=lambda p: p,
                )
                raise
        self._buffer = []
        self._pending_gauge.set(0)
        self._inner.perf.observe(REFRESH_PROPAGATED_ROWS, propagated_rows)
        return RefreshStats(count, buffered_rows, propagated_rows)

    def current_view(self, allow_stale: bool = False) -> Relation:
        """The summary table; refuses stale reads unless opted in."""
        self._check_fresh(allow_stale)
        return self._inner.current_view()

    def aux_relation(self, table: str, allow_stale: bool = False) -> Relation:
        """One current-detail table; stale like the summary whenever
        transactions are buffered, so the same opt-in applies."""
        self._check_fresh(allow_stale)
        return self._inner.aux_relation(table)

    def detail_size_bytes(self, allow_stale: bool = False) -> int:
        self._check_fresh(allow_stale)
        return self._inner.detail_size_bytes()

    def close(self) -> None:
        """Release the wrapped maintainer's backend resources (database
        handles, sharded worker processes).  Buffered transactions are
        *not* flushed — call :meth:`refresh` first if they must land."""
        self._inner.backend.close()

    def __enter__(self) -> "DeferredMaintainer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_fresh(self, allow_stale: bool) -> None:
        if self._buffer and not allow_stale:
            raise StaleViewError(
                f"{self.pending} transactions pending; call refresh() or "
                "read with allow_stale=True"
            )
