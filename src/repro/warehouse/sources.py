"""Sealed data sources: legacy systems the warehouse cannot query.

The paper's whole premise is that base tables are often *inaccessible*
after warehouse load (legacy systems, security).  :class:`SealedSource`
wraps a :class:`Database` and, once sealed, raises on every read while
still accepting transactions (the operational system keeps running and
streams its changes).  Tests and benchmarks use it to *prove* that
maintenance never touches base data rather than merely asserting it.
"""

from __future__ import annotations

from repro.catalog.database import BaseTable, Database
from repro.engine.deltas import Transaction
from repro.engine.relation import Relation


class SourceAccessError(Exception):
    """Raised when sealed base data is read."""


class SealedSource:
    """A database whose reads can be shut off after warehouse initialization."""

    def __init__(self, database: Database):
        self._database = database
        self._sealed = False
        self._reads_blocked = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def seal(self) -> None:
        """Cut the warehouse off from base data (end of initial load)."""
        self._sealed = True

    def unseal(self) -> None:
        """Re-open reads (verification/debugging only)."""
        self._sealed = False

    @property
    def sealed(self) -> bool:
        return self._sealed

    @property
    def blocked_reads(self) -> int:
        """How many reads were attempted (and refused) while sealed."""
        return self._reads_blocked

    # ------------------------------------------------------------------
    # Database protocol (reads guarded, writes allowed).
    # ------------------------------------------------------------------

    def _guard(self, operation: str) -> None:
        if self._sealed:
            self._reads_blocked += 1
            raise SourceAccessError(
                f"base data is sealed: {operation} is not available to the "
                "warehouse (self-maintenance must use auxiliary views only)"
            )

    def table(self, name: str) -> BaseTable:
        self._guard(f"table({name!r})")
        return self._database.table(name)

    def relation(self, name: str) -> Relation:
        self._guard(f"relation({name!r})")
        return self._database.relation(name)

    @property
    def tables(self) -> tuple[BaseTable, ...]:
        self._guard("tables")
        return self._database.tables

    def __contains__(self, name: str) -> bool:
        return name in self._database

    @property
    def table_names(self) -> tuple[str, ...]:
        # Catalog metadata (names/keys/constraints) stays readable; only
        # tuple data is sealed.
        return self._database.table_names

    def apply(self, transaction: Transaction, validate: bool = True) -> None:
        """The operational system applies its own transactions regardless."""
        self._database.apply(transaction, validate=validate)

    def ground_truth(self) -> Database:
        """The unsealed database, for *verification* against recomputation.

        Deliberately named so accidental production use stands out in
        code review; the warehouse never calls this.
        """
        return self._database
