"""Generic SELECT statements for backend SQL generation.

The view parser (:func:`repro.sql.parser.parse_view`) produces a
semantic :class:`~repro.core.view.ViewDefinition`; the backends instead
need a *syntactic* representation of arbitrary GPSJ-shaped queries —
aliased tables, ``EXISTS`` subqueries for semijoins/antijoins, bare
``COUNT(*)`` references in ``HAVING`` — that unparses to SQL and
re-parses to an equal tree (:func:`repro.sql.parser.parse_select`).

Expressions reuse :mod:`repro.engine.expressions` wholesale; this
module only adds the two SQL-specific expression nodes that have no
in-memory evaluation (``EXISTS`` probes and ``COUNT(*)`` outside a
select list) plus the statement/table structure around them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expressions import Expression, ExpressionError
from repro.engine.operators import ProjectionItem


@dataclass(frozen=True)
class TableRef:
    """One FROM entry: a physical table, optionally aliased.

    An alias equal to the table name is normalized away so structurally
    identical references compare (and round-trip) equal.
    """

    name: str
    alias: str | None = None

    def __post_init__(self):
        if self.alias == self.name:
            object.__setattr__(self, "alias", None)

    @property
    def binding(self) -> str:
        """The name columns of this table are qualified by."""
        return self.alias or self.name

    def to_sql(self) -> str:
        if self.alias is None:
            return self.name
        return f"{self.name} AS {self.alias}"


@dataclass(frozen=True)
class SelectStatement:
    """A generic (possibly grouped) SELECT over aliased tables.

    ``items`` may be empty, rendering ``SELECT 1`` — the conventional
    existence probe used inside :class:`Exists` subqueries.  ``where``
    is a conjunction; ``group_by`` lists plain column references;
    ``having`` is a single (possibly composite) expression.
    """

    items: tuple[ProjectionItem, ...]
    tables: tuple[TableRef, ...]
    where: tuple[Expression, ...] = ()
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        if self.items:
            parts.append(", ".join(item.to_sql() for item in self.items))
        else:
            parts.append("1")
        parts.append("FROM")
        parts.append(", ".join(table.to_sql() for table in self.tables))
        if self.where:
            parts.append("WHERE")
            parts.append(" AND ".join(c.to_sql() for c in self.where))
        if self.group_by:
            parts.append("GROUP BY")
            parts.append(", ".join(c.to_sql() for c in self.group_by))
        if self.having is not None:
            parts.append("HAVING")
            parts.append(self.having.to_sql())
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.to_sql()


@dataclass(frozen=True)
class Exists(Expression):
    """``[NOT] EXISTS (subquery)`` — the SQL rendering of semijoins and
    antijoins.  SQL-only: it has no row-level compilation."""

    query: SelectStatement
    negated: bool = False

    def compile(self, schema):
        raise ExpressionError("EXISTS is a SQL-only expression")

    def columns(self):
        return ()

    def substitute(self, mapping):
        return self

    def to_sql(self) -> str:
        prefix = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{prefix} ({self.query.to_sql()})"


@dataclass(frozen=True)
class CountStar(Expression):
    """A bare ``COUNT(*)`` expression (e.g. in ``HAVING COUNT(*) > 0``).
    SQL-only: aggregate references have no row-level compilation."""

    def compile(self, schema):
        raise ExpressionError("COUNT(*) is a SQL-only expression")

    def columns(self):
        return ()

    def substitute(self, mapping):
        return self

    def to_sql(self) -> str:
        return "COUNT(*)"
