"""Recursive-descent parser for GPSJ view definitions.

Grammar (conjunctive WHERE, per the GPSJ class of Section 2.1)::

    statement  := [CREATE VIEW name AS] select
    select     := SELECT item ("," item)* FROM ident ("," ident)*
                  [WHERE conjunct (AND conjunct)*]
                  [GROUP BY colref ("," colref)*]
                  [HAVING having_expr]
    item       := aggregate [AS alias] | colref [AS alias]
    aggregate  := FUNC "(" [DISTINCT] (colref | "*") ")"
    conjunct   := expr cmp expr | colref IN "(" literal ("," literal)* ")"
    expr       := term (("+"|"-") term)* ; term := factor (("*"|"/") factor)*
    factor     := colref | literal | "(" expr ")"

WHERE conjuncts of the form ``Ri.b = Rj.a`` where ``a`` is the key of
``Rj`` and the two sides come from different tables are classified as
join conditions; everything else must be local to a single table.  The
catalog (a :class:`Database`) resolves unqualified column names.
"""

from __future__ import annotations

from repro.catalog.database import Database
from repro.core.view import JoinCondition, ViewDefinition
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import (
    And,
    Arithmetic,
    Column,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
    Or,
)
from repro.engine.operators import AggregateItem, GroupByItem, ProjectionItem
from repro.sql.ast import CountStar, Exists, SelectStatement, TableRef
from repro.sql.lexer import Token, tokenize

_AGGREGATE_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class SqlParseError(Exception):
    """Raised on syntax errors or statements outside the GPSJ dialect."""


def parse_view(
    sql: str, database: Database, name: str | None = None
) -> ViewDefinition:
    """Parse a GPSJ view statement against ``database``'s catalog.

    ``name`` overrides/provides the view name when the statement is a
    bare SELECT without a CREATE VIEW prefix.
    """
    parser = _Parser(tokenize(sql), database)
    return parser.parse_statement(default_name=name)


def parse_select(sql: str) -> SelectStatement:
    """Parse a generic (catalog-free) SELECT into a syntactic
    :class:`~repro.sql.ast.SelectStatement`.

    This is the inverse of ``SelectStatement.to_sql()`` and covers the
    backend-generated dialect: aliased FROM entries, ``[NOT] EXISTS``
    subqueries as WHERE conjuncts, ``SELECT 1`` existence probes, and
    ``COUNT(*)`` references inside HAVING.  Columns are kept exactly as
    written (no catalog qualification).
    """
    parser = _Parser(tokenize(sql), None, generic=True)
    statement = parser.parse_select_statement()
    token = parser._peek()
    if token.kind != "EOF":
        raise SqlParseError(f"unexpected trailing input at {token}")
    return statement


class _Parser:
    def __init__(
        self,
        tokens: list[Token],
        database: Database | None,
        generic: bool = False,
    ):
        self._tokens = tokens
        self._pos = 0
        self._database = database
        self._generic = generic
        self._tables: list[str] = []

    # ------------------------------------------------------------------
    # Token plumbing.
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise SqlParseError(f"expected {word}, found {token}")
        return token

    def _expect_punct(self, symbol: str) -> Token:
        token = self._advance()
        if not (token.kind in ("PUNCT", "OPERATOR") and token.value == symbol):
            raise SqlParseError(f"expected {symbol!r}, found {token}")
        return token

    def _match_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _match_punct(self, symbol: str) -> bool:
        token = self._peek()
        if token.kind in ("PUNCT", "OPERATOR") and token.value == symbol:
            self._advance()
            return True
        return False

    def _expect_ident(self) -> str:
        token = self._advance()
        if token.kind != "IDENT":
            raise SqlParseError(f"expected identifier, found {token}")
        return token.value

    # ------------------------------------------------------------------
    # Statement structure.
    # ------------------------------------------------------------------

    def parse_statement(self, default_name: str | None) -> ViewDefinition:
        name = default_name
        if self._match_keyword("CREATE"):
            self._expect_keyword("VIEW")
            name = self._expect_ident()
            self._expect_keyword("AS")
        if name is None:
            raise SqlParseError(
                "bare SELECT statements need an explicit view name"
            )
        self._expect_keyword("SELECT")
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        self._tables = [self._expect_ident()]
        while self._match_punct(","):
            self._tables.append(self._expect_ident())
        conjuncts: list[Expression] = []
        if self._match_keyword("WHERE"):
            conjuncts.append(self._parse_conjunct())
            while self._match_keyword("AND"):
                conjuncts.append(self._parse_conjunct())
        group_by: list[Column] = []
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_column())
            while self._match_punct(","):
                group_by.append(self._parse_column())
        having: Expression | None = None
        if self._match_keyword("HAVING"):
            having = self._parse_having_or()
        token = self._peek()
        if token.kind != "EOF":
            raise SqlParseError(f"unexpected trailing input at {token}")
        return self._assemble(name, items, conjuncts, group_by, having)

    # ------------------------------------------------------------------
    # Generic (catalog-free) SELECT statements.
    # ------------------------------------------------------------------

    def parse_select_statement(self) -> SelectStatement:
        """One generic SELECT; stops before any unconsumed ``)``/EOF."""
        self._expect_keyword("SELECT")
        distinct = self._match_keyword("DISTINCT")
        items: list[ProjectionItem] = []
        token = self._peek()
        if token.kind == "NUMBER" and token.value == 1:
            self._advance()  # SELECT 1 — the existence probe
        else:
            items.append(self._parse_select_item())
            while self._match_punct(","):
                items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        tables = [self._parse_table_ref()]
        while self._match_punct(","):
            tables.append(self._parse_table_ref())
        where: list[Expression] = []
        if self._match_keyword("WHERE"):
            where.append(self._parse_conjunct())
            while self._match_keyword("AND"):
                where.append(self._parse_conjunct())
        group_by: list[Expression] = []
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_column())
            while self._match_punct(","):
                group_by.append(self._parse_column())
        having: Expression | None = None
        if self._match_keyword("HAVING"):
            having = self._parse_having_or()
        return SelectStatement(
            items=tuple(items),
            tables=tuple(tables),
            where=tuple(where),
            group_by=tuple(group_by),
            having=having,
            distinct=distinct,
        )

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_ident()
        return TableRef(name, self._parse_alias())

    def _parse_exists(self, negated: bool) -> Expression:
        self._expect_punct("(")
        query = self.parse_select_statement()
        self._expect_punct(")")
        return Exists(query, negated)

    # ------------------------------------------------------------------
    # SELECT list.
    # ------------------------------------------------------------------

    def _parse_select_item(self) -> ProjectionItem:
        token = self._peek()
        if token.kind == "KEYWORD" and token.value in _AGGREGATE_KEYWORDS:
            return self._parse_aggregate()
        column = self._parse_column()
        alias = self._parse_alias()
        return GroupByItem(column, alias)

    def _parse_aggregate(self) -> AggregateItem:
        func = AggregateFunction(self._advance().value)
        self._expect_punct("(")
        distinct = self._match_keyword("DISTINCT")
        if self._match_punct("*"):
            if func is not AggregateFunction.COUNT or distinct:
                raise SqlParseError(f"{func.value}(*) is not a valid aggregate")
            column = None
        else:
            column = self._parse_column()
        self._expect_punct(")")
        alias = self._parse_alias()
        return AggregateItem(func, column, distinct, alias)

    def _parse_alias(self) -> str | None:
        if self._match_keyword("AS"):
            return self._expect_ident()
        return None

    # ------------------------------------------------------------------
    # Columns and expressions.
    # ------------------------------------------------------------------

    def _parse_column(self) -> Column:
        first = self._expect_ident()
        if self._match_punct("."):
            second = self._expect_ident()
            return Column(second, first)
        return Column(first)

    def _parse_conjunct(self) -> Expression:
        if self._generic:
            token = self._peek()
            if token.is_keyword("EXISTS"):
                self._advance()
                return self._parse_exists(negated=False)
            if token.is_keyword("NOT") and self._tokens[
                self._pos + 1
            ].is_keyword("EXISTS"):
                self._advance()
                self._advance()
                return self._parse_exists(negated=True)
        left = self._parse_expr()
        token = self._peek()
        if token.is_keyword("IN"):
            self._advance()
            self._expect_punct("(")
            values = [self._parse_literal_value()]
            while self._match_punct(","):
                values.append(self._parse_literal_value())
            self._expect_punct(")")
            return InList(left, values)
        if token.kind == "OPERATOR" and token.value in (
            "=",
            "<>",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ):
            self._advance()
            right = self._parse_expr()
            return Comparison(token.value, left, right)
        raise SqlParseError(f"expected comparison operator, found {token}")

    def _parse_literal_value(self) -> object:
        token = self._advance()
        if token.kind in ("NUMBER", "STRING"):
            return token.value
        if token.is_keyword("TRUE"):
            return True
        if token.is_keyword("FALSE"):
            return False
        raise SqlParseError(f"expected literal, found {token}")

    def _parse_expr(self) -> Expression:
        left = self._parse_term()
        while True:
            token = self._peek()
            if token.kind == "OPERATOR" and token.value in ("+", "-"):
                self._advance()
                left = Arithmetic(token.value, left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while True:
            token = self._peek()
            if token.kind == "OPERATOR" and token.value in ("*", "/"):
                self._advance()
                left = Arithmetic(token.value, left, self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> Expression:
        token = self._peek()
        if self._generic and token.is_keyword("COUNT"):
            self._advance()
            self._expect_punct("(")
            self._expect_punct("*")
            self._expect_punct(")")
            return CountStar()
        if token.kind in ("NUMBER", "STRING"):
            self._advance()
            return Literal(token.value)
        if token.is_keyword("TRUE") or token.is_keyword("FALSE"):
            self._advance()
            return Literal(token.value == "TRUE")
        if token.kind == "PUNCT" and token.value == "(":
            self._advance()
            inner = self._parse_expr()
            self._expect_punct(")")
            return inner
        if token.kind == "OPERATOR" and token.value == "-":
            self._advance()
            return Arithmetic("-", Literal(0), self._parse_factor())
        if token.kind == "IDENT":
            return self._parse_column()
        raise SqlParseError(f"expected expression, found {token}")

    def _parse_having_or(self) -> Expression:
        left = self._parse_having_and()
        parts = [left]
        while self._match_keyword("OR"):
            parts.append(self._parse_having_and())
        if len(parts) == 1:
            return left
        return Or(*parts)

    def _parse_having_and(self) -> Expression:
        left = self._parse_having_not()
        parts = [left]
        while self._match_keyword("AND"):
            parts.append(self._parse_having_not())
        if len(parts) == 1:
            return left
        return And(*parts)

    def _parse_having_not(self) -> Expression:
        if self._match_keyword("NOT"):
            return Not(self._parse_having_not())
        return self._parse_conjunct()

    # ------------------------------------------------------------------
    # Semantic assembly against the catalog.
    # ------------------------------------------------------------------

    def _assemble(
        self,
        name: str,
        items: list[ProjectionItem],
        conjuncts: list[Expression],
        group_by: list[Column],
        having: Expression | None,
    ) -> ViewDefinition:
        for table in self._tables:
            if table not in self._database:
                raise SqlParseError(f"unknown table {table!r} in FROM")
        items = [self._qualify_item(item) for item in items]
        group_columns = {self._qualify_column(c) for c in group_by}
        projected_group_columns = {
            item.column for item in items if isinstance(item, GroupByItem)
        }
        if group_columns != projected_group_columns:
            raise SqlParseError(
                "GROUP BY must list exactly the non-aggregate SELECT columns "
                f"(grouped {sorted(c.qualified_name for c in group_columns)}, "
                f"projected "
                f"{sorted(c.qualified_name for c in projected_group_columns)})"
            )
        selection: list[Expression] = []
        joins: list[JoinCondition] = []
        for conjunct in conjuncts:
            qualified = self._qualify_expression(conjunct)
            join = self._as_join(qualified)
            if join is not None:
                joins.append(join)
            else:
                selection.append(qualified)
        return ViewDefinition(
            name=name,
            tables=tuple(self._tables),
            projection=tuple(items),
            selection=tuple(selection),
            joins=tuple(joins),
            having=having,
        )

    def _qualify_item(self, item: ProjectionItem) -> ProjectionItem:
        if isinstance(item, GroupByItem):
            return GroupByItem(self._qualify_column(item.column), item.alias)
        if item.column is None:
            return item
        return AggregateItem(
            item.func, self._qualify_column(item.column), item.distinct, item.alias
        )

    def _qualify_column(self, column: Column) -> Column:
        if column.qualifier is not None:
            if column.qualifier not in self._tables:
                raise SqlParseError(
                    f"column {column.qualified_name!r} references a table "
                    "outside FROM"
                )
            schema = self._database.table(column.qualifier).schema
            if not schema.has(column.name):
                raise SqlParseError(
                    f"table {column.qualifier!r} has no column {column.name!r}"
                )
            return column
        owners = [
            table
            for table in self._tables
            if self._database.table(table).schema.has(column.name)
        ]
        if not owners:
            raise SqlParseError(f"unknown column {column.name!r}")
        if len(owners) > 1:
            raise SqlParseError(
                f"ambiguous column {column.name!r} (in {owners!r})"
            )
        return Column(column.name, owners[0])

    def _qualify_expression(self, expression: Expression) -> Expression:
        mapping = {
            column: self._qualify_column(column)
            for column in expression.columns()
            if column.qualifier is None
        }
        if not mapping:
            return expression
        return expression.substitute(mapping)

    def _as_join(self, expression: Expression) -> JoinCondition | None:
        """Recognize ``Ri.b = Rj.a`` with ``a`` the key of ``Rj``."""
        if not isinstance(expression, Comparison) or expression.op != "=":
            return None
        left, right = expression.left, expression.right
        if not (isinstance(left, Column) and isinstance(right, Column)):
            return None
        if left.qualifier == right.qualifier:
            return None
        for fk, pk in ((left, right), (right, left)):
            key = self._database.table(pk.qualifier).key
            if pk.name == key:
                return JoinCondition(fk.qualifier, fk.name, pk.qualifier, pk.name)
        raise SqlParseError(
            f"cross-table condition {expression.to_sql()!r} does not join on "
            "a key; GPSJ views join on keys"
        )
